//! Logical query plans with hierarchy-aware rewrites and a physical
//! executor — the unified logical/physical query layer.
//!
//! The paper's §3 algebra gives the operators exploitable laws:
//! consolidate is *idempotent* (§3.3.1), selection commutes with join
//! and union (§3.4 keeps the flat semantics, where the classical
//! pushdown laws hold), and explication restricted to a selected region
//! can prune its fan-out *before* the expansion is materialized
//! (§3.3.2's enumeration only ever visits tuples intersecting the
//! region). This module turns those laws into a small rule-based
//! optimizer over a [`LogicalPlan`] IR, plus an executor that lowers
//! plans onto the existing operator functions in [`crate::ops`],
//! [`crate::consolidate`] and [`crate::explicate`] — so plan execution
//! transparently reuses the [`crate::parallel`] thresholds and the
//! shared closure/subsumption caches those operators already sit on.
//!
//! # Canonical output
//!
//! A plan denotes a *flat model*, not a physical tuple set: two
//! physically different relations with the same flat extension are the
//! same query result. [`LogicalPlan::execute`] therefore returns the
//! **unique minimal physical form** — it runs a final
//! [`consolidate`](crate::consolidate::consolidate) at the plan root.
//! This is what makes the rewrites byte-exact: e.g. hoisting
//! consolidate above a selection can leave a parentless negated tuple
//! in one evaluation order and not the other, but both orders agree on
//! the flat model, and §3.3.1's unique-minimum theorem then guarantees
//! the consolidated results are identical. Callers who need a specific
//! *non*-minimal physical form (a fully explicated table, say) should
//! apply [`crate::explicate::explicate`] to the canonical result.
//!
//! Each executed node opens an `hrdm-obs` span (named by
//! [`LogicalPlan::kind`]) carrying its output rows, own-operator wall
//! time, and per-node cache-attribution fields; [`LogicalPlan::execute`]
//! captures the whole run into a [`QueryTrace`] returned on
//! [`Executed`], and the process-wide
//! [`EngineStats`](crate::stats::EngineStats) counters accumulate the
//! same quantities in the shared metrics registry.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use hrdm_obs::attrib;
use hrdm_obs::trace::QueryTrace;

use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::ops;
use crate::relation::HRelation;
use crate::schema::{Attribute, Schema};
use crate::stats;

/// A logical query plan over hierarchical relations.
///
/// Build plans with the fluent constructors ([`LogicalPlan::scan`],
/// [`select`](LogicalPlan::select), [`join`](LogicalPlan::join), …),
/// rewrite them with [`optimize`](LogicalPlan::optimize), and run them
/// with [`execute`](LogicalPlan::execute).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// A base-relation scan. The plan holds its own snapshot of the
    /// relation, so a plan is self-contained and re-executable.
    Scan {
        /// Display name of the relation (for EXPLAIN output).
        name: String,
        /// The scanned relation.
        relation: Arc<HRelation>,
    },
    /// §3.4 selection of a region (an item restricting each attribute).
    Select {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// The selected region.
        region: Item,
    },
    /// Selection on one attribute by name, others unrestricted; the
    /// optimizer normalizes this into [`LogicalPlan::Select`] once the
    /// input schema is known.
    SelectEq {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// Attribute name to restrict.
        attr: String,
        /// Class or instance name the attribute must fall under.
        value: String,
    },
    /// §3.4 projection onto attribute positions (doubles as column
    /// reordering, like [`ops::project()`]).
    Project {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// Attribute positions to keep, in output order.
        attrs: Vec<usize>,
    },
    /// §3.4 natural join on the attributes shared by name.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Set union of two same-schema inputs.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Set intersection of two same-schema inputs.
    Intersect {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Set difference of two same-schema inputs.
    Diff {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// §3.3.1 consolidation (redundant-tuple elimination).
    Consolidate {
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// §3.3.2 explication of the listed attribute positions.
    Explicate {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// Attribute positions to explicate.
        attrs: Vec<usize>,
    },
}

impl LogicalPlan {
    /// Scan a base relation under a display name.
    pub fn scan(name: impl Into<String>, relation: HRelation) -> LogicalPlan {
        LogicalPlan::Scan {
            name: name.into(),
            relation: Arc::new(relation),
        }
    }

    /// Select the given region from this plan's output.
    pub fn select(self, region: Item) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            region,
        }
    }

    /// Select on one named attribute, leaving the others unrestricted.
    pub fn select_eq(self, attr: impl Into<String>, value: impl Into<String>) -> LogicalPlan {
        LogicalPlan::SelectEq {
            input: Box::new(self),
            attr: attr.into(),
            value: value.into(),
        }
    }

    /// Project onto the given attribute positions.
    pub fn project(self, attrs: Vec<usize>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            attrs,
        }
    }

    /// Natural join with another plan.
    pub fn join(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Union with another plan.
    pub fn union(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Intersection with another plan.
    pub fn intersect(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Intersect {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Difference with another plan (`self − right`).
    pub fn diff(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Diff {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Consolidate this plan's output.
    pub fn consolidate(self) -> LogicalPlan {
        LogicalPlan::Consolidate {
            input: Box::new(self),
        }
    }

    /// Explicate the given attribute positions of this plan's output.
    pub fn explicate(self, attrs: Vec<usize>) -> LogicalPlan {
        LogicalPlan::Explicate {
            input: Box::new(self),
            attrs,
        }
    }

    /// The schema of this plan's output, computed structurally (join
    /// schemas follow [`ops::join()`]'s left-then-right-only layout).
    ///
    /// Binary set operations report their left input's schema; actual
    /// compatibility is enforced by the operators at execution time.
    pub fn output_schema(&self) -> Result<Arc<Schema>> {
        match self {
            LogicalPlan::Scan { relation, .. } => Ok(relation.schema().clone()),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::SelectEq { input, .. }
            | LogicalPlan::Consolidate { input }
            | LogicalPlan::Explicate { input, .. } => input.output_schema(),
            LogicalPlan::Project { input, attrs } => {
                let s = input.output_schema()?;
                for &a in attrs {
                    if a >= s.arity() {
                        return Err(CoreError::AttributeIndexOutOfRange(a));
                    }
                }
                Ok(Arc::new(Schema::new(
                    attrs
                        .iter()
                        .map(|&a| {
                            let attr = s.attribute(a);
                            Attribute::new(attr.name(), attr.domain().clone())
                        })
                        .collect(),
                )))
            }
            LogicalPlan::Join { left, right } => {
                let ls = left.output_schema()?;
                let rs = right.output_schema()?;
                Ok(join_parts(&ls, &rs)?.schema)
            }
            LogicalPlan::Union { left, .. }
            | LogicalPlan::Intersect { left, .. }
            | LogicalPlan::Diff { left, .. } => left.output_schema(),
        }
    }
}

/// How a natural join lays out its output schema: all left attributes,
/// then the right-only ones, with the shared pairs recorded. Shared
/// with the batch executor and the cost model, which must agree with
/// the tuple operator on the layout byte for byte.
pub(crate) struct JoinParts {
    pub(crate) schema: Arc<Schema>,
    /// `(left position, right position)` of attributes shared by name.
    pub(crate) shared: Vec<(usize, usize)>,
    /// Right positions not shared with the left, in output order.
    pub(crate) right_only: Vec<usize>,
}

pub(crate) fn join_parts(ls: &Schema, rs: &Schema) -> Result<JoinParts> {
    let mut shared: Vec<(usize, usize)> = Vec::new();
    for (i, la) in ls.attributes().iter().enumerate() {
        if let Ok(j) = rs.index_of(la.name()) {
            if !Arc::ptr_eq(la.domain(), rs.attribute(j).domain()) {
                return Err(CoreError::SchemaMismatch);
            }
            shared.push((i, j));
        }
    }
    if shared.is_empty() {
        return Err(CoreError::NoJoinAttributes);
    }
    let right_only: Vec<usize> = (0..rs.arity())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();
    let mut attrs: Vec<Attribute> = ls
        .attributes()
        .iter()
        .map(|a| Attribute::new(a.name(), a.domain().clone()))
        .collect();
    for &j in &right_only {
        let a = rs.attribute(j);
        attrs.push(Attribute::new(a.name(), a.domain().clone()));
    }
    Ok(JoinParts {
        schema: Arc::new(Schema::new(attrs)),
        shared,
        right_only,
    })
}

// ---------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------

/// One rewrite applied by [`LogicalPlan::optimize`], for EXPLAIN
/// annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// Stable rule identifier (e.g. `select-pushdown-join`).
    pub rule: &'static str,
    /// What the rule did at this site, human-readable.
    pub detail: String,
}

impl LogicalPlan {
    /// Rewrite this plan to a fixpoint of the rule set, returning the
    /// optimized plan and the log of applied rewrites (in application
    /// order, innermost first).
    ///
    /// The rules — each justified by a §3 law, each preserving the
    /// canonical (root-consolidated) output byte for byte:
    ///
    /// * `selecteq-normalize` — resolve a by-name [`LogicalPlan::SelectEq`]
    ///   into a region [`LogicalPlan::Select`] against the input schema.
    /// * `select-pushdown-join` — σ over ⋈ becomes ⋈ of σs, the region
    ///   split along the join's schema mapping (flat semantics, §3.4).
    /// * `select-pushdown-union` — σ over ∪ distributes into both
    ///   branches.
    /// * `consolidate-idempotent` — `Consolidate∘Consolidate` collapses
    ///   (§3.3.1: the minimum relation is unique, so consolidate is
    ///   idempotent).
    /// * `consolidate-hoist` — σ over consolidate becomes consolidate
    ///   over σ: consolidation then runs on the (smaller) selected
    ///   result instead of the whole input.
    /// * `explicate-select-fusion` — σ over explicate becomes explicate
    ///   over σ: the fan-out is restricted to the selected region
    ///   *before* the expansion is materialized (§3.3.2's enumeration
    ///   then only visits the region's members).
    pub fn optimize(&self) -> (LogicalPlan, Vec<Rewrite>) {
        let mut log = Vec::new();
        let out = opt(self.clone(), &mut log);
        (out, log)
    }
}

/// Bottom-up rewriting to a local fixpoint: children first, then rules
/// at this node; a successful rewrite re-enters the optimizer on the
/// new subtree (pushdowns expose further opportunities below).
fn opt(plan: LogicalPlan, log: &mut Vec<Rewrite>) -> LogicalPlan {
    let plan = map_children(plan, |c| opt(c, log));
    match try_rewrite(plan, log) {
        Ok(rewritten) => opt(rewritten, log),
        Err(unchanged) => unchanged,
    }
}

pub(crate) fn map_children(
    plan: LogicalPlan,
    mut f: impl FnMut(LogicalPlan) -> LogicalPlan,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Select { input, region } => LogicalPlan::Select {
            input: Box::new(f(*input)),
            region,
        },
        LogicalPlan::SelectEq { input, attr, value } => LogicalPlan::SelectEq {
            input: Box::new(f(*input)),
            attr,
            value,
        },
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            attrs,
        },
        LogicalPlan::Join { left, right } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        LogicalPlan::Intersect { left, right } => LogicalPlan::Intersect {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        LogicalPlan::Diff { left, right } => LogicalPlan::Diff {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        LogicalPlan::Consolidate { input } => LogicalPlan::Consolidate {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Explicate { input, attrs } => LogicalPlan::Explicate {
            input: Box::new(f(*input)),
            attrs,
        },
    }
}

/// Try every rule at this node. `Ok` carries the rewritten plan (the
/// rewrite was logged); `Err` returns the plan unchanged.
fn try_rewrite(
    plan: LogicalPlan,
    log: &mut Vec<Rewrite>,
) -> std::result::Result<LogicalPlan, LogicalPlan> {
    match plan {
        // selecteq-normalize: resolve names against the input schema.
        LogicalPlan::SelectEq { input, attr, value } => {
            let resolved = input.output_schema().ok().and_then(|schema| {
                let i = schema.index_of(&attr).ok()?;
                let node = schema.domain(i).node(&value).ok()?;
                Some((schema.universal_item().with_component(i, node), schema))
            });
            match resolved {
                Some((region, schema)) => {
                    log.push(Rewrite {
                        rule: "selecteq-normalize",
                        detail: format!(
                            "{attr} = {value} becomes region selection {}",
                            schema.display_item(&region)
                        ),
                    });
                    Ok(LogicalPlan::Select { input, region })
                }
                // Unresolvable names: leave for the executor to report.
                None => Err(LogicalPlan::SelectEq { input, attr, value }),
            }
        }
        LogicalPlan::Select { input, region } => match *input {
            // select-pushdown-join: split the region along the join's
            // schema mapping and select each input first.
            LogicalPlan::Join { left, right } => {
                let parts = match (left.output_schema(), right.output_schema()) {
                    (Ok(ls), Ok(rs)) => join_parts(&ls, &rs).ok().map(|p| (p, ls, rs)),
                    _ => None,
                };
                match parts {
                    Some((parts, ls, rs)) => {
                        let left_arity = ls.arity();
                        let region_l = Item::new(region.components()[..left_arity].to_vec());
                        let region_r = Item::new(
                            (0..rs.arity())
                                .map(|j| {
                                    if let Some(&(i, _)) =
                                        parts.shared.iter().find(|&&(_, sj)| sj == j)
                                    {
                                        region.component(i)
                                    } else {
                                        let pos = parts
                                            .right_only
                                            .iter()
                                            .position(|&r| r == j)
                                            .expect("partition");
                                        region.component(left_arity + pos)
                                    }
                                })
                                .collect(),
                        );
                        log.push(Rewrite {
                            rule: "select-pushdown-join",
                            detail: format!(
                                "selection split across join inputs: left {}, right {}",
                                ls.display_item(&region_l),
                                rs.display_item(&region_r)
                            ),
                        });
                        Ok(LogicalPlan::Join {
                            left: Box::new(LogicalPlan::Select {
                                input: left,
                                region: region_l,
                            }),
                            right: Box::new(LogicalPlan::Select {
                                input: right,
                                region: region_r,
                            }),
                        })
                    }
                    None => Err(LogicalPlan::Select {
                        input: Box::new(LogicalPlan::Join { left, right }),
                        region,
                    }),
                }
            }
            // select-pushdown-union: σ distributes over ∪.
            LogicalPlan::Union { left, right } => {
                log.push(Rewrite {
                    rule: "select-pushdown-union",
                    detail: "selection distributed into both union branches".into(),
                });
                Ok(LogicalPlan::Union {
                    left: Box::new(LogicalPlan::Select {
                        input: left,
                        region: region.clone(),
                    }),
                    right: Box::new(LogicalPlan::Select {
                        input: right,
                        region,
                    }),
                })
            }
            // consolidate-hoist: consolidate the selected result, not
            // the whole input.
            LogicalPlan::Consolidate { input } => {
                log.push(Rewrite {
                    rule: "consolidate-hoist",
                    detail: "consolidate hoisted above selection \
                             (consolidates the smaller selected result)"
                        .into(),
                });
                Ok(LogicalPlan::Consolidate {
                    input: Box::new(LogicalPlan::Select { input, region }),
                })
            }
            // explicate-select-fusion: restrict fan-out to the region
            // before expanding.
            LogicalPlan::Explicate { input, attrs } => {
                log.push(Rewrite {
                    rule: "explicate-select-fusion",
                    detail: "explication fan-out restricted to the selected \
                             region before expansion"
                        .into(),
                });
                Ok(LogicalPlan::Explicate {
                    input: Box::new(LogicalPlan::Select { input, region }),
                    attrs,
                })
            }
            other => Err(LogicalPlan::Select {
                input: Box::new(other),
                region,
            }),
        },
        // consolidate-idempotent: §3.3.1's unique minimum makes the
        // second consolidate a no-op.
        LogicalPlan::Consolidate { input } => match *input {
            LogicalPlan::Consolidate { input: inner } => {
                log.push(Rewrite {
                    rule: "consolidate-idempotent",
                    detail: "Consolidate∘Consolidate collapsed (consolidate is idempotent)".into(),
                });
                Ok(LogicalPlan::Consolidate { input: inner })
            }
            other => Err(LogicalPlan::Consolidate {
                input: Box::new(other),
            }),
        },
        other => Err(other),
    }
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// A plan execution result: the canonical relation plus the recorded
/// execution trace.
#[derive(Debug)]
pub struct Executed {
    /// The canonical (root-consolidated) result relation.
    pub relation: HRelation,
    /// The span tree recorded while the plan ran: one node per plan
    /// operator (named by [`LogicalPlan::kind`], with `rows`, own-op
    /// `own_ns` and per-node cache-attribution fields), plus a
    /// `Canonicalize` node for the root consolidate, plus whatever the
    /// operators themselves opened underneath (closure builds,
    /// subsumption-core builds, parallel chunks).
    pub trace: QueryTrace,
    /// Tuples removed by the final canonicalizing consolidate.
    pub canonicalized_away: usize,
}

impl LogicalPlan {
    /// Execute this plan as written (no rewriting) and canonicalize the
    /// result to the unique minimal physical form (see the module docs
    /// for why the root consolidate is part of the plan contract).
    ///
    /// Callers wanting the optimized pipeline run
    /// `plan.optimize().0.execute()`; both evaluations produce
    /// byte-identical relations (property-tested in
    /// `crates/core/tests/properties.rs`).
    pub fn execute(&self) -> Result<Executed> {
        let (result, trace) = hrdm_obs::trace::capture("plan.execute", || -> Result<_> {
            let raw = self.eval()?;
            let mut span = hrdm_obs::span!("Canonicalize");
            let before = attrib::snapshot();
            let start = Instant::now();
            let canonical = crate::consolidate::consolidate(&raw);
            let own_ns = start.elapsed().as_nanos() as u64;
            if span.is_active() {
                span.field_u64("rows", canonical.relation.len() as u64);
                span.field_u64("eliminated", canonical.removed.len() as u64);
                annotate_attrib(&mut span, &attrib::since(&before));
                span.field_u64("own_ns", own_ns);
            }
            Ok((canonical.relation, canonical.removed.len()))
        });
        let (relation, canonicalized_away) = result?;
        stats::record_plan_exec();
        Ok(Executed {
            relation,
            trace,
            canonicalized_away,
        })
    }

    fn eval(&self) -> Result<HRelation> {
        // The node's span opens before its children evaluate, so child
        // spans (and anything the operators open — closure builds,
        // parallel chunks) parent under it; own-op time and cache
        // attribution are measured around this node's operator only.
        let mut span = hrdm_obs::span!(self.kind());
        if span.is_active() {
            self.annotate(&mut span);
        }
        let inputs: Vec<HRelation> = self
            .children()
            .iter()
            .map(|c| c.eval())
            .collect::<Result<_>>()?;
        let before = attrib::snapshot();
        let start = Instant::now();
        let (out, extras) = self.apply(inputs)?;
        let own_ns = start.elapsed().as_nanos() as u64;
        stats::record_plan_node(out.len(), own_ns);
        if span.is_active() {
            span.field_u64("rows", out.len() as u64);
            for (key, v) in extras {
                span.field_u64(key, v);
            }
            annotate_attrib(&mut span, &attrib::since(&before));
            span.field_u64("own_ns", own_ns);
        }
        Ok(out)
    }

    /// Run this node's own operator over its already-evaluated inputs,
    /// returning the result plus any extra trace fields. Also the entry
    /// point for [`crate::differential`]'s node-local recomputation.
    pub(crate) fn apply(
        &self,
        mut inputs: Vec<HRelation>,
    ) -> Result<(HRelation, Vec<(&'static str, u64)>)> {
        let mut take = || inputs.remove(0);
        match self {
            LogicalPlan::Scan { relation, .. } => Ok(((**relation).clone(), vec![])),
            LogicalPlan::Select { region, .. } => Ok((ops::select(&take(), region)?, vec![])),
            LogicalPlan::SelectEq { attr, value, .. } => {
                let child = take();
                let schema = child.schema();
                let i = schema.index_of(attr)?;
                let node = schema.domain(i).node(value)?;
                let region = schema.universal_item().with_component(i, node);
                Ok((ops::select(&child, &region)?, vec![]))
            }
            LogicalPlan::Project { attrs, .. } => Ok((ops::project(&take(), attrs)?, vec![])),
            LogicalPlan::Join { .. } => {
                let l = take();
                let r = take();
                Ok((ops::join(&l, &r)?, vec![]))
            }
            LogicalPlan::Union { .. } => {
                let l = take();
                let r = take();
                Ok((ops::union(&l, &r)?, vec![]))
            }
            LogicalPlan::Intersect { .. } => {
                let l = take();
                let r = take();
                Ok((ops::intersection(&l, &r)?, vec![]))
            }
            LogicalPlan::Diff { .. } => {
                let l = take();
                let r = take();
                Ok((ops::difference(&l, &r)?, vec![]))
            }
            LogicalPlan::Consolidate { .. } => {
                let out = crate::consolidate::consolidate(&take());
                let eliminated = out.removed.len() as u64;
                Ok((out.relation, vec![("eliminated", eliminated)]))
            }
            LogicalPlan::Explicate { attrs, .. } => {
                Ok((crate::explicate::explicate(&take(), attrs)?, vec![]))
            }
        }
    }

    /// Stable, schema-derived span fields for this node (no row counts
    /// or timings — those are attached after the operator runs).
    fn annotate(&self, span: &mut hrdm_obs::SpanGuard) {
        match self {
            LogicalPlan::Scan { name, .. } => span.field_str("rel", name.clone()),
            LogicalPlan::Select { input, region } => {
                if let Ok(s) = input.output_schema() {
                    span.field_str("region", s.display_item(region));
                }
            }
            LogicalPlan::SelectEq { attr, value, .. } => {
                span.field_str("attr", attr.clone());
                span.field_str("value", value.clone());
            }
            LogicalPlan::Project { input, attrs } | LogicalPlan::Explicate { input, attrs } => {
                if let Ok(s) = input.output_schema() {
                    let names: Vec<&str> = attrs
                        .iter()
                        .filter(|&&a| a < s.arity())
                        .map(|&a| s.attribute(a).name())
                        .collect();
                    span.field_str("attrs", names.join(","));
                }
            }
            _ => {}
        }
    }
}

/// Attach the nonzero cache-attribution deltas as span fields, in
/// [`attrib::ALL_KEYS`] order.
fn annotate_attrib(span: &mut hrdm_obs::SpanGuard, delta: &attrib::AttribSnapshot) {
    for (key, field) in attrib::ALL_KEYS {
        let v = delta.get(key);
        if v > 0 {
            span.field_u64(field, v);
        }
    }
}

// ---------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------

impl LogicalPlan {
    /// The operator kind as a static name — used as the span name for
    /// this node's execution trace, so `TRACE` output and chrome-trace
    /// events carry the node kind directly.
    pub fn kind(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Select { .. } => "Select",
            LogicalPlan::SelectEq { .. } => "SelectEq",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Union { .. } => "Union",
            LogicalPlan::Intersect { .. } => "Intersect",
            LogicalPlan::Diff { .. } => "Diff",
            LogicalPlan::Consolidate { .. } => "Consolidate",
            LogicalPlan::Explicate { .. } => "Explicate",
        }
    }

    /// One-line label for this node (no children), used by the EXPLAIN
    /// tree renderer.
    pub fn label(&self) -> String {
        match self {
            LogicalPlan::Scan { name, relation } => {
                format!("Scan {name} [{} stored tuple(s)]", relation.len())
            }
            LogicalPlan::Select { input, region } => match input.output_schema() {
                Ok(s) => format!("Select σ{}", s.display_item(region)),
                Err(_) => format!("Select σ{region:?}"),
            },
            LogicalPlan::SelectEq { attr, value, .. } => {
                format!("SelectEq {attr} = {value}")
            }
            LogicalPlan::Project { input, attrs } => match input.output_schema() {
                Ok(s) => {
                    let names: Vec<&str> = attrs
                        .iter()
                        .filter(|&&a| a < s.arity())
                        .map(|&a| s.attribute(a).name())
                        .collect();
                    format!("Project ({})", names.join(", "))
                }
                Err(_) => format!("Project {attrs:?}"),
            },
            LogicalPlan::Join { .. } => "Join".into(),
            LogicalPlan::Union { .. } => "Union".into(),
            LogicalPlan::Intersect { .. } => "Intersect".into(),
            LogicalPlan::Diff { .. } => "Diff".into(),
            LogicalPlan::Consolidate { .. } => "Consolidate".into(),
            LogicalPlan::Explicate { input, attrs } => match input.output_schema() {
                Ok(s) => {
                    let names: Vec<&str> = attrs
                        .iter()
                        .filter(|&&a| a < s.arity())
                        .map(|&a| s.attribute(a).name())
                        .collect();
                    format!("Explicate on ({})", names.join(", "))
                }
                Err(_) => format!("Explicate on {attrs:?}"),
            },
        }
    }

    pub(crate) fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::SelectEq { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Consolidate { input }
            | LogicalPlan::Explicate { input, .. } => vec![input],
            LogicalPlan::Join { left, right }
            | LogicalPlan::Union { left, right }
            | LogicalPlan::Intersect { left, right }
            | LogicalPlan::Diff { left, right } => vec![left, right],
        }
    }

    /// Render this plan as an indented tree (one node per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.label());
        self.render_children("", &mut out);
        out
    }

    fn render_children(&self, prefix: &str, out: &mut String) {
        let children = self.children();
        for (k, child) in children.iter().enumerate() {
            let last = k + 1 == children.len();
            let (tee, cont) = if last {
                ("└── ", "    ")
            } else {
                ("├── ", "│   ")
            };
            let _ = writeln!(out, "{prefix}{tee}{}", child.label());
            child.render_children(&format!("{prefix}{cont}"), out);
        }
    }

    /// Optimize this plan and render the result with rewrite and
    /// cost-model annotations — the body of the HQL `EXPLAIN`
    /// statement.
    ///
    /// The cost section uses the *fixed* default calibration so the
    /// rendering is deterministic (golden-snapshot safe); measured
    /// histogram quantiles feed only runtime planning through
    /// [`crate::cost::optimize_with_cost`].
    pub fn explain(&self) -> String {
        let (optimized, rewrites) = self.optimize();
        let mut out = optimized.render();
        if rewrites.is_empty() {
            out.push_str("no rewrites applied\n");
        } else {
            out.push_str("rewrites applied:\n");
            for (k, rw) in rewrites.iter().enumerate() {
                let _ = writeln!(out, "  {}. {} — {}", k + 1, rw.rule, rw.detail);
            }
        }
        out.push_str(&crate::cost::explain_costs(&optimized));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_fixtures::*;
    use crate::truth::Truth;
    use crate::tuple::Tuple;

    /// Byte-level identity: the full stored tuple set.
    fn tuples_of(r: &HRelation) -> Vec<(Item, Truth)> {
        r.iter().map(|(i, t)| (i.clone(), t)).collect()
    }

    fn flying_plan() -> (LogicalPlan, HRelation) {
        let schema = animal_schema();
        let r = flying(&schema);
        (LogicalPlan::scan("Flying", r.clone()), r)
    }

    #[test]
    fn scan_executes_to_consolidated_input() {
        let (plan, r) = flying_plan();
        let out = plan.execute().unwrap();
        // Flying has one redundant tuple (+Peter under +AFP).
        assert_eq!(out.canonicalized_away, 1);
        assert_eq!(
            tuples_of(&out.relation),
            tuples_of(&crate::consolidate::consolidate(&r).relation)
        );
        let scan = out.trace.find("Scan").expect("scan node in trace");
        assert_eq!(scan.field_u64("rows"), Some(r.len() as u64));
        assert_eq!(scan.field("rel"), Some("Flying"));
    }

    #[test]
    fn selecteq_normalizes_and_matches_select() {
        let (plan, r) = flying_plan();
        let eq = plan.clone().select_eq("Creature", "Penguin");
        let (optimized, rewrites) = eq.optimize();
        assert_eq!(rewrites[0].rule, "selecteq-normalize");
        assert!(matches!(optimized, LogicalPlan::Select { .. }));
        let region = r.item(&["Penguin"]).unwrap();
        let direct = plan.select(region).execute().unwrap();
        assert_eq!(
            tuples_of(&eq.execute().unwrap().relation),
            tuples_of(&direct.relation)
        );
        assert_eq!(
            tuples_of(&optimized.execute().unwrap().relation),
            tuples_of(&direct.relation)
        );
    }

    #[test]
    fn explicate_select_fusion_is_byte_identical_and_prunes() {
        let (plan, r) = flying_plan();
        let region = r.item(&["Penguin"]).unwrap();
        let query = plan.explicate(vec![0]).select(region);
        let (optimized, rewrites) = query.optimize();
        assert!(rewrites.iter().any(|w| w.rule == "explicate-select-fusion"));
        let naive = query.execute().unwrap();
        let fused = optimized.execute().unwrap();
        assert_eq!(tuples_of(&naive.relation), tuples_of(&fused.relation));
        // The fused pipeline expands fewer rows: the explicate node now
        // sees only the penguin region.
        let explicate_rows = |t: &hrdm_obs::QueryTrace| -> u64 {
            t.nodes()
                .iter()
                .filter(|n| n.name == "Explicate")
                .filter_map(|n| n.field_u64("rows"))
                .sum()
        };
        assert!(
            explicate_rows(&fused.trace) < explicate_rows(&naive.trace),
            "fusion must prune explication fan-out: fused {} vs naive {}",
            explicate_rows(&fused.trace),
            explicate_rows(&naive.trace)
        );
    }

    #[test]
    fn consolidate_hoist_is_byte_identical_via_canonical_form() {
        // The adversarial case: a parentless negated tuple appears in
        // one evaluation order and not the other; the canonical root
        // consolidate reconciles them.
        let schema = animal_schema();
        let mut r = HRelation::new(schema.clone());
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Paul"], Truth::Negative).unwrap();
        let region = r.item(&["Galapagos Penguin"]).unwrap();
        let query = LogicalPlan::scan("R", r).consolidate().select(region);
        let (optimized, rewrites) = query.optimize();
        assert!(rewrites.iter().any(|w| w.rule == "consolidate-hoist"));
        assert_eq!(
            tuples_of(&query.execute().unwrap().relation),
            tuples_of(&optimized.execute().unwrap().relation)
        );
    }

    #[test]
    fn consolidate_idempotence_collapses() {
        let (plan, _) = flying_plan();
        let query = plan.consolidate().consolidate();
        let (optimized, rewrites) = query.optimize();
        assert!(rewrites.iter().any(|w| w.rule == "consolidate-idempotent"));
        // Exactly one Consolidate survives.
        fn count(p: &LogicalPlan) -> usize {
            let own = usize::from(matches!(p, LogicalPlan::Consolidate { .. }));
            own + p.children().iter().map(|c| count(c)).sum::<usize>()
        }
        assert_eq!(count(&optimized), 1);
        assert_eq!(
            tuples_of(&query.execute().unwrap().relation),
            tuples_of(&optimized.execute().unwrap().relation)
        );
    }

    #[test]
    fn select_pushdown_union_fires_and_agrees() {
        let schema = animal_schema();
        let a = flying(&schema);
        let mut b = HRelation::new(schema.clone());
        b.assert_fact(&["Canary"], Truth::Positive).unwrap();
        let region = a.item(&["Bird"]).unwrap();
        let query = LogicalPlan::scan("A", a)
            .union(LogicalPlan::scan("B", b))
            .select(region);
        let (optimized, rewrites) = query.optimize();
        assert!(rewrites.iter().any(|w| w.rule == "select-pushdown-union"));
        assert_eq!(
            tuples_of(&query.execute().unwrap().relation),
            tuples_of(&optimized.execute().unwrap().relation)
        );
    }

    #[test]
    fn select_pushdown_join_splits_region() {
        let r = respects();
        let renamed = crate::ops::rename(&r, "Teacher", "Mentor").unwrap();
        // The Mentor attribute keeps the Teacher domain graph, so its
        // unrestricted region component is that graph's root.
        let region_names = ["John", "Teacher", "Teacher"];
        let query = LogicalPlan::scan("R", r.clone()).join(LogicalPlan::scan("M", renamed));
        let schema = query.output_schema().unwrap();
        let region = schema.item(&region_names).unwrap();
        let query = query.select(region);
        let (optimized, rewrites) = query.optimize();
        assert!(rewrites.iter().any(|w| w.rule == "select-pushdown-join"));
        // The selection now sits below the join on both sides.
        assert!(matches!(optimized, LogicalPlan::Join { .. }));
        assert_eq!(
            tuples_of(&query.execute().unwrap().relation),
            tuples_of(&optimized.execute().unwrap().relation)
        );
    }

    #[test]
    fn output_schema_follows_join_layout() {
        let r = respects();
        let renamed = crate::ops::rename(&r, "Teacher", "Mentor").unwrap();
        let plan = LogicalPlan::scan("R", r).join(LogicalPlan::scan("M", renamed));
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.attribute(0).name(), "Student");
        assert_eq!(schema.attribute(1).name(), "Teacher");
        assert_eq!(schema.attribute(2).name(), "Mentor");
    }

    #[test]
    fn explain_renders_tree_and_rewrites() {
        let (plan, r) = flying_plan();
        let region = r.item(&["Penguin"]).unwrap();
        let text = plan.explicate(vec![0]).select(region).explain();
        assert!(text.contains("Explicate on (Creature)"), "{text}");
        assert!(text.contains("Scan Flying"), "{text}");
        assert!(text.contains("explicate-select-fusion"), "{text}");
        assert!(text.contains("└── "), "{text}");

        let (plan, _) = flying_plan();
        let trivial = plan.explain();
        assert!(trivial.contains("no rewrites applied"), "{trivial}");
    }

    #[test]
    fn execute_returns_an_assembled_trace() {
        let (plan, r) = flying_plan();
        let region = r.item(&["Penguin"]).unwrap();
        let out = plan.select(region).execute().unwrap();
        let root = out.trace.root.as_ref().expect("trace recorded");
        assert_eq!(root.name, "plan.execute");
        // Node kinds mirror the executed plan, plus the canonicalizing
        // root consolidate.
        let select = out.trace.find("Select").expect("select node");
        // The Scan child parents under Select; operator-internal spans
        // (e.g. a closure build) may sit alongside it.
        assert_eq!(select.children[0].name, "Scan");
        let canon = out.trace.find("Canonicalize").expect("canonicalize node");
        assert_eq!(
            canon.field_u64("rows"),
            Some(out.relation.len() as u64),
            "canonicalize rows field is the final row count"
        );
        assert_eq!(
            canon.field_u64("eliminated"),
            Some(out.canonicalized_away as u64)
        );
        // Every plan node carries rows and own-op timing (operator-
        // internal spans are dotted names; plan kinds are bare words).
        for n in out.trace.nodes() {
            if !n.name.contains('.') {
                assert!(n.field_u64("rows").is_some(), "{} missing rows", n.name);
                assert!(n.field_u64("own_ns").is_some(), "{} missing own_ns", n.name);
            }
        }
        // The select runs over a fresh graph's closure on this thread:
        // cache attribution shows up on the node that did the work.
        let attributed: u64 = out
            .trace
            .nodes()
            .iter()
            .map(|n| {
                n.field_u64("closure_hits").unwrap_or(0)
                    + n.field_u64("closure_misses").unwrap_or(0)
            })
            .sum();
        assert!(attributed > 0, "no closure traffic attributed to any node");
    }

    #[test]
    fn execute_records_engine_stats() {
        let before = stats::snapshot();
        let (plan, _) = flying_plan();
        plan.execute().unwrap();
        let after = stats::snapshot();
        assert!(after.plan_execs > before.plan_execs);
        assert!(after.plan_nodes > before.plan_nodes);
    }

    #[test]
    fn errors_surface_from_the_executor() {
        let (plan, _) = flying_plan();
        assert!(matches!(
            plan.clone().project(vec![7]).execute(),
            Err(CoreError::AttributeIndexOutOfRange(7))
        ));
        assert!(plan.select_eq("Nope", "Bird").execute().is_err());
    }

    #[test]
    fn conflicted_input_reports_input_inconsistent() {
        let schema = animal_schema();
        let mut r = flying(&schema);
        r.insert(Tuple::negative(r.item(&["Galapagos Penguin"]).unwrap()))
            .unwrap();
        let region = r.item(&["Penguin"]).unwrap();
        let plan = LogicalPlan::scan("Conflicted", r).select(region);
        assert!(matches!(
            plan.execute(),
            Err(CoreError::InputInconsistent(_))
        ));
    }
}
