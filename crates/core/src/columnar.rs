//! Sorted columnar runs of interned symbols, batch slicing, and the
//! merge spine — the physical layer behind [`crate::batch`].
//!
//! A [`ColumnarRelation`] re-represents a relation's stored tuples
//! column-major: one `Vec<NodeId>` of sort keys plus one `Vec<Sym>` of
//! interned node names per attribute, with a parallel truth column.
//! Rows keep the exact order of [`HRelation::iter`] (items sort
//! lexicographically by node id), so rebuilding a `BTreeMap` from a run
//! round-trips byte-for-byte. Operators slice the columns into
//! [`BATCH_ROWS`]-row [`Batch`]es and emit per-batch sorted [`Run`]s of
//! candidate items; a [`Spine`] k-way-merges the runs back into one
//! globally sorted, duplicate-free stream.
//!
//! A process-global intersection cache (keyed by graph version, like
//! the subsumption cache) memoizes `maximal_intersection` calls across
//! batches and queries; `bench::fixtures::clear_shared_caches` resets
//! it alongside the interner.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use hrdm_hierarchy::{HierarchyGraph, NodeId};

use crate::intern::{self, Sym};
use crate::item::Item;
use crate::relation::HRelation;
use crate::schema::Schema;
use crate::truth::Truth;

/// Rows per execution batch: operators process column slices of at most
/// this many rows at a time.
pub const BATCH_ROWS: usize = 1024;

/// One relation's stored tuples, column-major and sorted.
pub struct ColumnarRelation {
    schema: Arc<Schema>,
    /// Per attribute: the node-id sort keys, row-aligned.
    node_cols: Vec<Vec<NodeId>>,
    /// Per attribute: the interned node names, row-aligned with
    /// `node_cols` (the `Sym` payload render/export paths hash and
    /// print without touching `Arc<str>`s). Built lazily on first
    /// access: the batch executor itself works on node ids only, so
    /// query evaluation never pays the interner.
    sym_cols: OnceLock<Vec<Vec<Sym>>>,
    truths: Vec<Truth>,
}

impl ColumnarRelation {
    /// Re-represent `r` columnar. Row order is `HRelation::iter` order
    /// (lexicographic by node id), so the run is born sorted.
    pub fn from_relation(r: &HRelation) -> ColumnarRelation {
        let schema = r.schema().clone();
        let arity = schema.arity();
        let mut node_cols: Vec<Vec<NodeId>> = vec![Vec::with_capacity(r.len()); arity];
        let mut truths = Vec::with_capacity(r.len());
        for (item, truth) in r.iter() {
            for (i, col) in node_cols.iter_mut().enumerate() {
                col.push(item.component(i));
            }
            truths.push(truth);
        }
        ColumnarRelation {
            schema,
            node_cols,
            sym_cols: OnceLock::new(),
            truths,
        }
    }

    /// The interned-symbol columns, built on first use. Per-column
    /// dictionary: node id → interned name, so each distinct node's
    /// name is interned once per build, not per row.
    fn sym_cols(&self) -> &Vec<Vec<Sym>> {
        self.sym_cols.get_or_init(|| {
            let arity = self.node_cols.len();
            let mut dicts: Vec<HashMap<NodeId, Sym>> = vec![HashMap::new(); arity];
            (0..arity)
                .map(|i| {
                    self.node_cols[i]
                        .iter()
                        .map(|&node| {
                            *dicts[i].entry(node).or_insert_with(|| {
                                intern::intern(self.schema.domain(i).name(node).as_str())
                            })
                        })
                        .collect()
                })
                .collect()
        })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows (stored tuples).
    pub fn len(&self) -> usize {
        self.truths.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.truths.is_empty()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.node_cols.len()
    }

    /// Number of [`BATCH_ROWS`]-row batches covering the run.
    pub fn batch_count(&self) -> usize {
        self.len().div_ceil(BATCH_ROWS)
    }

    /// Iterate the run as column-slice batches.
    pub fn batches(&self) -> impl Iterator<Item = Batch<'_>> {
        (0..self.batch_count()).map(move |k| {
            let start = k * BATCH_ROWS;
            let len = BATCH_ROWS.min(self.len() - start);
            Batch {
                rel: self,
                start,
                len,
            }
        })
    }

    /// The full node-id column `i` (operators that prefetch over a
    /// column's distinct values read it whole; batch-local work goes
    /// through [`Batch::col`]).
    pub fn col(&self, i: usize) -> &[NodeId] {
        &self.node_cols[i]
    }

    /// Reassemble row `row` as an item (for tests and spot checks; the
    /// batch operators work on the column slices directly).
    pub fn item(&self, row: usize) -> Item {
        Item::new(self.node_cols.iter().map(|c| c[row]).collect())
    }

    /// The truth column.
    pub fn truths(&self) -> &[Truth] {
        &self.truths
    }
}

/// A contiguous ≤[`BATCH_ROWS`]-row window over a [`ColumnarRelation`]:
/// column slices, no copying.
#[derive(Clone, Copy)]
pub struct Batch<'a> {
    rel: &'a ColumnarRelation,
    start: usize,
    len: usize,
}

impl<'a> Batch<'a> {
    /// Rows in this batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the degenerate empty batch.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node-id slice of column `i`.
    pub fn col(&self, i: usize) -> &'a [NodeId] {
        &self.rel.node_cols[i][self.start..self.start + self.len]
    }

    /// Interned-symbol slice of column `i` (interns lazily on first
    /// access per relation).
    pub fn syms(&self, i: usize) -> &'a [Sym] {
        &self.rel.sym_cols()[i][self.start..self.start + self.len]
    }

    /// Truth slice, row-aligned with the columns.
    pub fn truths(&self) -> &'a [Truth] {
        &self.rel.truths[self.start..self.start + self.len]
    }

    /// Reassemble batch-local row `k` as an item.
    pub fn item(&self, k: usize) -> Item {
        self.rel.item(self.start + k)
    }
}

/// A sorted, duplicate-free run of items (one operator batch's
/// candidate output).
pub struct Run {
    items: Vec<Item>,
}

impl Run {
    /// Build from an already-sorted set.
    pub fn from_set(set: BTreeSet<Item>) -> Run {
        Run {
            items: set.into_iter().collect(),
        }
    }

    /// Build from arbitrary items: sorts and dedups.
    pub fn from_items(mut items: Vec<Item>) -> Run {
        items.sort();
        items.dedup();
        Run { items }
    }

    /// Items in order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the run carries nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The merge spine: collects per-batch runs and k-way-merges them into
/// one globally sorted, duplicate-free item stream.
#[derive(Default)]
pub struct Spine {
    runs: Vec<Run>,
}

impl Spine {
    /// An empty spine.
    pub fn new() -> Spine {
        Spine::default()
    }

    /// Add a run (empty runs are dropped).
    pub fn push(&mut self, run: Run) {
        if !run.is_empty() {
            self.runs.push(run);
        }
    }

    /// Number of live runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Merge all runs into one sorted, duplicate-free vector —
    /// identical to collecting every run into a `BTreeSet`.
    pub fn merge(self) -> Vec<Item> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        match self.runs.len() {
            0 => return Vec::new(),
            1 => return self.runs.into_iter().next().expect("one run").items,
            _ => {}
        }
        let mut heads: Vec<std::vec::IntoIter<Item>> =
            self.runs.into_iter().map(|r| r.items.into_iter()).collect();
        let mut heap: BinaryHeap<Reverse<(Item, usize)>> = BinaryHeap::new();
        for (k, it) in heads.iter_mut().enumerate() {
            if let Some(item) = it.next() {
                heap.push(Reverse((item, k)));
            }
        }
        let mut out: Vec<Item> = Vec::new();
        while let Some(Reverse((item, k))) = heap.pop() {
            if out.last() != Some(&item) {
                out.push(item);
            }
            if let Some(next) = heads[k].next() {
                heap.push(Reverse((next, k)));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Shared intersection cache
// ---------------------------------------------------------------------

type IntersectKey = (u64, u64, u32, u32);
type IntersectMap = HashMap<IntersectKey, Arc<Vec<NodeId>>>;

fn intersect_cache() -> &'static Mutex<IntersectMap> {
    static CACHE: OnceLock<Mutex<IntersectMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Bound on cached entries; past it the cache is dropped wholesale
/// (benchmark sweeps over many throwaway graphs must not grow it
/// without limit).
const INTERSECT_CACHE_CAP: usize = 1 << 16;

/// `graph.maximal_intersection(a, b)` through the process-global cache.
///
/// Keyed by the graph's `(id, generation)` version — the same
/// invalidation discipline as the reachability cache — so a mutated or
/// fresh graph can never observe another graph's entries. Returns the
/// cached vector and whether this call was a hit (for the `batch.*`
/// memo counters).
pub(crate) fn cached_intersection(
    graph: &HierarchyGraph,
    a: NodeId,
    b: NodeId,
) -> (Arc<Vec<NodeId>>, bool) {
    let (gid, generation) = graph.version();
    let key: IntersectKey = (gid, generation, a.index() as u32, b.index() as u32);
    {
        let cache = intersect_cache().lock().expect("intersect cache poisoned");
        if let Some(hit) = cache.get(&key) {
            return (hit.clone(), true);
        }
    }
    let computed = Arc::new(graph.maximal_intersection(a, b));
    let mut cache = intersect_cache().lock().expect("intersect cache poisoned");
    if cache.len() >= INTERSECT_CACHE_CAP {
        cache.clear();
    }
    let entry = cache.entry(key).or_insert_with(|| computed.clone());
    (entry.clone(), false)
}

/// A dictionary-encoded intersection matrix over one column pair: the
/// columns' distinct values are dense-indexed, and the full
/// `|lvals| × |rvals|` matrix of `maximal_intersection` results is
/// computed up front in parallel. The pairwise operators (join, set
/// ops) then resolve each row pair's axis with two array loads —
/// no hashing and no locks inside the row-pair loop.
pub(crate) struct IntersectionMatrix {
    /// Per left row: dense index into the matrix rows.
    l_dense: Vec<u32>,
    /// Per right row: dense index into the matrix columns.
    r_dense: Vec<u32>,
    /// Matrix width (`|rvals|`).
    width: usize,
    /// Row-major `|lvals| × |rvals|` intersection results.
    cells: Vec<Arc<Vec<NodeId>>>,
}

impl IntersectionMatrix {
    /// Encode `lcol`/`rcol` against their distinct values and compute
    /// every distinct-pair intersection under `graph` in parallel.
    pub(crate) fn build(graph: &HierarchyGraph, lcol: &[NodeId], rcol: &[NodeId]) -> Self {
        let mut lvals: Vec<NodeId> = lcol.to_vec();
        lvals.sort_unstable();
        lvals.dedup();
        let mut rvals: Vec<NodeId> = rcol.to_vec();
        rvals.sort_unstable();
        rvals.dedup();
        let dense = |vals: &[NodeId], col: &[NodeId]| -> Vec<u32> {
            col.iter()
                .map(|v| vals.binary_search(v).expect("value in its dictionary") as u32)
                .collect()
        };
        let width = rvals.len();
        let cells = crate::parallel::par_map_indexed(lvals.len() * width, |k| {
            Arc::new(graph.maximal_intersection(lvals[k / width], rvals[k % width]))
        });
        IntersectionMatrix {
            l_dense: dense(&lvals, lcol),
            r_dense: dense(&rvals, rcol),
            width,
            cells,
        }
    }

    /// The intersection axis for (left row `lrow`, right row `rrow`).
    pub(crate) fn axis(&self, lrow: usize, rrow: usize) -> &Arc<Vec<NodeId>> {
        &self.cells[self.l_dense[lrow] as usize * self.width + self.r_dense[rrow] as usize]
    }

    /// Number of distinct-pair cells computed (the operator's memo-miss
    /// count; every row-pair lookup beyond these is a hit).
    pub(crate) fn computed(&self) -> u64 {
        self.cells.len() as u64
    }
}

/// Drop every cached intersection (benchmark isolation; also keeps
/// throwaway property-test graphs from lingering).
pub fn clear_intersection_cache() {
    intersect_cache()
        .lock()
        .expect("intersect cache poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_fixtures::*;

    #[test]
    fn columnar_round_trips_row_order() {
        let schema = animal_schema();
        let r = flying(&schema);
        let col = ColumnarRelation::from_relation(&r);
        assert_eq!(col.len(), r.len());
        assert_eq!(col.arity(), 1);
        assert!(!col.is_empty());
        let items: Vec<Item> = (0..col.len()).map(|k| col.item(k)).collect();
        let expected: Vec<Item> = r.iter().map(|(i, _)| i.clone()).collect();
        assert_eq!(items, expected);
        let truths: Vec<Truth> = r.iter().map(|(_, t)| t).collect();
        assert_eq!(col.truths(), &truths[..]);
    }

    #[test]
    fn syms_resolve_to_node_names() {
        let schema = animal_schema();
        let r = flying(&schema);
        let col = ColumnarRelation::from_relation(&r);
        for batch in col.batches() {
            for k in 0..batch.len() {
                let node = batch.col(0)[k];
                let sym = batch.syms(0)[k];
                assert_eq!(
                    crate::intern::resolve(sym).as_deref(),
                    Some(schema.domain(0).name(node).as_str())
                );
            }
        }
    }

    #[test]
    fn batches_cover_the_run_without_overlap() {
        let schema = animal_schema();
        let r = flying(&schema);
        let col = ColumnarRelation::from_relation(&r);
        assert_eq!(col.batch_count(), 1); // 4 rows < BATCH_ROWS
        let total: usize = col.batches().map(|b| b.len()).sum();
        assert_eq!(total, col.len());
        let first = col.batches().next().unwrap();
        assert!(!first.is_empty());
        assert_eq!(first.truths().len(), first.len());
        assert_eq!(first.item(0), col.item(0));
    }

    #[test]
    fn spine_merge_equals_btreeset() {
        let schema = animal_schema();
        let r = flying(&schema);
        let items: Vec<Item> = r.iter().map(|(i, _)| i.clone()).collect();
        // Three overlapping runs sliced from the same item pool.
        let mut spine = Spine::new();
        spine.push(Run::from_items(items.clone()));
        spine.push(Run::from_items(items[1..].to_vec()));
        spine.push(Run::from_items(items[..2].to_vec()));
        spine.push(Run::from_set(BTreeSet::new())); // dropped
        assert_eq!(spine.run_count(), 3);
        let merged = spine.merge();
        let expected: Vec<Item> = items
            .iter()
            .cloned()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(merged, expected);
        // Degenerate spines.
        assert!(Spine::new().merge().is_empty());
        let mut one = Spine::new();
        one.push(Run::from_items(items.clone()));
        assert_eq!(one.merge().len(), items.len());
    }

    #[test]
    fn intersection_cache_hits_and_clears() {
        clear_intersection_cache();
        let g = animal_graph();
        let penguin = g.node("Penguin").unwrap();
        let bird = g.node("Bird").unwrap();
        let (first, hit1) = cached_intersection(&g, bird, penguin);
        assert!(!hit1, "fresh cache must miss");
        let (second, hit2) = cached_intersection(&g, bird, penguin);
        assert!(hit2, "second call must hit");
        assert_eq!(first, second);
        assert_eq!(*first, g.maximal_intersection(bird, penguin));
        clear_intersection_cache();
        let (_, hit3) = cached_intersection(&g, bird, penguin);
        assert!(!hit3, "cleared cache must miss");
    }
}
