//! Classical integrity constraints over hierarchical relations (§3.1).
//!
//! "A relational database may include integrity constraints in the form
//! of restrictions on attribute values as a function of other attribute
//! values, restrictions on the number of tuples that satisfy some
//! selection criterion, and so forth…. In general, they should continue
//! to work on hierarchical relations as well."
//!
//! Constraints are declared against the relation's **flat model** — the
//! only semantics the paper gives them — and evaluated through the
//! binding machinery, so a single class tuple can violate a cardinality
//! bound by implying a large extension, and an exception can *restore*
//! a functional dependency the generalization alone would break (the
//! paper's Fig. 4 explicit-cancellation discussion: a front end encodes
//! "colour is unique per animal" exactly this way).

use hrdm_hierarchy::NodeId;

use crate::error::{CoreError, Result};
use crate::flat::flatten;
use crate::item::Item;
use crate::relation::HRelation;

/// A declarative constraint over a relation's flat model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// A functional dependency: atoms agreeing on the `determinant`
    /// attributes must agree on the `dependent` attributes.
    ///
    /// `FD {determinants: [0], dependents: [1]}` over (Animal, Color)
    /// says every animal has at most one colour.
    FunctionalDependency {
        /// Attribute positions forming the key.
        determinants: Vec<usize>,
        /// Attribute positions functionally determined by the key.
        dependents: Vec<usize>,
    },
    /// The extension restricted to `region` may contain at most `limit`
    /// atoms ("restrictions on the number of tuples that satisfy some
    /// selection criterion").
    MaxExtension {
        /// The region (componentwise class restriction).
        region: Item,
        /// Inclusive atom-count bound.
        limit: u128,
    },
    /// The extension restricted to `region` must contain at least
    /// `minimum` atoms (participation / totality).
    MinExtension {
        /// The region.
        region: Item,
        /// Inclusive lower bound.
        minimum: u128,
    },
}

/// A constraint violation, with enough context to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated constraint.
    pub constraint: Constraint,
    /// Human-readable detail (offending key, counts, …).
    pub detail: String,
}

/// Check one constraint; `Ok(())` or the violation.
pub fn check_constraint(relation: &HRelation, constraint: &Constraint) -> Result<(), Violation> {
    match constraint {
        Constraint::FunctionalDependency {
            determinants,
            dependents,
        } => {
            let arity = relation.schema().arity();
            for &a in determinants.iter().chain(dependents) {
                if a >= arity {
                    return Err(Violation {
                        constraint: constraint.clone(),
                        detail: format!("attribute index {a} out of range"),
                    });
                }
            }
            let mut seen: std::collections::BTreeMap<Vec<NodeId>, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for atom in flatten(relation).iter() {
                let key: Vec<NodeId> = determinants.iter().map(|&i| atom.component(i)).collect();
                let val: Vec<NodeId> = dependents.iter().map(|&i| atom.component(i)).collect();
                if let Some(prev) = seen.get(&key) {
                    if prev != &val {
                        let schema = relation.schema();
                        let key_names: Vec<String> = determinants
                            .iter()
                            .zip(&key)
                            .map(|(&i, &n)| schema.domain(i).name(n).to_string())
                            .collect();
                        return Err(Violation {
                            constraint: constraint.clone(),
                            detail: format!(
                                "key ({}) maps to two distinct dependent values",
                                key_names.join(", ")
                            ),
                        });
                    }
                } else {
                    seen.insert(key, val);
                }
            }
            Ok(())
        }
        Constraint::MaxExtension { region, limit } => {
            let count = region_count(relation, region);
            if count > *limit {
                Err(Violation {
                    constraint: constraint.clone(),
                    detail: format!("extension has {count} atoms, limit is {limit}"),
                })
            } else {
                Ok(())
            }
        }
        Constraint::MinExtension { region, minimum } => {
            let count = region_count(relation, region);
            if count < *minimum {
                Err(Violation {
                    constraint: constraint.clone(),
                    detail: format!("extension has {count} atoms, minimum is {minimum}"),
                })
            } else {
                Ok(())
            }
        }
    }
}

fn region_count(relation: &HRelation, region: &Item) -> u128 {
    let product = relation.schema().product();
    flatten(relation)
        .iter()
        .filter(|a| product.subsumes(region.components(), a.components()))
        .count() as u128
}

/// Check a whole constraint set; returns every violation.
pub fn check_constraints(relation: &HRelation, constraints: &[Constraint]) -> Vec<Violation> {
    constraints
        .iter()
        .filter_map(|c| check_constraint(relation, c).err())
        .collect()
}

/// Check constraints and convert violations into a [`CoreError`] for
/// transaction plumbing.
pub fn enforce(relation: &HRelation, constraints: &[Constraint]) -> Result<()> {
    let violations = check_constraints(relation, constraints);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(CoreError::ConstraintViolations(
            violations.into_iter().map(|v| v.detail).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::truth::Truth;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    /// Fig. 4 world: animals and colours.
    fn world() -> HRelation {
        let mut a = HierarchyGraph::new("Animal");
        let elephant = a.add_class("Elephant", a.root()).unwrap();
        let royal = a.add_class("Royal Elephant", elephant).unwrap();
        a.add_instance("Clyde", royal).unwrap();
        a.add_instance("Dumbo", elephant).unwrap();
        let mut c = HierarchyGraph::new("Color");
        c.add_instance("Grey", c.root()).unwrap();
        c.add_instance("White", c.root()).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", Arc::new(a)),
            Attribute::new("Color", Arc::new(c)),
        ]));
        HRelation::new(schema)
    }

    fn unique_color() -> Constraint {
        Constraint::FunctionalDependency {
            determinants: vec![0],
            dependents: vec![1],
        }
    }

    #[test]
    fn fd_satisfied_through_explicit_cancellation() {
        // The paper's Fig. 4 pattern: elephants grey, royals white —
        // with the cancellation, every animal has exactly one colour.
        let mut r = world();
        r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Royal Elephant", "Grey"], Truth::Negative)
            .unwrap();
        r.assert_fact(&["Royal Elephant", "White"], Truth::Positive)
            .unwrap();
        assert!(check_constraint(&r, &unique_color()).is_ok());
    }

    #[test]
    fn fd_violated_without_cancellation() {
        // "Having said elephants are grey, it is not enough to say that
        // royal elephants are white: we would then be implying that
        // royal elephants were somehow both grey and white."
        let mut r = world();
        r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Royal Elephant", "White"], Truth::Positive)
            .unwrap();
        let v = check_constraint(&r, &unique_color()).unwrap_err();
        assert!(v.detail.contains("Clyde"), "{}", v.detail);
    }

    #[test]
    fn max_extension_counts_class_implications() {
        let mut r = world();
        r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        // One class tuple implies 2 atoms (Clyde, Dumbo) × Grey.
        let region = r.schema().universal_item();
        assert!(check_constraint(
            &r,
            &Constraint::MaxExtension {
                region: region.clone(),
                limit: 2
            }
        )
        .is_ok());
        let v = check_constraint(&r, &Constraint::MaxExtension { region, limit: 1 }).unwrap_err();
        assert!(v.detail.contains("2 atoms"));
    }

    #[test]
    fn min_extension_over_region() {
        let mut r = world();
        r.assert_fact(&["Royal Elephant", "White"], Truth::Positive)
            .unwrap();
        let royal_region = r.item(&["Royal Elephant", "Color"]).unwrap();
        assert!(check_constraint(
            &r,
            &Constraint::MinExtension {
                region: royal_region,
                minimum: 1
            }
        )
        .is_ok());
        let dumbo_region = r.item(&["Dumbo", "Color"]).unwrap();
        assert!(check_constraint(
            &r,
            &Constraint::MinExtension {
                region: dumbo_region,
                minimum: 1
            }
        )
        .is_err());
    }

    #[test]
    fn enforce_collects_all_violations() {
        let mut r = world();
        r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Elephant", "White"], Truth::Positive)
            .unwrap();
        let constraints = vec![
            unique_color(),
            Constraint::MaxExtension {
                region: r.schema().universal_item(),
                limit: 1,
            },
        ];
        let violations = check_constraints(&r, &constraints);
        assert_eq!(violations.len(), 2);
        let err = enforce(&r, &constraints).unwrap_err();
        assert!(matches!(err, CoreError::ConstraintViolations(v) if v.len() == 2));
    }

    #[test]
    fn out_of_range_fd_reports_violation_not_panic() {
        let r = world();
        let bad = Constraint::FunctionalDependency {
            determinants: vec![7],
            dependents: vec![1],
        };
        assert!(check_constraint(&r, &bad).is_err());
    }
}
