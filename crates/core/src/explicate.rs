//! The `explicate` operator (§3.3.2): flattening class values.
//!
//! "The explicate operator takes a relation as its argument, along with
//! a specification of a subset of the attributes of the relation, and
//! produces a relation as the result. The result relation is an (in
//! fact, the only) extension of the input relation and has no
//! universally quantified classes as values for the specified
//! attributes. … This operator is useful when a count, average, or
//! other statistical operation is to be performed over the relation."
//!
//! The algorithm is the paper's: "traverse the relation subsumption
//! graph in reverse topologically sorted order. For the tuple at each
//! node, enumerate the membership of classes that are values for the
//! attributes to be explicated. Insert each tuple obtained from such
//! enumeration into the result relation unless a tuple corresponding to
//! the same item has already been inserted." Most-specific-first
//! insertion is what makes exceptions override generalizations without
//! ever consulting the binding machinery.
//!
//! Explication of an *inconsistent* relation is undefined (a conflicted
//! item's truth depends on traversal order); callers wanting a guarantee
//! should run [`crate::integrity::check_consistency`] first.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::error::{CoreError, Result};
use crate::item::Item;
use crate::parallel;
use crate::relation::HRelation;
use crate::stats;
use crate::subsumption::SubsumptionGraph;
use crate::truth::Truth;

/// Explicate the listed attributes (by index) of `relation`.
///
/// Class values in the listed positions are replaced by their atomic
/// members; other positions are untouched. A class with an empty
/// extension contributes nothing (the paper's classes may be
/// intensional; explication is inherently extensional).
pub fn explicate(relation: &HRelation, attrs: &[usize]) -> Result<HRelation> {
    let arity = relation.schema().arity();
    for (k, &a) in attrs.iter().enumerate() {
        if a >= arity {
            return Err(CoreError::AttributeIndexOutOfRange(a));
        }
        if attrs[..k].contains(&a) {
            return Err(CoreError::DuplicateAttributeIndex(a));
        }
    }
    let mut span = hrdm_obs::span!("core.explicate");
    let start = Instant::now();
    let g = SubsumptionGraph::build(relation);
    let mut order = g.topo_order();
    order.reverse(); // most specific first

    let schema = relation.schema();
    // Per-tuple descendant fan-out is independent per node: enumerate
    // every node's expansion in parallel, then merge sequentially in
    // reverse topological order so the paper's most-specific-first
    // `or_insert` semantics (and hence the output) are exactly those of
    // the serial sweep.
    let expansions: Vec<Vec<Item>> = parallel::par_map_indexed(order.len(), |k| {
        let item = g.item(order[k]);
        // Per-position expansions: extension members for explicated
        // class positions, the original node otherwise.
        let axes: Vec<Vec<hrdm_hierarchy::NodeId>> = item
            .components()
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                if attrs.contains(&i) {
                    schema.domain(i).extension(node)
                } else {
                    vec![node]
                }
            })
            .collect();
        cartesian(&axes).into_iter().map(Item::new).collect()
    });

    let mut out: BTreeMap<Item, Truth> = BTreeMap::new();
    for (&v, expanded) in order.iter().zip(expansions) {
        let truth = g.truth(v);
        for item in expanded {
            out.entry(item).or_insert(truth);
        }
    }

    let mut result = HRelation::with_preemption(schema.clone(), relation.preemption());
    stats::record_explicate(start.elapsed(), out.len());
    if span.is_active() {
        span.field_u64("input_rows", relation.len() as u64);
        span.field_u64("expanded", out.len() as u64);
    }
    result.replace_tuples(out);
    Ok(result)
}

/// Explicate every attribute: the full extension, §3.3.2's "equivalent
/// flat relation" with its (redundant) negated tuples still present.
pub fn explicate_all(relation: &HRelation) -> HRelation {
    let attrs: Vec<usize> = (0..relation.schema().arity()).collect();
    explicate(relation, &attrs).expect("all indexes are in range")
}

/// Odometer enumeration of the Cartesian product of the axes.
fn cartesian(axes: &[Vec<hrdm_hierarchy::NodeId>]) -> Vec<Vec<hrdm_hierarchy::NodeId>> {
    if axes.iter().any(|a| a.is_empty()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cursor = vec![0usize; axes.len()];
    loop {
        out.push(cursor.iter().zip(axes).map(|(&c, axis)| axis[c]).collect());
        let mut pos = axes.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < axes[pos].len() {
                break;
            }
            cursor[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::consolidate;
    use crate::schema::{Attribute, Schema};
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    fn flying() -> HRelation {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance("Paul", gala).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Pamela", afp).unwrap();
        g.add_instance("Peter", afp).unwrap();
        let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird"], Truth::Positive).unwrap();
        r.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        r.assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Peter"], Truth::Positive).unwrap();
        r
    }

    #[test]
    fn full_explication_matches_bindings() {
        let r = flying();
        let flat = explicate_all(&r);
        // Every tuple of the explication is atomic.
        let product = r.schema().product();
        for (item, truth) in flat.iter() {
            assert!(product.is_atomic(item.components()));
            assert_eq!(
                r.bind(item).truth(),
                Some(truth),
                "explicated truth disagrees with binding for {item:?}"
            );
        }
        // All five instances appear.
        assert_eq!(flat.len(), 5);
        // Signs: Tweety+, Paul-, Patricia+, Pamela+, Peter+.
        assert_eq!(
            flat.stored(&r.item(&["Paul"]).unwrap()),
            Some(Truth::Negative)
        );
        assert_eq!(
            flat.stored(&r.item(&["Tweety"]).unwrap()),
            Some(Truth::Positive)
        );
        assert_eq!(
            flat.stored(&r.item(&["Patricia"]).unwrap()),
            Some(Truth::Positive)
        );
    }

    #[test]
    fn negated_tuples_redundant_after_full_explication() {
        // §3.3.2: "all the negated tuples obtained are redundant, and
        // can be removed by a consolidate that follows."
        let r = flying();
        let flat = explicate_all(&r);
        let c = consolidate(&flat);
        assert!(c.removed.iter().all(|t| t.truth == Truth::Negative));
        assert_eq!(c.removed.len(), 1); // Paul
        assert_eq!(c.relation.len(), 4);
        assert!(c.relation.iter().all(|(_, t)| t == Truth::Positive));
    }

    #[test]
    fn out_of_range_attribute_rejected() {
        let r = flying();
        assert!(matches!(
            explicate(&r, &[3]),
            Err(CoreError::AttributeIndexOutOfRange(3))
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        // Regression: a repeated index used to pass through silently
        // (the membership test made it a no-op); it now errors like the
        // out-of-range case does.
        let r = flying();
        assert!(matches!(
            explicate(&r, &[0, 0]),
            Err(CoreError::DuplicateAttributeIndex(0))
        ));
        // Out-of-range is reported first when both apply.
        assert!(matches!(
            explicate(&r, &[3, 3]),
            Err(CoreError::AttributeIndexOutOfRange(3))
        ));
    }

    #[test]
    fn empty_attr_list_is_identity_modulo_duplicates() {
        let r = flying();
        let same = explicate(&r, &[]).unwrap();
        assert_eq!(same.len(), r.len());
        for (item, truth) in r.iter() {
            assert_eq!(same.stored(item), Some(truth));
        }
    }

    /// Two-attribute relation for partial explication: who-likes-what
    /// over (Animal, Food).
    fn two_attr() -> HRelation {
        let mut a = HierarchyGraph::new("Animal");
        let bird = a.add_class("Bird", a.root()).unwrap();
        a.add_instance("Tweety", bird).unwrap();
        a.add_instance("Woody", bird).unwrap();
        let mut f = HierarchyGraph::new("Food");
        let seed = f.add_class("Seed", f.root()).unwrap();
        f.add_instance("Millet", seed).unwrap();
        f.add_instance("Sunflower", seed).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", Arc::new(a)),
            Attribute::new("Food", Arc::new(f)),
        ]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Bird", "Seed"], Truth::Positive).unwrap();
        r.assert_fact(&["Tweety", "Sunflower"], Truth::Negative)
            .unwrap();
        r
    }

    #[test]
    fn partial_explication_explicates_only_listed_attrs() {
        let r = two_attr();
        let part = explicate(&r, &[0]).unwrap();
        // Animal positions are all instances; Food may keep classes.
        for (item, _) in part.iter() {
            assert!(r.schema().domain(0).is_instance(item.component(0)));
        }
        // Tuples: +(Tweety, ∀Seed) shadowed... expansion of +(Bird,Seed)
        // gives (Tweety, Seed), (Woody, Seed); the exception stays
        // (Tweety, Sunflower)-.
        assert_eq!(part.len(), 3);
        let tweety_seed = r.item(&["Tweety", "Seed"]).unwrap();
        assert_eq!(part.stored(&tweety_seed), Some(Truth::Positive));
        let tweety_sun = r.item(&["Tweety", "Sunflower"]).unwrap();
        assert_eq!(part.stored(&tweety_sun), Some(Truth::Negative));
    }

    #[test]
    fn partial_explication_preserves_flat_meaning() {
        let r = two_attr();
        let part = explicate(&r, &[0]).unwrap();
        let full_direct = explicate_all(&r);
        let full_two_step = explicate_all(&part);
        assert_eq!(full_direct.len(), full_two_step.len());
        for (item, truth) in full_direct.iter() {
            assert_eq!(full_two_step.stored(item), Some(truth), "{item:?}");
        }
    }

    #[test]
    fn exception_overrides_in_explication() {
        let r = two_attr();
        let flat = explicate_all(&r);
        assert_eq!(
            flat.stored(&r.item(&["Tweety", "Sunflower"]).unwrap()),
            Some(Truth::Negative)
        );
        assert_eq!(
            flat.stored(&r.item(&["Woody", "Sunflower"]).unwrap()),
            Some(Truth::Positive)
        );
        assert_eq!(flat.len(), 4);
    }

    #[test]
    fn class_without_instances_contributes_nothing() {
        let mut g = HierarchyGraph::new("D");
        g.add_class("Empty", g.root()).unwrap();
        let schema = Arc::new(Schema::single("D", Arc::new(g)));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Empty"], Truth::Positive).unwrap();
        let flat = explicate_all(&r);
        assert!(flat.is_empty());
    }

    #[test]
    fn cartesian_helper() {
        use hrdm_hierarchy::NodeId;
        let n = NodeId::from_index;
        assert_eq!(cartesian(&[]).len(), 1, "nullary product has one element");
        assert!(cartesian(&[vec![], vec![n(1)]]).is_empty());
        let out = cartesian(&[vec![n(1), n(2)], vec![n(3)]]);
        assert_eq!(out, vec![vec![n(1), n(3)], vec![n(2), n(3)]]);
    }
}
