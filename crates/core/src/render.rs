//! Paper-style table rendering of relations.
//!
//! The figures in the paper print relations as tables with a leading
//! `+`/`-` sign column and `∀`-prefixed class values. This module
//! renders a [`HRelation`] the same way, so the `figures` binary of the
//! benchmark harness can be compared line by line against the paper.

use std::fmt::Write as _;

use crate::relation::HRelation;

/// Render `relation` as an aligned, paper-style text table.
pub fn render_table(relation: &HRelation) -> String {
    render_table_titled(relation, None)
}

/// Like [`render_table`], with an optional title line.
pub fn render_table_titled(relation: &HRelation, title: Option<&str>) -> String {
    let schema = relation.schema();
    let headers: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (item, truth) in relation.iter() {
        let mut row = vec![truth.sign().to_string()];
        for (i, &node) in item.components().iter().enumerate() {
            let g = schema.domain(i);
            let cell = if g.is_instance(node) {
                g.name(node).to_string()
            } else {
                format!("∀{}", g.name(node))
            };
            row.push(cell);
        }
        rows.push(row);
    }

    let mut widths: Vec<usize> = vec![1]; // sign column
    widths.extend(headers.iter().map(|h| h.chars().count()));
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    if let Some(t) = title {
        let _ = writeln!(out, "{t}");
    }
    let mut header = format!("{:w$}", "", w = widths[0]);
    for (h, w) in headers.iter().zip(&widths[1..]) {
        let _ = write!(header, " | {h:w$}");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.chars().count()));
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str(" | ");
            }
            let _ = write!(line, "{cell:w$}", w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    if relation.is_empty() {
        let _ = writeln!(out, "(empty)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::truth::Truth;
    use hrdm_hierarchy::HierarchyGraph;
    use std::sync::Arc;

    fn sample() -> HRelation {
        let mut a = HierarchyGraph::new("Animal");
        let e = a.add_class("Elephant", a.root()).unwrap();
        a.add_instance("Clyde", e).unwrap();
        let mut c = HierarchyGraph::new("Color");
        c.add_instance("Grey", c.root()).unwrap();
        let schema = Arc::new(Schema::new(vec![
            Attribute::new("Animal", Arc::new(a)),
            Attribute::new("Color", Arc::new(c)),
        ]));
        let mut r = HRelation::new(schema);
        r.assert_fact(&["Elephant", "Grey"], Truth::Positive)
            .unwrap();
        r.assert_fact(&["Clyde", "Grey"], Truth::Negative).unwrap();
        r
    }

    #[test]
    fn table_contains_headers_signs_and_values() {
        let t = render_table(&sample());
        assert!(t.contains("Animal"));
        assert!(t.contains("Color"));
        assert!(t.contains("+ | ∀Elephant"));
        assert!(t.contains("- | Clyde"));
        assert!(t.contains("Grey"));
    }

    #[test]
    fn title_is_prepended() {
        let t = render_table_titled(&sample(), Some("Fig. 4"));
        assert!(t.starts_with("Fig. 4\n"));
    }

    #[test]
    fn empty_relation_renders_marker() {
        let r = sample();
        let empty = HRelation::new(r.schema().clone());
        let t = render_table(&empty);
        assert!(t.contains("(empty)"));
    }

    #[test]
    fn columns_align() {
        let t = render_table(&sample());
        let lines: Vec<&str> = t.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 4);
        let bar_positions = |s: &str| -> Vec<usize> {
            s.char_indices()
                .filter(|&(_, c)| c == '|')
                .map(|(i, _)| i)
                .collect()
        };
        // All data rows have separators in matching count.
        assert_eq!(bar_positions(lines[0]).len(), 2);
        assert_eq!(bar_positions(lines[2]).len(), 2);
        assert_eq!(bar_positions(lines[3]).len(), 2);
    }
}
