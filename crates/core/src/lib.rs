#![warn(missing_docs)]

//! The hierarchical relational data model of Jagadish (SIGMOD 1989).
//!
//! This crate is the paper's primary contribution: a relational model in
//! which **classes** from a hierarchy may appear as attribute values
//! ("∀C" tuples), tuples carry a **truth value** so that negated tuples
//! express *exceptions* to inherited facts, and two new operators —
//! [`consolidate`](consolidate::consolidate) and
//! [`explicate`](explicate::explicate) — manipulate the physical form of
//! a relation without changing its unique equivalent *flat* relation.
//!
//! # Model in one page
//!
//! * A [`Schema`] names the attributes and attaches a
//!   [`HierarchyGraph`](hrdm_hierarchy::HierarchyGraph) to each; the item
//!   hierarchy of the relation is the (lazy) Cartesian product of those
//!   graphs (§2.2).
//! * An [`Item`] picks one node — class *or* instance — per
//!   attribute; a [`Tuple`] is an item plus a
//!   [`Truth`] value (§2.1).
//! * A [`HRelation`] is a set of tuples. Its meaning
//!   is its unique flat extension ([`flat`]): the atomic items whose
//!   *strongest-binding* tuple is positive.
//! * Binding strength comes from the **tuple-binding graph** ([`binding`])
//!   derived by the paper's node-elimination procedure from the
//!   **subsumption graph** ([`subsumption`]); the Appendix's off-path /
//!   on-path / no-preemption variants are selectable per relation
//!   ([`preemption`]).
//! * Items inheriting tuples of both truth values are **conflicts**; the
//!   §3.1 *ambiguity constraint* rejects them at transaction commit
//!   ([`integrity`], [`conflict`]).
//! * The standard operators keep their flat semantics (§3.4): σ, π, ⋈ and
//!   the set operations live in [`ops`], each documented with its
//!   hierarchical evaluation strategy and property-tested against the
//!   explicated baseline.
//!
//! §4's research directions are implemented as extensions:
//! three-valued lookups over partial information ([`three_valued`]) and
//! mechanical organization of flat relations into hierarchical ones
//! ([`discover`]).
//!
//! # Quick example (the paper's Fig. 1)
//!
//! ```
//! use std::sync::Arc;
//! use hrdm_core::prelude::*;
//! use hrdm_hierarchy::HierarchyGraph;
//!
//! let mut g = HierarchyGraph::new("Animal");
//! let bird = g.add_class("Bird", g.root()).unwrap();
//! let canary = g.add_class("Canary", bird).unwrap();
//! g.add_instance("Tweety", canary).unwrap();
//! let penguin = g.add_class("Penguin", bird).unwrap();
//! g.add_instance("Paul", penguin).unwrap();
//!
//! let schema = Arc::new(Schema::new(vec![Attribute::new("Creature", Arc::new(g))]));
//! let mut flies = HRelation::new(schema.clone());
//! flies.assert_fact(&["Bird"], Truth::Positive).unwrap();    // all birds fly
//! flies.assert_fact(&["Penguin"], Truth::Negative).unwrap(); // except penguins
//!
//! assert!(flies.holds(&flies.item(&["Tweety"]).unwrap()));
//! assert!(!flies.holds(&flies.item(&["Paul"]).unwrap()));
//! ```

pub mod batch;
pub mod binding;
pub mod catalog;
pub mod columnar;
pub mod conflict;
pub mod consolidate;
pub mod constraints;
pub mod cost;
pub mod delta;
pub mod differential;
pub mod discover;
pub mod error;
pub mod explicate;
pub mod flat;
pub mod integrity;
pub mod intern;
pub mod item;
pub mod justify;
pub mod mutation;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod preemption;
pub mod relation;
pub mod render;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod subsumption;
pub mod three_valued;
pub mod truth;
pub mod tuple;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use crate::batch::execute_batch;
    pub use crate::binding::Binding;
    pub use crate::catalog::Catalog;
    pub use crate::columnar::{Batch, ColumnarRelation, BATCH_ROWS};
    pub use crate::cost::{AccessPath, CostModel};
    pub use crate::delta::{Delta, RelationChange, RelationDelta};
    pub use crate::differential::{
        cone_limit, set_cone_limit, MaintainReport, MaterializedPlan, DEFAULT_CONE_LIMIT,
    };
    pub use crate::error::{CoreError, Result};
    pub use crate::intern::Sym;
    pub use crate::item::Item;
    pub use crate::mutation::{CatalogMutation, MutationSink};
    pub use crate::parallel::ExecMode;
    pub use crate::plan::LogicalPlan;
    pub use crate::preemption::Preemption;
    pub use crate::relation::HRelation;
    pub use crate::schema::{Attribute, Schema};
    pub use crate::snapshot::{Snapshot, SnapshotCell};
    pub use crate::stats::EngineStats;
    pub use crate::truth::Truth;
    pub use crate::tuple::Tuple;
}

pub use prelude::*;
