//! Truth values of tuples (§2.1).
//!
//! "Every tuple is an item with an associated truth value. The truth
//! value of a tuple is a Boolean variable that is true for a positive
//! (normal) tuple and false for a negated tuple."

use std::fmt;
use std::ops::Not;

/// The truth value carried by a stored tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    /// A negated tuple: "for every element of the item, the relation
    /// does not hold."
    Negative,
    /// A normal tuple: the relation holds for every element of the item.
    Positive,
}

impl Truth {
    /// Convert from a plain boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::Positive
        } else {
            Truth::Negative
        }
    }

    /// True for [`Truth::Positive`].
    #[inline]
    pub fn holds(self) -> bool {
        self == Truth::Positive
    }

    /// The paper's table prefix: `+` for positive, `-` for negated
    /// tuples.
    #[inline]
    pub fn sign(self) -> char {
        match self {
            Truth::Positive => '+',
            Truth::Negative => '-',
        }
    }
}

impl Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        match self {
            Truth::Positive => Truth::Negative,
            Truth::Negative => Truth::Positive,
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Truth {
        Truth::from_bool(b)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sign())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Truth::from_bool(true), Truth::Positive);
        assert_eq!(Truth::from_bool(false), Truth::Negative);
        assert!(Truth::Positive.holds());
        assert!(!Truth::Negative.holds());
        assert_eq!(Truth::from(true), Truth::Positive);
    }

    #[test]
    fn negation_is_involutive() {
        for t in [Truth::Positive, Truth::Negative] {
            assert_eq!(!!t, t);
        }
        assert_eq!(!Truth::Positive, Truth::Negative);
    }

    #[test]
    fn display_signs() {
        assert_eq!(Truth::Positive.to_string(), "+");
        assert_eq!(Truth::Negative.to_string(), "-");
        assert_eq!(Truth::Negative.sign(), '-');
    }
}
