//! Error type for the hierarchical relational core.

use std::fmt;

use crate::item::Item;
use hrdm_hierarchy::HierarchyError;

/// Result alias used throughout the crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors raised by relation construction, updates, and operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A name did not resolve in the attribute's domain hierarchy, or a
    /// graph-level operation failed.
    Hierarchy(HierarchyError),
    /// An item's arity does not match the relation's schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity that was supplied.
        got: usize,
    },
    /// Two relations were combined but their schemas differ (different
    /// attribute count, names, or domain graphs).
    SchemaMismatch,
    /// No attribute with this name exists in the schema.
    UnknownAttribute(String),
    /// The same item was asserted with both truth values.
    ContradictoryAssertion(Item),
    /// Committing these updates would leave unresolved conflicts
    /// (ambiguity-constraint violations, §3.1). The payload lists the
    /// conflicted items.
    Inconsistent(Vec<Item>),
    /// The operation requires a consistent relation but the input is not
    /// (e.g. explication of a conflicted relation is undefined).
    InputInconsistent(Vec<Item>),
    /// An operator received attribute indexes out of range.
    AttributeIndexOutOfRange(usize),
    /// An operator received the same attribute index more than once
    /// where the list must be a set (e.g. `explicate`).
    DuplicateAttributeIndex(usize),
    /// Natural join found no shared attributes.
    NoJoinAttributes,
    /// Declarative integrity constraints were violated (§3.1); the
    /// payload lists one human-readable detail per violation.
    ConstraintViolations(Vec<String>),
    /// A catalog object with this name already exists (mutation replay
    /// and DDL both refuse silent replacement).
    DuplicateName {
        /// Object category ("domain", "relation", …).
        kind: &'static str,
        /// The conflicting name.
        name: String,
    },
    /// A catalog mutation referenced an object that does not exist.
    NotFound {
        /// Object category ("domain", "relation", "tuple", …).
        kind: &'static str,
        /// The missing name (or rendered tuple).
        name: String,
    },
    /// A catalog object cannot be dropped while another still
    /// references it (e.g. a domain with relations over it).
    InUse {
        /// Object category ("domain", …).
        kind: &'static str,
        /// The object that cannot be dropped.
        name: String,
        /// The first referencing object found.
        by: String,
    },
}

impl CoreError {
    /// Stable machine-readable error-kind code, part of the public API
    /// surface: the unified `hrdm::Error` exposes these codes and the
    /// `hrdm-server` wire protocol sends them verbatim in `ERR` replies,
    /// so existing codes must never change meaning.
    pub fn kind(&self) -> &'static str {
        match self {
            CoreError::Hierarchy(_) => "hierarchy",
            CoreError::ArityMismatch { .. } => "arity",
            CoreError::SchemaMismatch => "schema",
            CoreError::UnknownAttribute(_) => "unknown",
            CoreError::ContradictoryAssertion(_) => "contradiction",
            CoreError::Inconsistent(_) | CoreError::InputInconsistent(_) => "conflict",
            CoreError::AttributeIndexOutOfRange(_) | CoreError::DuplicateAttributeIndex(_) => {
                "attr-index"
            }
            CoreError::NoJoinAttributes => "join",
            CoreError::ConstraintViolations(_) => "constraint",
            CoreError::DuplicateName { .. } => "duplicate",
            CoreError::NotFound { .. } => "not-found",
            CoreError::InUse { .. } => "in-use",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Hierarchy(e) => write!(f, "hierarchy error: {e}"),
            CoreError::ArityMismatch { expected, got } => {
                write!(f, "item arity {got} does not match schema arity {expected}")
            }
            CoreError::SchemaMismatch => write!(f, "relations have incompatible schemas"),
            CoreError::UnknownAttribute(name) => {
                write!(f, "no attribute named {name:?} in the schema")
            }
            CoreError::ContradictoryAssertion(item) => {
                write!(f, "item {item:?} asserted with both truth values")
            }
            CoreError::Inconsistent(items) => write!(
                f,
                "update leaves {} unresolved conflict(s) (ambiguity constraint)",
                items.len()
            ),
            CoreError::InputInconsistent(items) => write!(
                f,
                "operation requires a consistent relation; {} conflict(s) present",
                items.len()
            ),
            CoreError::AttributeIndexOutOfRange(i) => {
                write!(f, "attribute index {i} out of range")
            }
            CoreError::DuplicateAttributeIndex(i) => {
                write!(f, "attribute index {i} listed more than once")
            }
            CoreError::NoJoinAttributes => {
                write!(f, "natural join requires at least one shared attribute")
            }
            CoreError::ConstraintViolations(details) => write!(
                f,
                "{} integrity constraint violation(s): {}",
                details.len(),
                details.join("; ")
            ),
            CoreError::DuplicateName { kind, name } => {
                write!(f, "{kind} {name:?} already exists")
            }
            CoreError::NotFound { kind, name } => {
                write!(f, "no {kind} named {name:?}")
            }
            CoreError::InUse { kind, name, by } => {
                write!(f, "{kind} {name:?} is still referenced by {by:?}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Hierarchy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HierarchyError> for CoreError {
    fn from(e: HierarchyError) -> CoreError {
        CoreError::Hierarchy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_hierarchy::NodeId;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));
        let e = CoreError::UnknownAttribute("Color".into());
        assert!(e.to_string().contains("Color"));
        let e = CoreError::Inconsistent(vec![Item::new(vec![NodeId::ROOT])]);
        assert!(e.to_string().contains("1 unresolved"));
    }

    #[test]
    fn hierarchy_errors_convert_and_chain() {
        let h = HierarchyError::NoParent;
        let e: CoreError = h.clone().into();
        assert_eq!(e, CoreError::Hierarchy(h));
        assert!(std::error::Error::source(&e).is_some());
    }
}
