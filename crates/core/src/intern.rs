//! Global string interner: `str` ↔ [`Sym`] with `Arc`-shared storage.
//!
//! Hierarchy node names are `Arc<str>`s today, but the columnar layer
//! wants a fixed-width value it can pack into column vectors and use as
//! a hash/sort key without touching the heap. [`intern`] assigns every
//! distinct string a dense `u32` [`Sym`]; [`resolve`] goes back. The
//! table is append-only while live — a `Sym` handed out once stays
//! valid for the life of the process (or until an explicit
//! [`reset_for_bench`], which only benchmarks call between isolated
//! runs).
//!
//! Snapshot safety: [`snapshot`] pins the current `Sym → Arc<str>`
//! mapping. A published [`InternerSnapshot`] owns strong references to
//! its strings, so even a later [`reset_for_bench`] cannot leave it
//! with a dangling `Sym` — it keeps resolving everything interned
//! before it was taken (and returns `None` for later `Sym`s rather
//! than aliasing them). This mirrors the epoch-snapshot catalog rule:
//! readers keep the world they pinned.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned string: a dense index into the global table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(u32);

impl Sym {
    /// The dense table index backing this symbol.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct InternerInner {
    by_name: HashMap<Arc<str>, Sym>,
    names: Vec<Arc<str>>,
}

/// The global interner: a mutex-guarded map plus append-only name
/// table. All state is behind the lock; `Sym`s are plain indexes.
struct Interner {
    inner: Mutex<InternerInner>,
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| Interner {
        inner: Mutex::new(InternerInner::default()),
    })
}

/// Intern `s`, returning its stable symbol. Idempotent: the same
/// string always maps to the same `Sym` until a [`reset_for_bench`].
pub fn intern(s: &str) -> Sym {
    let mut inner = global().inner.lock().expect("interner poisoned");
    if let Some(&sym) = inner.by_name.get(s) {
        return sym;
    }
    let name: Arc<str> = Arc::from(s);
    let sym = Sym(u32::try_from(inner.names.len()).expect("interner overflow"));
    inner.names.push(name.clone());
    inner.by_name.insert(name, sym);
    sym
}

/// The string behind `sym`, if it was interned in the current epoch.
pub fn resolve(sym: Sym) -> Option<Arc<str>> {
    let inner = global().inner.lock().expect("interner poisoned");
    inner.names.get(sym.0 as usize).cloned()
}

/// Number of distinct strings interned in the current epoch.
pub fn len() -> usize {
    global()
        .inner
        .lock()
        .expect("interner poisoned")
        .names
        .len()
}

/// An immutable pin of the interner's state at one instant.
///
/// Owns strong references to every interned string, so it keeps
/// resolving all `Sym`s that existed when it was taken regardless of
/// later interning or resets.
#[derive(Clone)]
pub struct InternerSnapshot {
    names: Arc<Vec<Arc<str>>>,
}

impl InternerSnapshot {
    /// Resolve against the pinned table. `None` for symbols interned
    /// after this snapshot was taken — never a wrong (reused) string.
    pub fn resolve(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index() as usize).map(|s| &**s)
    }

    /// Number of symbols visible to this snapshot.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing had been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Pin the current interner state.
pub fn snapshot() -> InternerSnapshot {
    let inner = global().inner.lock().expect("interner poisoned");
    InternerSnapshot {
        names: Arc::new(inner.names.clone()),
    }
}

/// Drop all interned strings and start a fresh epoch.
///
/// For benchmark isolation only (`bench::fixtures::clear_shared_caches`):
/// `Sym`s from the old epoch must not be compared with new ones, but
/// snapshots taken before the reset stay fully resolvable.
pub fn reset_for_bench() {
    let mut inner = global().inner.lock().expect("interner poisoned");
    inner.by_name.clear();
    inner.names.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The interner is process-global, so tests share it; each uses its
    // own distinct strings and never asserts absolute table size.

    #[test]
    fn intern_is_idempotent_and_resolves_back() {
        let a = intern("intern-test-alpha");
        let b = intern("intern-test-beta");
        assert_ne!(a, b);
        assert_eq!(intern("intern-test-alpha"), a);
        assert_eq!(resolve(a).as_deref(), Some("intern-test-alpha"));
        assert_eq!(resolve(b).as_deref(), Some("intern-test-beta"));
        assert!(len() >= 2);
    }

    #[test]
    fn unknown_sym_resolves_to_none() {
        assert!(resolve(Sym(u32::MAX - 1)).is_none());
    }

    #[test]
    fn snapshot_pins_the_table() {
        let before = intern("intern-test-pinned");
        let snap = snapshot();
        let after = intern(&format!("intern-test-after-{}", snap.len()));
        assert_eq!(snap.resolve(before), Some("intern-test-pinned"));
        // Interned after the pin: invisible, not aliased.
        if after.index() as usize >= snap.len() {
            assert_eq!(snap.resolve(after), None);
        }
        assert!(!snap.is_empty());
    }
}
