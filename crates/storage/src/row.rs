//! Fixed-arity row encoding.
//!
//! The flat baseline stores atoms of the hierarchical model, whose
//! attribute values are dense node ids — so a row is a fixed-arity
//! sequence of `u32`s, encoded little-endian. This mirrors what a real
//! engine would do for integer-keyed dictionary-encoded columns.

use crate::error::{Result, StorageError};

/// A decoded row: one `u32` value per column.
pub type Row = Vec<u32>;

/// Encode a row as little-endian bytes.
pub fn encode(row: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 4);
    for v in row {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a row of known arity.
pub fn decode(bytes: &[u8], arity: usize) -> Result<Row> {
    if bytes.len() != arity * 4 {
        return Err(StorageError::CorruptRow {
            expected: arity * 4,
            got: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Read one column without decoding the whole row.
pub fn column(bytes: &[u8], col: usize) -> Result<u32> {
    let at = col * 4;
    if at + 4 > bytes.len() {
        return Err(StorageError::ColumnOutOfRange(col));
    }
    Ok(u32::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let row = vec![1u32, 0, u32::MAX, 42];
        let bytes = encode(&row);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode(&bytes, 4).unwrap(), row);
    }

    #[test]
    fn wrong_arity_is_corrupt() {
        let bytes = encode(&[1, 2]);
        assert!(matches!(
            decode(&bytes, 3),
            Err(StorageError::CorruptRow {
                expected: 12,
                got: 8
            })
        ));
    }

    #[test]
    fn column_access() {
        let bytes = encode(&[10, 20, 30]);
        assert_eq!(column(&bytes, 0).unwrap(), 10);
        assert_eq!(column(&bytes, 2).unwrap(), 30);
        assert!(matches!(
            column(&bytes, 3),
            Err(StorageError::ColumnOutOfRange(3))
        ));
    }

    #[test]
    fn empty_row() {
        assert_eq!(encode(&[]), Vec::<u8>::new());
        assert_eq!(decode(&[], 0).unwrap(), Vec::<u32>::new());
    }
}
