//! Volcano-style query operators.
//!
//! Minimal but real iterator operators over [`Table`]s: sequential scan,
//! filter, projection, and hash join. The B2 benchmark builds the
//! footnote-1 plan — `R_by_class ⋈ Membership` — from these, so the flat
//! baseline pays exactly the join cost the paper attributes to it, with
//! a competent (hash, not nested-loop) join.

use std::collections::HashMap;

use crate::catalog::Table;
use crate::row::Row;

/// Scan all rows of a table.
pub fn scan(table: &Table) -> impl Iterator<Item = Row> + '_ {
    table.scan()
}

/// Keep rows satisfying a predicate.
pub fn filter<'a, I: Iterator<Item = Row> + 'a>(
    input: I,
    pred: impl Fn(&Row) -> bool + 'a,
) -> impl Iterator<Item = Row> + 'a {
    input.filter(move |r| pred(r))
}

/// Keep the listed columns, in the listed order.
pub fn project<'a, I: Iterator<Item = Row> + 'a>(
    input: I,
    cols: &'a [usize],
) -> impl Iterator<Item = Row> + 'a {
    input.map(move |r| cols.iter().map(|&c| r[c]).collect())
}

/// Hash join: build a table on `left`'s `left_col`, probe with `right`'s
/// `right_col`. Output rows are `left ++ right` (all columns of both).
pub fn hash_join<'a>(
    left: impl Iterator<Item = Row>,
    left_col: usize,
    right: impl Iterator<Item = Row> + 'a,
    right_col: usize,
) -> impl Iterator<Item = Row> + 'a {
    let mut build: HashMap<u32, Vec<Row>> = HashMap::new();
    for row in left {
        build.entry(row[left_col]).or_default().push(row);
    }
    right.flat_map(move |probe| {
        build
            .get(&probe[right_col])
            .map(|matches| {
                matches
                    .iter()
                    .map(|l| {
                        let mut out = l.clone();
                        out.extend_from_slice(&probe);
                        out
                    })
                    .collect::<Vec<Row>>()
            })
            .unwrap_or_default()
    })
}

/// Convenience: collect distinct rows (duplicate elimination, the flat
/// model's SELECT UNIQUE from §3.2).
pub fn distinct(input: impl Iterator<Item = Row>) -> Vec<Row> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for row in input {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Set union of two row streams, duplicates eliminated, in sorted order
/// (flat relations are sets, so bag semantics would be wrong here).
pub fn union(a: impl Iterator<Item = Row>, b: impl Iterator<Item = Row>) -> Vec<Row> {
    let set: std::collections::BTreeSet<Row> = a.chain(b).collect();
    set.into_iter().collect()
}

/// Rows of `a` that do not appear in `b`, deduplicated, in sorted order.
pub fn difference(a: impl Iterator<Item = Row>, b: impl Iterator<Item = Row>) -> Vec<Row> {
    let remove: std::collections::BTreeSet<Row> = b.collect();
    let keep: std::collections::BTreeSet<Row> = a.filter(|r| !remove.contains(r)).collect();
    keep.into_iter().collect()
}

/// Rows appearing in both streams, deduplicated, in sorted order.
pub fn intersection(a: impl Iterator<Item = Row>, b: impl Iterator<Item = Row>) -> Vec<Row> {
    let right: std::collections::BTreeSet<Row> = b.collect();
    let both: std::collections::BTreeSet<Row> = a.filter(|r| right.contains(r)).collect();
    both.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;

    fn table(rows: &[[u32; 2]]) -> Table {
        let mut t = Table::new("T", 2);
        for r in rows {
            t.insert(r).unwrap();
        }
        t
    }

    #[test]
    fn scan_filter_project() {
        let t = table(&[[1, 10], [2, 20], [3, 30]]);
        let big: Vec<Row> = filter(scan(&t), |r| r[1] >= 20).collect();
        assert_eq!(big, vec![vec![2, 20], vec![3, 30]]);
        let keys: Vec<Row> = project(scan(&t), &[0]).collect();
        assert_eq!(keys, vec![vec![1], vec![2], vec![3]]);
        let swapped: Vec<Row> = project(scan(&t), &[1, 0]).collect();
        assert_eq!(swapped[0], vec![10, 1]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let l = table(&[[1, 10], [2, 20], [2, 21]]);
        let r = table(&[[2, 200], [3, 300], [2, 201]]);
        let mut joined: Vec<Row> = hash_join(scan(&l), 0, scan(&r), 0).collect();
        joined.sort();
        let mut expected = Vec::new();
        for lr in scan(&l) {
            for rr in scan(&r) {
                if lr[0] == rr[0] {
                    let mut row = lr.clone();
                    row.extend_from_slice(&rr);
                    expected.push(row);
                }
            }
        }
        expected.sort();
        assert_eq!(joined, expected);
        assert_eq!(joined.len(), 4); // 2 left × 2 right on key 2
    }

    #[test]
    fn join_on_different_columns() {
        let l = table(&[[1, 5], [2, 6]]);
        let r = table(&[[5, 50], [6, 60]]);
        let joined: Vec<Row> = hash_join(scan(&l), 1, scan(&r), 0).collect();
        assert_eq!(joined.len(), 2);
        assert!(joined.contains(&vec![1, 5, 5, 50]));
    }

    #[test]
    fn empty_inputs() {
        let l = table(&[]);
        let r = table(&[[1, 1]]);
        assert_eq!(hash_join(scan(&l), 0, scan(&r), 0).count(), 0);
        assert_eq!(hash_join(scan(&r), 0, scan(&l), 0).count(), 0);
    }

    #[test]
    fn distinct_eliminates_duplicates() {
        let t = table(&[[1, 1], [1, 1], [2, 2]]);
        let d = distinct(scan(&t));
        assert_eq!(d, vec![vec![1, 1], vec![2, 2]]);
    }

    #[test]
    fn set_operators_are_set_semantics() {
        let a = table(&[[1, 1], [2, 2], [2, 2], [3, 3]]);
        let b = table(&[[2, 2], [4, 4]]);
        assert_eq!(
            union(scan(&a), scan(&b)),
            vec![vec![1, 1], vec![2, 2], vec![3, 3], vec![4, 4]]
        );
        assert_eq!(difference(scan(&a), scan(&b)), vec![vec![1, 1], vec![3, 3]]);
        assert_eq!(intersection(scan(&a), scan(&b)), vec![vec![2, 2]]);
        // Empty edge cases.
        let e = table(&[]);
        assert_eq!(union(scan(&e), scan(&e)), Vec::<Row>::new());
        assert_eq!(difference(scan(&a), scan(&e)).len(), 3);
        assert_eq!(intersection(scan(&a), scan(&e)), Vec::<Row>::new());
    }
}
