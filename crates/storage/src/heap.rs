//! Heap files: unordered collections of records across slotted pages.

use std::sync::OnceLock;

use hrdm_obs::attrib::{self, AttribKey};
use hrdm_obs::metrics::{self, Counter};

use crate::error::{Result, StorageError};
use crate::page::{Page, PAGE_SIZE};

struct HeapMetrics {
    inserts: Counter,
    reads: Counter,
    deletes: Counter,
    page_allocs: Counter,
}

fn obs() -> &'static HeapMetrics {
    static M: OnceLock<HeapMetrics> = OnceLock::new();
    M.get_or_init(|| HeapMetrics {
        inserts: metrics::counter("storage.heap.inserts"),
        reads: metrics::counter("storage.heap.reads"),
        deletes: metrics::counter("storage.heap.deletes"),
        page_allocs: metrics::counter("storage.heap.page_allocs"),
    })
}

/// Stable address of a record in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page number within the file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// An append-friendly heap file of byte records.
#[derive(Default)]
pub struct HeapFile {
    pages: Vec<Page>,
    live: usize,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> HeapFile {
        HeapFile::default()
    }

    /// Append a record, allocating a page when the last one is full.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordId> {
        if record.len() > Page::max_record() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: Page::max_record(),
            });
        }
        if self
            .pages
            .last()
            .is_none_or(|p| p.free_space() < record.len())
        {
            self.pages.push(Page::new());
            obs().page_allocs.incr();
        }
        let page = self.pages.len() - 1;
        let slot = self
            .pages
            .last_mut()
            .expect("just ensured")
            .insert(record)?;
        self.live += 1;
        obs().inserts.incr();
        attrib::bump(AttribKey::HeapWrite);
        Ok(RecordId {
            page: page as u32,
            slot: slot as u16,
        })
    }

    /// Read a record by id.
    pub fn get(&self, rid: RecordId) -> Result<&[u8]> {
        obs().reads.incr();
        attrib::bump(AttribKey::HeapRead);
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or(StorageError::InvalidPage(rid.page as usize))?;
        page.get(rid.slot as usize)
            .ok_or(StorageError::InvalidSlot {
                page: rid.page as usize,
                slot: rid.slot as usize,
            })
    }

    /// Delete a record (tombstone).
    pub fn delete(&mut self, rid: RecordId) -> Result<()> {
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or(StorageError::InvalidPage(rid.page as usize))?;
        if page.delete(rid.slot as usize) {
            self.live -= 1;
            obs().deletes.incr();
            attrib::bump(AttribKey::HeapWrite);
            Ok(())
        } else {
            Err(StorageError::InvalidSlot {
                page: rid.page as usize,
                slot: rid.slot as usize,
            })
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live records remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes allocated (pages × page size) — what the file would
    /// occupy on disk.
    pub fn bytes_allocated(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Bytes actually used by payloads and directories.
    pub fn bytes_used(&self) -> usize {
        self.pages.iter().map(|p| p.bytes_used()).sum()
    }

    /// Iterate live records as `(rid, bytes)`.
    pub fn scan(&self) -> impl Iterator<Item = (RecordId, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.iter().map(move |(slot, rec)| {
                (
                    RecordId {
                        page: pno as u32,
                        slot: slot as u16,
                    },
                    rec,
                )
            })
        })
    }

    /// Write the file page-by-page: a `u32` page count followed by the
    /// raw 8 KiB pages, exactly as they would sit on disk.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<()> {
        w.write_all(&(self.pages.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        for page in &self.pages {
            w.write_all(page.raw()).map_err(io_err)?;
        }
        Ok(())
    }

    /// Read a heap file written by [`HeapFile::write_to`].
    pub fn read_from(r: &mut impl std::io::Read) -> Result<HeapFile> {
        let mut count = [0u8; 4];
        r.read_exact(&mut count).map_err(io_err)?;
        let count = u32::from_le_bytes(count) as usize;
        if count > 1 << 22 {
            return Err(StorageError::InvalidPage(count));
        }
        let mut pages = Vec::new();
        let mut live = 0usize;
        for _ in 0..count {
            let mut buf = vec![0u8; PAGE_SIZE];
            r.read_exact(&mut buf).map_err(io_err)?;
            let page = Page::from_raw(&buf)?;
            live += page.iter().count();
            pages.push(page);
        }
        Ok(HeapFile { pages, live })
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_multiple_pages() {
        let mut h = HeapFile::new();
        let rec = [7u8; 1024];
        let mut rids = Vec::new();
        for _ in 0..20 {
            rids.push(h.insert(&rec).unwrap());
        }
        assert_eq!(h.len(), 20);
        assert!(h.page_count() >= 3, "1 KiB × 20 spans ≥ 3 pages");
        for rid in rids {
            assert_eq!(h.get(rid).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn scan_yields_all_live_records_in_order() {
        let mut h = HeapFile::new();
        let a = h.insert(b"a").unwrap();
        let b = h.insert(b"b").unwrap();
        let c = h.insert(b"c").unwrap();
        h.delete(b).unwrap();
        let got: Vec<(RecordId, &[u8])> = h.scan().collect();
        assert_eq!(got, vec![(a, &b"a"[..]), (c, &b"c"[..])]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn invalid_ids_error() {
        let mut h = HeapFile::new();
        let rid = h.insert(b"x").unwrap();
        assert!(matches!(
            h.get(RecordId { page: 9, slot: 0 }),
            Err(StorageError::InvalidPage(9))
        ));
        assert!(matches!(
            h.get(RecordId { page: 0, slot: 42 }),
            Err(StorageError::InvalidSlot { .. })
        ));
        h.delete(rid).unwrap();
        assert!(h.get(rid).is_err(), "deleted record unreadable");
        assert!(h.delete(rid).is_err(), "double delete errors");
        assert!(h.is_empty());
    }

    #[test]
    fn storage_accounting_grows_with_data() {
        let mut h = HeapFile::new();
        assert_eq!(h.bytes_allocated(), 0);
        h.insert(&[0u8; 100]).unwrap();
        assert_eq!(h.bytes_allocated(), PAGE_SIZE);
        let used = h.bytes_used();
        h.insert(&[0u8; 100]).unwrap();
        assert!(h.bytes_used() > used);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut h = HeapFile::new();
        assert!(h.insert(&vec![0u8; PAGE_SIZE]).is_err());
        assert_eq!(h.page_count(), 0, "no page allocated for rejected insert");
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;

    #[test]
    fn heap_file_round_trips_through_bytes() {
        let mut h = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..50u32 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        h.delete(rids[7]).unwrap();
        let mut bytes = Vec::new();
        h.write_to(&mut bytes).unwrap();
        let restored = HeapFile::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(restored.len(), 49);
        assert_eq!(restored.page_count(), h.page_count());
        // Record ids stay valid, tombstones stay dead.
        assert_eq!(restored.get(rids[3]).unwrap(), &3u32.to_le_bytes());
        assert!(restored.get(rids[7]).is_err());
    }

    #[test]
    fn empty_heap_round_trips() {
        let h = HeapFile::new();
        let mut bytes = Vec::new();
        h.write_to(&mut bytes).unwrap();
        let restored = HeapFile::read_from(&mut &bytes[..]).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.page_count(), 0);
    }

    #[test]
    fn corrupt_page_images_error_not_panic() {
        let mut h = HeapFile::new();
        h.insert(b"record").unwrap();
        let mut bytes = Vec::new();
        h.write_to(&mut bytes).unwrap();
        // Truncated.
        assert!(HeapFile::read_from(&mut &bytes[..bytes.len() - 1]).is_err());
        // Corrupt slot offset pointing outside the page.
        let mut evil = bytes.clone();
        evil[4 + 4] = 0xFF; // slot 0 offset low byte
        evil[4 + 5] = 0x3F; // offset = 0x3FFF > PAGE_SIZE
        assert!(HeapFile::read_from(&mut &evil[..]).is_err());
        // Absurd page count.
        let mut evil = bytes.clone();
        evil[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(HeapFile::read_from(&mut &evil[..]).is_err());
    }

    #[test]
    fn page_from_raw_validates() {
        let p = Page::new();
        assert!(Page::from_raw(p.raw()).is_ok());
        assert!(Page::from_raw(&[0u8; 10]).is_err());
        // All zeros: slot_count 0 but free_ptr 0 < HEADER — invalid.
        assert!(Page::from_raw(&[0u8; PAGE_SIZE]).is_err());
    }
}
