//! Slotted pages.
//!
//! Classic layout: a header with slot count and free-space pointer,
//! a slot directory growing from the front, and record payloads growing
//! from the back. Deleted slots are tombstoned (offset = `u16::MAX`), so
//! record ids stay stable.
//!
//! ```text
//! +--------+--------------------+……free……+-----------+-----------+
//! | header | slot 0 | slot 1 | …          | payload 1 | payload 0 |
//! +--------+--------------------+……free……+-----------+-----------+
//! ```

use crate::error::{Result, StorageError};

/// Page size in bytes (8 KiB, the common default in real engines).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4; // slot_count: u16, free_ptr: u16
const SLOT: usize = 4; // offset: u16, len: u16
const TOMBSTONE: u16 = u16::MAX;

/// A fixed-size slotted page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Page {
        let mut data: Box<[u8; PAGE_SIZE]> = vec![0u8; PAGE_SIZE]
            .into_boxed_slice()
            .try_into()
            .expect("exact size");
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    fn slot_count(&self) -> usize {
        u16::from_le_bytes([self.data[0], self.data[1]]) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        self.data[0..2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn free_ptr(&self) -> usize {
        u16::from_le_bytes([self.data[2], self.data[3]]) as usize
    }

    fn set_free_ptr(&mut self, p: usize) {
        self.data[2..4].copy_from_slice(&(p as u16).to_le_bytes());
    }

    fn slot(&self, i: usize) -> (u16, u16) {
        let at = HEADER + i * SLOT;
        (
            u16::from_le_bytes([self.data[at], self.data[at + 1]]),
            u16::from_le_bytes([self.data[at + 2], self.data[at + 3]]),
        )
    }

    fn set_slot(&mut self, i: usize, offset: u16, len: u16) {
        let at = HEADER + i * SLOT;
        self.data[at..at + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[at + 2..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes still available for one more record (payload + its slot).
    pub fn free_space(&self) -> usize {
        let used_front = HEADER + self.slot_count() * SLOT;
        self.free_ptr()
            .saturating_sub(used_front)
            .saturating_sub(SLOT)
    }

    /// Maximum record payload a fresh page can hold.
    pub fn max_record() -> usize {
        PAGE_SIZE - HEADER - SLOT
    }

    /// Insert a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<usize> {
        if record.len() > Self::max_record() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: Self::max_record(),
            });
        }
        if record.len() > self.free_space() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: self.free_space(),
            });
        }
        let slot = self.slot_count();
        let start = self.free_ptr() - record.len();
        self.data[start..start + record.len()].copy_from_slice(record);
        self.set_slot(slot, start as u16, record.len() as u16);
        self.set_free_ptr(start);
        self.set_slot_count(slot + 1);
        Ok(slot)
    }

    /// Read the record in a slot.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (offset, len) = self.slot(slot);
        if offset == TOMBSTONE {
            return None;
        }
        Some(&self.data[offset as usize..offset as usize + len as usize])
    }

    /// Tombstone a slot (space is not reclaimed; ids stay stable).
    pub fn delete(&mut self, slot: usize) -> bool {
        if slot >= self.slot_count() || self.slot(slot).0 == TOMBSTONE {
            return false;
        }
        let len = self.slot(slot).1;
        self.set_slot(slot, TOMBSTONE, len);
        true
    }

    /// Number of slots ever allocated (including tombstones).
    pub fn slots(&self) -> usize {
        self.slot_count()
    }

    /// Iterate live records as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Bytes of payload + directory in use (storage accounting for B1).
    pub fn bytes_used(&self) -> usize {
        HEADER + self.slot_count() * SLOT + (PAGE_SIZE - self.free_ptr())
    }

    /// The raw page bytes, as they would sit on disk.
    pub fn raw(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Rebuild a page from raw bytes, validating the header and every
    /// slot (offset/length in range) so corrupt input errors instead of
    /// causing out-of-bounds reads later.
    pub fn from_raw(bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::CorruptRow {
                expected: PAGE_SIZE,
                got: bytes.len(),
            });
        }
        let data: Box<[u8; PAGE_SIZE]> = bytes
            .to_vec()
            .into_boxed_slice()
            .try_into()
            .expect("length checked");
        let page = Page { data };
        let slots = page.slot_count();
        let dir_end = HEADER + slots * SLOT;
        if dir_end > PAGE_SIZE || page.free_ptr() > PAGE_SIZE || page.free_ptr() < dir_end {
            return Err(StorageError::CorruptRow {
                expected: PAGE_SIZE,
                got: dir_end,
            });
        }
        for i in 0..slots {
            let (offset, len) = page.slot(i);
            if offset == TOMBSTONE {
                continue;
            }
            let (offset, len) = (offset as usize, len as usize);
            if offset < page.free_ptr() || offset + len > PAGE_SIZE {
                return Err(StorageError::InvalidSlot { page: 0, slot: i });
            }
        }
        Ok(page)
    }
}

impl Default for Page {
    fn default() -> Page {
        Page::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_round_trip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.slots(), 2);
        assert_eq!(p.get(5), None);
    }

    #[test]
    fn delete_tombstones_without_moving_others() {
        let mut p = Page::new();
        let s0 = p.insert(b"aaa").unwrap();
        let s1 = p.insert(b"bbb").unwrap();
        assert!(p.delete(s0));
        assert!(!p.delete(s0), "double delete is a no-op");
        assert_eq!(p.get(s0), None);
        assert_eq!(p.get(s1), Some(&b"bbb"[..]));
        let live: Vec<_> = p.iter().collect();
        assert_eq!(live, vec![(s1, &b"bbb"[..])]);
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        let rec = [0u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_ok() {
            n += 1;
        }
        // 8 KiB page: 8 payloads of 1000B + slots fit, a 9th does not.
        assert_eq!(n, 8);
        assert!(matches!(
            p.insert(&rec),
            Err(StorageError::RecordTooLarge { .. })
        ));
        // Smaller records still fit in the remainder.
        assert!(p.insert(&[1u8; 32]).is_ok());
    }

    #[test]
    fn oversized_record_rejected_upfront() {
        let mut p = Page::new();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn empty_record_is_fine() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    fn bytes_used_accounting() {
        let mut p = Page::new();
        assert_eq!(p.bytes_used(), HEADER);
        p.insert(&[0u8; 100]).unwrap();
        assert_eq!(p.bytes_used(), HEADER + SLOT + 100);
    }
}
