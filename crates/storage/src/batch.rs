//! Batch-at-a-time (columnar) operators over the flat baseline.
//!
//! The volcano operators in [`crate::exec`] pull one [`Row`] at a time;
//! every operator boundary costs an iterator dispatch per row. This
//! module processes [`BATCH_ROWS`]-row column slices instead: a
//! [`RowBatch`] stores each column contiguously, so equality filters
//! and join-key probes run down a single `Vec<u32>` and materialize
//! only the surviving row indices.
//!
//! The operators here are the lowering targets of
//! `hrdm_bench::flatplan::execute_flat_batch`; their contract is
//! *exactly* the tuple operators' — same rows, set semantics, sorted
//! output from [`distinct_rows`] — which the differential tests below
//! and the bench crate's parity suite both pin.

use std::collections::HashMap;

use crate::catalog::Table;
use crate::heap::RecordId;
use crate::row::Row;
use crate::sorted::SortedIndex;

/// Rows per batch. Matches the hierarchical engine's
/// `hrdm_core::columnar::BATCH_ROWS` (the crates are intentionally
/// independent, so the constant is duplicated rather than imported).
pub const BATCH_ROWS: usize = 1024;

/// A column-major slice of up to [`BATCH_ROWS`] rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowBatch {
    cols: Vec<Vec<u32>>,
}

impl RowBatch {
    /// An empty batch with `arity` columns.
    pub fn new(arity: usize) -> RowBatch {
        RowBatch {
            cols: vec![Vec::new(); arity],
        }
    }

    /// Build from row-major input.
    pub fn from_rows(arity: usize, rows: &[Row]) -> RowBatch {
        let mut b = RowBatch::new(arity);
        for row in rows {
            b.push(row);
        }
        b
    }

    /// Append one row (transposing into the columns).
    pub fn push(&mut self, row: &[u32]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// One column as a contiguous slice.
    pub fn col(&self, i: usize) -> &[u32] {
        &self.cols[i]
    }

    /// Materialize row `k` (row-major), for operator boundaries that
    /// need whole rows (hash-join build, distinct).
    pub fn row(&self, k: usize) -> Row {
        self.cols.iter().map(|c| c[k]).collect()
    }

    /// Keep only the rows at the given indices, in the given order.
    pub fn take(&self, sel: &[usize]) -> RowBatch {
        RowBatch {
            cols: self
                .cols
                .iter()
                .map(|c| sel.iter().map(|&k| c[k]).collect())
                .collect(),
        }
    }

    /// Vectorized equality filter: rows where column `col` equals
    /// `value`. The comparison runs down one contiguous column; only
    /// survivors are gathered.
    pub fn select_eq(&self, col: usize, value: u32) -> RowBatch {
        let sel: Vec<usize> = self.cols[col]
            .iter()
            .enumerate()
            .filter_map(|(k, &v)| (v == value).then_some(k))
            .collect();
        self.take(&sel)
    }

    /// Keep the listed columns, in the listed order.
    pub fn project(&self, cols: &[usize]) -> RowBatch {
        RowBatch {
            cols: cols.iter().map(|&c| self.cols[c].clone()).collect(),
        }
    }
}

/// Chunk a table scan into column-major batches.
pub fn batches(table: &Table) -> Vec<RowBatch> {
    batches_from_rows(table.arity(), table.scan())
}

/// Chunk an arbitrary row stream into column-major batches.
pub fn batches_from_rows(arity: usize, rows: impl Iterator<Item = Row>) -> Vec<RowBatch> {
    let mut out = Vec::new();
    let mut cur = RowBatch::new(arity);
    for row in rows {
        cur.push(&row);
        if cur.len() == BATCH_ROWS {
            out.push(std::mem::replace(&mut cur, RowBatch::new(arity)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Gather the rows behind `rids` into batches — the consumer of an
/// index probe ([`crate::index::HashIndex::lookup`] or
/// [`SortedIndex::lookup`]).
pub fn gather(table: &Table, rids: &[RecordId]) -> Vec<RowBatch> {
    batches_from_rows(
        table.arity(),
        rids.iter()
            .map(|&rid| table.get(rid).expect("index points at live rows")),
    )
}

/// Index-backed equality selection: probe the sorted index and gather
/// matching rows. Equivalent to filtering a full scan, but touches only
/// the matching rows.
pub fn probe_eq(table: &Table, index: &SortedIndex, value: u32) -> Vec<RowBatch> {
    let rids: Vec<RecordId> = index.lookup(value).iter().map(|&(_, rid)| rid).collect();
    gather(table, &rids)
}

/// Batch hash join: build on `left_col` over all left batches, probe
/// each right batch's key column contiguously. Output rows are
/// `left ++ right`, in right-stream order (same contract as
/// [`crate::exec::hash_join`]).
pub fn hash_join(
    left: &[RowBatch],
    left_col: usize,
    right: &[RowBatch],
    right_col: usize,
) -> Vec<RowBatch> {
    let mut build: HashMap<u32, Vec<Row>> = HashMap::new();
    for batch in left {
        for k in 0..batch.len() {
            build
                .entry(batch.col(left_col)[k])
                .or_default()
                .push(batch.row(k));
        }
    }
    let out_arity =
        left.first().map_or(0, RowBatch::arity) + right.first().map_or(0, RowBatch::arity);
    let mut rows: Vec<Row> = Vec::new();
    for batch in right {
        let keys = batch.col(right_col);
        for (k, key) in keys.iter().enumerate() {
            if let Some(matches) = build.get(key) {
                for l in matches {
                    let mut row = l.clone();
                    row.extend_from_slice(&batch.row(k));
                    rows.push(row);
                }
            }
        }
    }
    batches_from_rows(out_arity, rows.into_iter())
}

/// A class-id-keyed sorted index built directly over a batch list: a
/// sorted permutation of `(key, batch, row)` coordinates, probed by
/// binary search. Unlike [`SortedIndex`] it never materializes a heap
/// [`Table`] — the probe gathers straight from the batch columns — so
/// an index-backed selection in the middle of a batch pipeline costs
/// one sort of plain-old-data triples instead of a row-at-a-time
/// encode/decode round trip.
pub struct BatchIndex {
    /// `(key, batch index, row index)`, sorted by key then coordinate.
    entries: Vec<(u32, u32, u32)>,
}

impl BatchIndex {
    /// Index column `col` of every batch in `input`.
    pub fn build(input: &[RowBatch], col: usize) -> BatchIndex {
        let mut entries: Vec<(u32, u32, u32)> = Vec::new();
        for (b, batch) in input.iter().enumerate() {
            entries.extend(
                batch
                    .col(col)
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| (v, b as u32, k as u32)),
            );
        }
        entries.sort_unstable();
        BatchIndex { entries }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Gather every row whose indexed column equals `value`, in key
    /// order, materialized from the batch columns.
    pub fn probe_into(&self, input: &[RowBatch], value: u32, out: &mut Vec<Row>) {
        let start = self.entries.partition_point(|&(k, _, _)| k < value);
        for &(k, b, r) in &self.entries[start..] {
            if k != value {
                break;
            }
            out.push(input[b as usize].row(r as usize));
        }
    }
}

/// Flatten batches to sorted, deduplicated rows (the flat model's
/// SELECT UNIQUE; the canonical comparison form for parity tests).
pub fn distinct_rows(input: &[RowBatch]) -> Vec<Row> {
    let mut set = std::collections::BTreeSet::new();
    for batch in input {
        for k in 0..batch.len() {
            set.insert(batch.row(k));
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;

    fn table(rows: &[[u32; 2]]) -> Table {
        let mut t = Table::new("T", 2);
        for r in rows {
            t.insert(r).unwrap();
        }
        t
    }

    #[test]
    fn batches_round_trip_the_scan() {
        let t = table(&[[1, 10], [2, 20], [3, 30]]);
        let bs = batches(&t);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].len(), 3);
        assert_eq!(bs[0].arity(), 2);
        assert_eq!(bs[0].col(0), &[1, 2, 3]);
        assert_eq!(bs[0].row(1), vec![2, 20]);
        assert_eq!(distinct_rows(&bs), exec::distinct(exec::scan(&t)));
    }

    #[test]
    fn batches_split_at_the_batch_size() {
        let mut t = Table::new("Big", 1);
        for i in 0..(BATCH_ROWS as u32 * 2 + 5) {
            t.insert(&[i]).unwrap();
        }
        let bs = batches(&t);
        assert_eq!(bs.len(), 3);
        assert_eq!(bs[0].len(), BATCH_ROWS);
        assert_eq!(bs[1].len(), BATCH_ROWS);
        assert_eq!(bs[2].len(), 5);
        assert_eq!(distinct_rows(&bs).len(), BATCH_ROWS * 2 + 5);
    }

    #[test]
    fn select_eq_matches_tuple_filter() {
        let t = table(&[[1, 10], [2, 20], [1, 30], [3, 10]]);
        let picked: Vec<Row> = batches(&t)
            .iter()
            .flat_map(|b| {
                let f = b.select_eq(0, 1);
                (0..f.len()).map(move |k| f.row(k)).collect::<Vec<_>>()
            })
            .collect();
        let tuple: Vec<Row> = exec::filter(exec::scan(&t), |r| r[0] == 1).collect();
        assert_eq!(picked, tuple);
        // Projection keeps column order semantics.
        let proj = RowBatch::from_rows(2, &picked).project(&[1, 0]);
        assert_eq!(proj.row(0), vec![10, 1]);
    }

    #[test]
    fn probe_eq_equals_scan_filter() {
        let t = table(&[[4, 1], [5, 2], [4, 3], [6, 4], [4, 5]]);
        let idx = SortedIndex::build(&t, 0).unwrap();
        let probed = distinct_rows(&probe_eq(&t, &idx, 4));
        let scanned = exec::distinct(exec::filter(exec::scan(&t), |r| r[0] == 4))
            .into_iter()
            .collect::<Vec<_>>();
        assert_eq!(probed, scanned);
        assert!(probe_eq(&t, &idx, 99).is_empty());
    }

    #[test]
    fn batch_index_probe_equals_sorted_index_probe() {
        let t = table(&[[4, 1], [5, 2], [4, 3], [6, 4], [4, 5]]);
        let bs = batches(&t);
        let bidx = BatchIndex::build(&bs, 0);
        assert_eq!(bidx.len(), 5);
        assert!(!bidx.is_empty());
        let sidx = SortedIndex::build(&t, 0).unwrap();
        for v in [4u32, 5, 6, 99] {
            let mut got = Vec::new();
            bidx.probe_into(&bs, v, &mut got);
            got.sort();
            let want = distinct_rows(&probe_eq(&t, &sidx, v));
            assert_eq!(got, want, "value {v}");
        }
        // Duplicate rows across batches are preserved (dedup is the
        // pipeline terminal's job, same as the scan path).
        let dup = vec![bs[0].clone(), bs[0].clone()];
        let didx = BatchIndex::build(&dup, 0);
        let mut got = Vec::new();
        didx.probe_into(&dup, 4, &mut got);
        assert_eq!(got.len(), 6);
        assert!(BatchIndex::build(&[], 0).is_empty());
    }

    #[test]
    fn hash_join_matches_tuple_hash_join() {
        let l = table(&[[1, 10], [2, 20], [2, 21]]);
        let r = table(&[[2, 200], [3, 300], [2, 201]]);
        let batched = distinct_rows(&hash_join(&batches(&l), 0, &batches(&r), 0));
        let tuple = exec::distinct(exec::hash_join(exec::scan(&l), 0, exec::scan(&r), 0));
        let tuple: std::collections::BTreeSet<Row> = tuple.into_iter().collect();
        assert_eq!(batched, tuple.into_iter().collect::<Vec<_>>());
        // Empty sides.
        let e = Table::new("E", 2);
        assert!(hash_join(&batches(&e), 0, &batches(&r), 0).is_empty());
        assert!(hash_join(&batches(&l), 0, &batches(&e), 0).is_empty());
    }
}
