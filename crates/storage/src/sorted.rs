//! Sorted (binary-search) indexes keyed by class/node id.
//!
//! The hash indexes in [`crate::index`] answer point probes; benchmarks
//! of the footnote-1 membership encoding also want *ordered* access —
//! "all record ids whose class id falls in this subtree's id range" —
//! and a cache-friendly layout for batch gathers. A [`SortedIndex`] is
//! the classic static alternative: one sorted `(key, rid)` array,
//! `partition_point` probes, and contiguous result slices that feed
//! [`crate::batch::gather`] directly (no per-match `Vec` chasing).
//!
//! Rebuild-on-change semantics: the index is a snapshot of the table at
//! build time. The benchmark workloads are read-heavy after load, which
//! is exactly the regime where a static sorted array beats a hash map
//! on probe locality.

use crate::catalog::Table;
use crate::error::Result;
use crate::heap::RecordId;

/// An immutable sorted index over one column of a table.
#[derive(Clone, Debug)]
pub struct SortedIndex {
    col: usize,
    entries: Vec<(u32, RecordId)>,
}

impl SortedIndex {
    /// Build by scanning `table`, sorting `(key, rid)` by key (ties by
    /// rid, so the order is total and deterministic).
    pub fn build(table: &Table, col: usize) -> Result<SortedIndex> {
        let mut entries: Vec<(u32, RecordId)> = Vec::with_capacity(table.len());
        for (rid, row) in table.scan_with_ids() {
            entries.push((row[col], rid));
        }
        entries.sort_unstable();
        Ok(SortedIndex { col, entries })
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.col
    }

    /// Total number of entries (= rows at build time).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries for `key`, as a contiguous slice.
    pub fn lookup(&self, key: u32) -> &[(u32, RecordId)] {
        let lo = self.entries.partition_point(|&(k, _)| k < key);
        let hi = self.entries.partition_point(|&(k, _)| k <= key);
        &self.entries[lo..hi]
    }

    /// All entries with keys in `lo..=hi` (inclusive), contiguous.
    /// Subtree membership probes use this when node ids are assigned in
    /// preorder, so a class's descendants occupy one id range.
    pub fn range(&self, lo: u32, hi: u32) -> &[(u32, RecordId)] {
        let start = self.entries.partition_point(|&(k, _)| k < lo);
        let end = self.entries.partition_point(|&(k, _)| k <= hi);
        &self.entries[start..end.max(start)]
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        let mut n = 0;
        let mut prev = None;
        for &(k, _) in &self.entries {
            if prev != Some(k) {
                n += 1;
                prev = Some(k);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[[u32; 2]]) -> Table {
        let mut t = Table::new("T", 2);
        for r in rows {
            t.insert(r).unwrap();
        }
        t
    }

    #[test]
    fn lookup_finds_all_and_only_matches() {
        let t = table(&[[2, 20], [1, 10], [2, 21], [3, 30], [2, 22]]);
        let idx = SortedIndex::build(&t, 0).unwrap();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.column(), 0);
        assert_eq!(idx.key_count(), 3);
        let hits = idx.lookup(2);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|&(k, _)| k == 2));
        let rows: Vec<Row2> = hits.iter().map(|&(_, rid)| t.get(rid).unwrap()).collect();
        let mut vals: Vec<u32> = rows.iter().map(|r| r[1]).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![20, 21, 22]);
        assert!(idx.lookup(9).is_empty());
    }
    type Row2 = crate::row::Row;

    #[test]
    fn range_covers_inclusive_bounds() {
        let t = table(&[[1, 0], [2, 0], [3, 0], [5, 0], [8, 0]]);
        let idx = SortedIndex::build(&t, 0).unwrap();
        assert_eq!(idx.range(2, 5).len(), 3);
        assert_eq!(idx.range(4, 4).len(), 0);
        assert_eq!(idx.range(0, 100).len(), 5);
        // Degenerate (hi < lo) ranges are empty, not a panic.
        assert_eq!(idx.range(5, 2).len(), 0);
    }

    #[test]
    fn second_column_and_empty_table() {
        let t = table(&[[1, 7], [2, 7], [3, 9]]);
        let idx = SortedIndex::build(&t, 1).unwrap();
        assert_eq!(idx.lookup(7).len(), 2);
        assert_eq!(idx.key_count(), 2);
        let empty = SortedIndex::build(&table(&[]), 0).unwrap();
        assert!(empty.is_empty());
        assert!(empty.lookup(0).is_empty());
    }

    #[test]
    fn agrees_with_hash_index() {
        let mut t = table(&[[4, 1], [4, 2], [6, 3], [7, 4], [6, 5]]);
        let pos = t.create_index(0).unwrap();
        let sorted = SortedIndex::build(&t, 0).unwrap();
        for key in [4u32, 6, 7, 99] {
            let mut hash_rids: Vec<_> = t.index_on(0).unwrap().lookup(key).to_vec();
            hash_rids.sort();
            let mut sorted_rids: Vec<_> = sorted.lookup(key).iter().map(|&(_, rid)| rid).collect();
            sorted_rids.sort();
            assert_eq!(hash_rids, sorted_rids, "key {key} (index #{pos})");
        }
    }
}
