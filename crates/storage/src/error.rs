//! Error type for the flat storage engine.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record exceeds what a single page can hold.
    RecordTooLarge {
        /// Bytes requested.
        size: usize,
        /// Bytes a fresh page offers.
        max: usize,
    },
    /// A record id referenced a page that does not exist.
    InvalidPage(usize),
    /// A record id referenced a missing or deleted slot.
    InvalidSlot {
        /// Page of the bad reference.
        page: usize,
        /// Slot of the bad reference.
        slot: usize,
    },
    /// Encoded row bytes do not match the table's arity.
    CorruptRow {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        got: usize,
    },
    /// No table with this name exists.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A column index was out of range for the table's arity.
    ColumnOutOfRange(usize),
    /// An underlying I/O failure while writing or reading a file image
    /// (message only, so the error stays `Clone`/`PartialEq`).
    Io(String),
    /// The footnote-1 integrity constraint failed: the stored membership
    /// extension differs from the hierarchy's membership.
    MembershipViolation {
        /// Rows stored but not implied by the hierarchy.
        spurious: usize,
        /// Rows implied by the hierarchy but missing.
        missing: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::InvalidPage(p) => write!(f, "page {p} does not exist"),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "slot {slot} invalid on page {page}")
            }
            StorageError::CorruptRow { expected, got } => {
                write!(f, "row length {got} does not match expected {expected}")
            }
            StorageError::UnknownTable(n) => write!(f, "no table named {n:?}"),
            StorageError::DuplicateTable(n) => write!(f, "table {n:?} already exists"),
            StorageError::ColumnOutOfRange(c) => write!(f, "column {c} out of range"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
            StorageError::MembershipViolation { spurious, missing } => write!(
                f,
                "membership integrity violated: {spurious} spurious, {missing} missing rows"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(StorageError::UnknownTable("t".into())
            .to_string()
            .contains("\"t\""));
        assert!(StorageError::RecordTooLarge {
            size: 9000,
            max: 8180
        }
        .to_string()
        .contains("9000"));
        assert!(StorageError::MembershipViolation {
            spurious: 1,
            missing: 2
        }
        .to_string()
        .contains("1 spurious"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>() {}
        check::<StorageError>();
    }
}
