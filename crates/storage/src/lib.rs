#![warn(missing_docs)]

//! A from-scratch flat relational storage engine: the paper's baseline.
//!
//! Footnote 1 of the paper describes the "traditional" alternative to
//! hierarchical relations: "store the class membership in a separate
//! relation and keep only a single tuple with a class name … in the
//! standard relational model. The problem then is that repeated joins
//! are required, causing a degradation in performance." §1 likewise
//! contrasts the class mechanism with "storing an extension of the class
//! membership as the set of instances …, and then in addition storing an
//! integrity constraint that ensures that the extension stored is
//! exactly the membership of the class."
//!
//! This crate implements that baseline honestly, so the benchmark
//! harness can measure both sides of the paper's comparison on equal
//! footing:
//!
//! * [`page`] — 8 KiB slotted pages,
//! * [`heap`] — heap files of encoded rows with storage accounting,
//! * [`row`] — fixed-arity row encoding,
//! * [`index`] — hash indexes,
//! * [`exec`] — volcano-style iterators (scan, filter, project, hash
//!   join),
//! * [`batch`] — batch-at-a-time columnar operators over the same
//!   tables (1 k-row column slices),
//! * [`sorted`] — static sorted indexes for class-id-keyed membership
//!   probes and range gathers,
//! * [`catalog`] — named tables,
//! * [`membership`] — the footnote-1 encoding: a membership table per
//!   domain plus the integrity constraint that it matches the hierarchy.
//!
//! Everything is deliberately in-memory (pages are `Box<[u8; 8192]>`):
//! the paper's claims are about tuple counts and join work, not disk
//! hardware, and an in-memory engine keeps the comparison apples to
//! apples with the in-memory hierarchical core.

pub mod batch;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod heap;
pub mod index;
pub mod membership;
pub mod page;
pub mod row;
pub mod sorted;

pub use batch::RowBatch;
pub use catalog::{Database, Table};
pub use error::{Result, StorageError};
pub use heap::{HeapFile, RecordId};
pub use page::{Page, PAGE_SIZE};
pub use row::Row;
pub use sorted::SortedIndex;
