//! Tables and the database catalog.

use std::collections::BTreeMap;

use crate::error::{Result, StorageError};
use crate::heap::{HeapFile, RecordId};
use crate::index::HashIndex;
use crate::row::{decode, encode, Row};

/// A fixed-arity table: heap file plus optional hash indexes.
pub struct Table {
    name: String,
    arity: usize,
    heap: HeapFile,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, arity: usize) -> Table {
        Table {
            name: name.into(),
            arity,
            heap: HeapFile::new(),
            indexes: Vec::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Insert a row; maintains all indexes.
    pub fn insert(&mut self, row: &[u32]) -> Result<RecordId> {
        if row.len() != self.arity {
            return Err(StorageError::CorruptRow {
                expected: self.arity * 4,
                got: row.len() * 4,
            });
        }
        let rid = self.heap.insert(&encode(row))?;
        for idx in &mut self.indexes {
            idx.insert(row[idx.column()], rid);
        }
        Ok(rid)
    }

    /// Delete a row by id; maintains all indexes.
    pub fn delete(&mut self, rid: RecordId) -> Result<()> {
        let row = self.get(rid)?;
        for idx in &mut self.indexes {
            let v = row[idx.column()];
            idx.remove(v, rid);
        }
        self.heap.delete(rid)
    }

    /// Read one row.
    pub fn get(&self, rid: RecordId) -> Result<Row> {
        decode(self.heap.get(rid)?, self.arity)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Build (or rebuild) a hash index on a column; returns its
    /// position in the index list.
    pub fn create_index(&mut self, col: usize) -> Result<usize> {
        if col >= self.arity {
            return Err(StorageError::ColumnOutOfRange(col));
        }
        self.indexes.push(HashIndex::build(&self.heap, col));
        Ok(self.indexes.len() - 1)
    }

    /// An index on `col`, if one exists.
    pub fn index_on(&self, col: usize) -> Option<&HashIndex> {
        self.indexes.iter().find(|i| i.column() == col)
    }

    /// Scan all live rows.
    pub fn scan(&self) -> impl Iterator<Item = Row> + '_ {
        self.heap
            .scan()
            .map(move |(_, bytes)| decode(bytes, self.arity).expect("rows written by us"))
    }

    /// Scan all live rows together with their record ids (index
    /// builders and batch gathers want both).
    pub fn scan_with_ids(&self) -> impl Iterator<Item = (RecordId, Row)> + '_ {
        self.heap
            .scan()
            .map(move |(rid, bytes)| (rid, decode(bytes, self.arity).expect("rows written by us")))
    }

    /// Rows whose `col` equals `value`, via index when available,
    /// falling back to a scan.
    pub fn lookup(&self, col: usize, value: u32) -> Vec<Row> {
        if let Some(idx) = self.index_on(col) {
            idx.lookup(value)
                .iter()
                .map(|&rid| self.get(rid).expect("index points at live rows"))
                .collect()
        } else {
            self.scan().filter(|r| r[col] == value).collect()
        }
    }

    /// The backing heap (for storage accounting).
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }
}

/// A named collection of tables.
#[derive(Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str, arity: usize) -> Result<&mut Table> {
        if self.tables.contains_key(name) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        self.tables
            .insert(name.to_string(), Table::new(name, arity));
        Ok(self.tables.get_mut(name).expect("just inserted"))
    }

    /// Look a table up.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable table access.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Table names in order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_crud() {
        let mut t = Table::new("R", 2);
        assert!(t.is_empty());
        let r0 = t.insert(&[1, 10]).unwrap();
        let r1 = t.insert(&[2, 20]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(r0).unwrap(), vec![1, 10]);
        t.delete(r1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.scan().collect::<Vec<_>>(), vec![vec![1, 10]]);
        assert_eq!(t.name(), "R");
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn arity_enforced() {
        let mut t = Table::new("R", 2);
        assert!(matches!(
            t.insert(&[1]),
            Err(StorageError::CorruptRow { .. })
        ));
    }

    #[test]
    fn indexed_lookup_matches_scan() {
        let mut t = Table::new("R", 2);
        for i in 0..100u32 {
            t.insert(&[i % 10, i]).unwrap();
        }
        t.create_index(0).unwrap();
        let via_index = t.lookup(0, 3);
        assert_eq!(via_index.len(), 10);
        let via_scan: Vec<Row> = t.scan().filter(|r| r[0] == 3).collect();
        assert_eq!(via_index, via_scan);
        // Unindexed column falls back to scan.
        assert_eq!(t.lookup(1, 42), vec![vec![2, 42]]);
    }

    #[test]
    fn index_maintained_across_mutations() {
        let mut t = Table::new("R", 1);
        t.create_index(0).unwrap();
        let r0 = t.insert(&[7]).unwrap();
        assert_eq!(t.lookup(0, 7), vec![vec![7]]);
        t.delete(r0).unwrap();
        assert!(t.lookup(0, 7).is_empty());
        assert!(matches!(
            t.create_index(5),
            Err(StorageError::ColumnOutOfRange(5))
        ));
    }

    #[test]
    fn database_catalog() {
        let mut db = Database::new();
        db.create_table("R", 2).unwrap();
        assert!(matches!(
            db.create_table("R", 2),
            Err(StorageError::DuplicateTable(_))
        ));
        db.table_mut("R").unwrap().insert(&[1, 2]).unwrap();
        assert_eq!(db.table("R").unwrap().len(), 1);
        assert!(db.table("S").is_err());
        assert_eq!(db.table_names().collect::<Vec<_>>(), vec!["R"]);
        db.drop_table("R").unwrap();
        assert!(db.drop_table("R").is_err());
    }
}
