//! Hash indexes over heap files.
//!
//! A [`HashIndex`] maps one column's value to the record ids holding it,
//! giving the flat baseline the same O(1)-ish point lookups a production
//! engine would have — the B2 comparison against hierarchical binding
//! lookups would be unfair without it.

use std::collections::HashMap;

use crate::heap::{HeapFile, RecordId};
use crate::row::column;

/// A hash index on one column of a table.
pub struct HashIndex {
    col: usize,
    map: HashMap<u32, Vec<RecordId>>,
}

impl HashIndex {
    /// Build an index over the current contents of `heap`.
    pub fn build(heap: &HeapFile, col: usize) -> HashIndex {
        let mut map: HashMap<u32, Vec<RecordId>> = HashMap::new();
        for (rid, bytes) in heap.scan() {
            if let Ok(v) = column(bytes, col) {
                map.entry(v).or_default().push(rid);
            }
        }
        HashIndex { col, map }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.col
    }

    /// Record ids whose indexed column equals `value`.
    pub fn lookup(&self, value: u32) -> &[RecordId] {
        self.map.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Register a newly inserted record.
    pub fn insert(&mut self, value: u32, rid: RecordId) {
        self.map.entry(value).or_default().push(rid);
    }

    /// Remove a record (e.g. after heap delete).
    pub fn remove(&mut self, value: u32, rid: RecordId) {
        if let Some(v) = self.map.get_mut(&value) {
            v.retain(|&r| r != rid);
            if v.is_empty() {
                self.map.remove(&value);
            }
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::encode;

    #[test]
    fn build_and_lookup() {
        let mut h = HeapFile::new();
        let r0 = h.insert(&encode(&[1, 100])).unwrap();
        let r1 = h.insert(&encode(&[2, 200])).unwrap();
        let r2 = h.insert(&encode(&[1, 300])).unwrap();
        let idx = HashIndex::build(&h, 0);
        assert_eq!(idx.lookup(1), &[r0, r2]);
        assert_eq!(idx.lookup(2), &[r1]);
        assert_eq!(idx.lookup(9), &[] as &[RecordId]);
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.column(), 0);
    }

    #[test]
    fn second_column_index() {
        let mut h = HeapFile::new();
        let r0 = h.insert(&encode(&[1, 100])).unwrap();
        let idx = HashIndex::build(&h, 1);
        assert_eq!(idx.lookup(100), &[r0]);
        assert_eq!(idx.lookup(1), &[] as &[RecordId]);
    }

    #[test]
    fn incremental_maintenance() {
        let mut h = HeapFile::new();
        let mut idx = HashIndex::build(&h, 0);
        let r0 = h.insert(&encode(&[5, 0])).unwrap();
        idx.insert(5, r0);
        assert_eq!(idx.lookup(5), &[r0]);
        idx.remove(5, r0);
        assert_eq!(idx.lookup(5), &[] as &[RecordId]);
        assert_eq!(idx.key_count(), 0);
        idx.remove(5, r0); // no-op
    }
}
