//! The footnote-1 flat encoding: class membership as a table plus an
//! integrity constraint.
//!
//! "One could, of course, store the class membership in a separate
//! relation and keep only a single tuple with a class name … in the
//! standard relational model. The problem then is that repeated joins
//! are required causing a degradation in performance."
//!
//! [`MembershipTable`] materializes `(class, instance)` pairs for the
//! transitive membership of a hierarchy, indexed both ways. §1's
//! companion requirement — "storing an integrity constraint that ensures
//! that the extension stored is exactly the membership of the class" —
//! is [`MembershipTable::check_integrity`], which revalidates the stored
//! extension against the hierarchy (this is precisely the maintenance
//! burden the hierarchical model eliminates).

use hrdm_hierarchy::HierarchyGraph;

use crate::catalog::Table;
use crate::error::{Result, StorageError};
use crate::exec::{hash_join, scan};
use crate::row::Row;

/// A stored `(class, instance)` membership extension with indexes on
/// both columns.
pub struct MembershipTable {
    table: Table,
}

impl MembershipTable {
    /// Materialize the transitive membership of `g`: one row per
    /// (class-or-domain, instance) pair with `instance ⊆ class`.
    pub fn materialize(g: &HierarchyGraph) -> MembershipTable {
        let mut table = Table::new("Membership", 2);
        for class in g.node_ids() {
            if g.is_instance(class) {
                continue;
            }
            for inst in g.extension(class) {
                table
                    .insert(&[class.index() as u32, inst.index() as u32])
                    .expect("two-column rows always fit a page");
            }
        }
        table.create_index(0).expect("column 0 exists");
        table.create_index(1).expect("column 1 exists");
        MembershipTable { table }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of stored membership rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no memberships are stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Instances stored as members of `class`.
    pub fn members(&self, class: u32) -> Vec<u32> {
        self.table
            .lookup(0, class)
            .into_iter()
            .map(|r| r[1])
            .collect()
    }

    /// Classes stored as containing `instance`.
    pub fn classes_of(&self, instance: u32) -> Vec<u32> {
        self.table
            .lookup(1, instance)
            .into_iter()
            .map(|r| r[0])
            .collect()
    }

    /// The §1 integrity constraint: the stored extension must be exactly
    /// the hierarchy's membership. O(rows + nodes²) revalidation — the
    /// recurring cost the hierarchical model avoids by construction.
    pub fn check_integrity(&self, g: &HierarchyGraph) -> Result<()> {
        use std::collections::BTreeSet;
        let stored: BTreeSet<(u32, u32)> = self.table.scan().map(|r| (r[0], r[1])).collect();
        let mut expected: BTreeSet<(u32, u32)> = BTreeSet::new();
        for class in g.node_ids() {
            if g.is_instance(class) {
                continue;
            }
            for inst in g.extension(class) {
                expected.insert((class.index() as u32, inst.index() as u32));
            }
        }
        let spurious = stored.difference(&expected).count();
        let missing = expected.difference(&stored).count();
        if spurious == 0 && missing == 0 {
            Ok(())
        } else {
            Err(StorageError::MembershipViolation { spurious, missing })
        }
    }

    /// The footnote-1 query plan: expand a by-class relation
    /// `r(class, …)` to instance level via a hash join with the
    /// membership table. Output rows: `(instance, …rest of r's row)`.
    pub fn expand_by_class<'a>(&'a self, by_class: &'a Table) -> impl Iterator<Item = Row> + 'a {
        // join Membership(class, instance) with r(class, ...) on class,
        // then project instance + r's payload columns.
        let arity = by_class.arity();
        hash_join(scan(self.table()), 0, scan(by_class), 0).map(move |row| {
            // row = [class, instance, class, payload...]
            let mut out = Vec::with_capacity(arity);
            out.push(row[1]);
            out.extend_from_slice(&row[3..3 + (arity - 1)]);
            out
        })
    }

    /// Point query through the join: is `instance` a member of any class
    /// listed in `by_class` (footnote-1's "does R hold for x?").
    pub fn holds_via_join(&self, by_class: &Table, instance: u32) -> bool {
        self.classes_of(instance)
            .into_iter()
            .any(|class| !by_class.lookup(0, class).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birds() -> HierarchyGraph {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let canary = g.add_class("Canary", bird).unwrap();
        g.add_instance("Tweety", canary).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        g.add_instance("Paul", penguin).unwrap();
        g
    }

    #[test]
    fn materialization_counts() {
        let g = birds();
        let m = MembershipTable::materialize(&g);
        // Classes: Animal(2 members), Bird(2), Canary(1), Penguin(1).
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        let bird = g.expect("Bird").index() as u32;
        assert_eq!(m.members(bird).len(), 2);
        let tweety = g.expect("Tweety").index() as u32;
        let mut classes = m.classes_of(tweety);
        classes.sort_unstable();
        assert_eq!(classes.len(), 3); // Animal, Bird, Canary
    }

    #[test]
    fn integrity_holds_then_breaks_on_hierarchy_change() {
        let mut g = birds();
        let m = MembershipTable::materialize(&g);
        m.check_integrity(&g).unwrap();
        // The hierarchy evolves; the stored extension silently rots —
        // exactly the maintenance problem §1 describes.
        let penguin = g.expect("Penguin");
        g.add_instance("Pablo", penguin).unwrap();
        let err = m.check_integrity(&g).unwrap_err();
        assert!(matches!(
            err,
            StorageError::MembershipViolation { spurious: 0, missing } if missing > 0
        ));
    }

    #[test]
    fn expand_by_class_is_the_flat_extension() {
        let g = birds();
        let m = MembershipTable::materialize(&g);
        // Flies(class): one tuple, "all birds".
        let mut flies = Table::new("Flies", 1);
        let bird = g.expect("Bird").index() as u32;
        flies.insert(&[bird]).unwrap();
        let mut rows: Vec<Row> = m.expand_by_class(&flies).collect();
        rows.sort();
        let tweety = g.expect("Tweety").index() as u32;
        let paul = g.expect("Paul").index() as u32;
        let mut expected = vec![vec![tweety], vec![paul]];
        expected.sort();
        assert_eq!(rows, expected);
    }

    #[test]
    fn point_query_via_join() {
        let g = birds();
        let m = MembershipTable::materialize(&g);
        let mut flies = Table::new("Flies", 1);
        flies.insert(&[g.expect("Bird").index() as u32]).unwrap();
        flies.create_index(0).unwrap();
        assert!(m.holds_via_join(&flies, g.expect("Tweety").index() as u32));
        assert!(m.holds_via_join(&flies, g.expect("Paul").index() as u32));
        // The root domain id is not an instance of anything.
        assert!(!m.holds_via_join(&flies, g.root().index() as u32));
    }

    #[test]
    fn expand_with_payload_columns() {
        let g = birds();
        let m = MembershipTable::materialize(&g);
        let mut rel = Table::new("R", 2);
        let bird = g.expect("Bird").index() as u32;
        rel.insert(&[bird, 99]).unwrap();
        let rows: Vec<Row> = m.expand_by_class(&rel).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 2 && r[1] == 99));
    }
}
