//! Property tests for the flat storage engine.

use proptest::collection::vec;
use proptest::prelude::*;

use hrdm_storage::exec::{distinct, hash_join, scan};
use hrdm_storage::row::{decode, encode};
use hrdm_storage::{HeapFile, Table};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_encoding_round_trips(row in vec(any::<u32>(), 0..16)) {
        let bytes = encode(&row);
        prop_assert_eq!(decode(&bytes, row.len()).unwrap(), row);
    }

    #[test]
    fn heap_preserves_all_records(records in vec(vec(any::<u8>(), 0..200), 1..100)) {
        let mut h = HeapFile::new();
        let rids: Vec<_> = records
            .iter()
            .map(|r| h.insert(r).unwrap())
            .collect();
        prop_assert_eq!(h.len(), records.len());
        for (rid, rec) in rids.iter().zip(&records) {
            prop_assert_eq!(h.get(*rid).unwrap(), rec.as_slice());
        }
        // Scan yields exactly the inserted multiset, in insertion order.
        let scanned: Vec<Vec<u8>> = h.scan().map(|(_, b)| b.to_vec()).collect();
        prop_assert_eq!(scanned, records);
    }

    #[test]
    fn heap_deletion_removes_exactly_the_deleted(
        records in vec(vec(any::<u8>(), 1..50), 2..40),
        delete_mask in vec(any::<bool>(), 2..40),
    ) {
        let mut h = HeapFile::new();
        let rids: Vec<_> = records.iter().map(|r| h.insert(r).unwrap()).collect();
        let mut kept = Vec::new();
        for ((rid, rec), del) in rids.iter().zip(&records).zip(&delete_mask) {
            if *del {
                h.delete(*rid).unwrap();
            } else {
                kept.push(rec.clone());
            }
        }
        // Records beyond the mask's length are kept.
        for rec in records.iter().skip(delete_mask.len()) {
            kept.push(rec.clone());
        }
        let scanned: Vec<Vec<u8>> = h.scan().map(|(_, b)| b.to_vec()).collect();
        prop_assert_eq!(scanned, kept);
    }

    #[test]
    fn indexed_lookup_equals_scan_filter(
        rows in vec((0u32..20, any::<u32>()), 0..200),
        key in 0u32..20,
    ) {
        let mut t = Table::new("R", 2);
        for (a, b) in &rows {
            t.insert(&[*a, *b]).unwrap();
        }
        t.create_index(0).unwrap();
        let via_index = t.lookup(0, key);
        let via_scan: Vec<Vec<u32>> = t.scan().filter(|r| r[0] == key).collect();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn hash_join_equals_nested_loop(
        left in vec((0u32..10, any::<u32>()), 0..50),
        right in vec((0u32..10, any::<u32>()), 0..50),
    ) {
        let mut lt = Table::new("L", 2);
        for (a, b) in &left {
            lt.insert(&[*a, *b]).unwrap();
        }
        let mut rt = Table::new("R", 2);
        for (a, b) in &right {
            rt.insert(&[*a, *b]).unwrap();
        }
        let mut hashed: Vec<Vec<u32>> = hash_join(scan(&lt), 0, scan(&rt), 0).collect();
        hashed.sort();
        let mut nested = Vec::new();
        for l in scan(&lt) {
            for r in scan(&rt) {
                if l[0] == r[0] {
                    let mut row = l.clone();
                    row.extend_from_slice(&r);
                    nested.push(row);
                }
            }
        }
        nested.sort();
        prop_assert_eq!(hashed, nested);
    }

    #[test]
    fn distinct_is_a_set(rows in vec((0u32..5, 0u32..5), 0..60)) {
        let mut t = Table::new("R", 2);
        for (a, b) in &rows {
            t.insert(&[*a, *b]).unwrap();
        }
        let d = distinct(scan(&t));
        let set: std::collections::BTreeSet<Vec<u32>> = d.iter().cloned().collect();
        prop_assert_eq!(d.len(), set.len());
        let full: std::collections::BTreeSet<Vec<u32>> = scan(&t).collect();
        prop_assert_eq!(set, full);
    }
}
