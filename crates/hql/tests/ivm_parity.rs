//! Incremental view maintenance versus full recomputation, end to end
//! through the public engine API, on thousands of random mutation
//! scripts.
//!
//! Every script builds a taxonomy, binds a family of `LET` views
//! (consolidate, union, select, explicate, and a view over views),
//! then runs a random mutation sequence: asserts, retracts, domain
//! edits (`CREATE CLASS`/`CREATE INSTANCE`/`PREFER` — the fallback
//! triggers), preemption switches, and in-place operators. After
//! **every** committed statement, each live view must be
//! `render_table`-byte-identical to the oracle: a fresh engine that
//! replays the committed mutation history and only then derives the
//! same `LET` bindings from scratch. A divergence anywhere — one epoch,
//! one view, one byte — fails the sweep with the script seed.
//!
//! The sweep also proves the engine exercised both maintenance paths
//! (differential and fallback) by checking the `ivm.*` counters moved.

use hrdm_core::render::render_table;
use hrdm_hql::Engine;
use hrdm_obs::metrics;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const VIEWS: [&str; 5] = ["VC", "VU", "VS", "VE", "VV"];

/// The `LET` family under test; `VV` cascades over two other views.
fn view_script() -> String {
    "LET VC = CONSOLIDATE R0;\
     LET VU = UNION R0 R1;\
     LET VS = SELECT R1 WHERE V IS ALL A;\
     LET VE = EXPLICATE R0;\
     LET VV = INTERSECT VU VC;"
        .to_string()
}

/// One random mutation statement over the growing name pool.
fn random_statement(seed: u64, pool: &mut Vec<String>, fresh: &mut u32) -> String {
    let pick = |s: u64, pool: &[String]| pool[(s as usize >> 16) % pool.len()].clone();
    match seed % 10 {
        0 | 1 => {
            let truth = if seed & 0x100 == 0 { "" } else { "NOT " };
            format!("ASSERT {truth}R{} (ALL {});", seed % 2, pick(seed, pool))
        }
        2 | 3 => format!("ASSERT R{} ({});", seed % 2, pick(seed, pool)),
        4 => format!("RETRACT R{} ({});", seed % 2, pick(seed, pool)),
        5 => {
            *fresh += 1;
            let name = format!("K{fresh}");
            let parent = pick(seed, pool);
            pool.push(name.clone());
            format!("CREATE CLASS {name} UNDER {parent};")
        }
        6 => {
            *fresh += 1;
            let name = format!("k{fresh}");
            let parent = pick(seed, pool);
            pool.push(name.clone());
            format!("CREATE INSTANCE {name} OF {parent};")
        }
        7 => format!(
            "PREFER {} OVER {} IN D;",
            pick(seed, pool),
            pick(seed >> 7, pool)
        ),
        8 => {
            let mode = ["OFF-PATH", "ON-PATH", "NONE"][(seed as usize >> 9) % 3];
            format!("SET PREEMPTION R{} {mode};", seed % 2)
        }
        _ => format!("CONSOLIDATE R{};", seed % 2),
    }
}

/// Maintained views must match a fresh re-derivation over the replayed
/// mutation history, byte for byte.
fn check_views(live: &Engine, history: &[String], context: &str) {
    let oracle = Engine::new();
    for stmt in history {
        oracle
            .execute(stmt)
            .unwrap_or_else(|e| panic!("{context}: oracle replay of {stmt:?} failed: {e}"));
    }
    oracle.execute(&view_script()).unwrap_or_else(|e| {
        panic!(
            "{context}: oracle LET failed: {e}\nhistory:\n{}",
            history.join("\n")
        )
    });
    let live_snap = live.snapshot();
    let oracle_snap = oracle.snapshot();
    for view in VIEWS {
        let l = render_table(live_snap.relation(view).expect("live view exists"));
        let o = render_table(oracle_snap.relation(view).expect("oracle view exists"));
        assert_eq!(
            l.into_bytes(),
            o.into_bytes(),
            "{context}: view {view} diverged from full recomputation\nhistory:\n{}",
            history.join("\n")
        );
    }
}

fn run_script(seed: u64, steps: usize) -> u64 {
    let mut rng = seed;
    let engine = Engine::new();
    let mut history: Vec<String> = vec![
        "CREATE DOMAIN D;".into(),
        "CREATE CLASS A UNDER D;".into(),
        "CREATE CLASS B UNDER D;".into(),
        "CREATE CLASS C UNDER A;".into(),
        "CREATE INSTANCE x OF A;".into(),
        "CREATE INSTANCE y OF B;".into(),
        "CREATE INSTANCE z OF C;".into(),
        "CREATE RELATION R0 (V: D);".into(),
        "CREATE RELATION R1 (V: D);".into(),
        format!(
            "ASSERT R0 (ALL {});",
            ["A", "B", "C"][(seed as usize >> 4) % 3]
        ),
        format!(
            "ASSERT {}R1 (ALL {});",
            if seed & 1 == 0 { "" } else { "NOT " },
            ["A", "B", "C"][(seed as usize >> 6) % 3]
        ),
    ];
    for stmt in &history {
        engine.execute(stmt).expect("setup statements are valid");
    }
    engine.execute(&view_script()).expect("LET family binds");

    let mut pool: Vec<String> = ["A", "B", "C", "x", "y", "z"]
        .into_iter()
        .map(String::from)
        .collect();
    let mut fresh = 0u32;
    let mut committed = 0u64;
    for step in 0..steps {
        let sseed = splitmix(&mut rng);
        let stmt = random_statement(sseed, &mut pool, &mut fresh);
        match engine.execute(&stmt) {
            Ok(_) => {
                history.push(stmt);
                committed += 1;
                check_views(
                    &engine,
                    &history,
                    &format!(
                        "script {seed:#x} step {step} ({:?})",
                        history.last().unwrap()
                    ),
                );
            }
            Err(_) => {
                // Rejected atomically (bad statement, integrity
                // violation, or a view that would lose derivability):
                // nothing published, views must still match the
                // *previous* history.
                check_views(
                    &engine,
                    &history,
                    &format!("script {seed:#x} step {step} (after rejected {stmt:?})"),
                );
            }
        }
    }
    committed
}

/// The headline sweep: random mutation scripts with per-epoch byte
/// identity between maintained views and full recomputation. Sized so
/// the suite crosses the 2k-script mark with both maintenance paths
/// exercised.
#[test]
fn maintained_views_match_recomputation_on_random_scripts() {
    let maintained0 = metrics::counter("ivm.maintained").get();
    let fallback0 = metrics::counter("ivm.fallback").get();

    const SCRIPTS: u64 = 2_048;
    const STEPS: usize = 6;
    let mut rng = 0x11af_00d5_0000_0001u64;
    let mut committed = 0u64;
    for _ in 0..SCRIPTS {
        committed += run_script(splitmix(&mut rng), STEPS);
    }
    assert!(
        committed > 4_000,
        "only {committed} committed mutation steps across the sweep"
    );
    assert!(
        metrics::counter("ivm.maintained").get() > maintained0,
        "differential path never ran"
    );
    assert!(
        metrics::counter("ivm.fallback").get() > fallback0,
        "fallback path never ran (domain edits must trigger it)"
    );
}

/// Directly writing into a view's relation detaches it: the relation
/// keeps the user's rows and stops tracking its derivation.
#[test]
fn direct_write_detaches_the_view() {
    let engine = Engine::new();
    engine
        .execute(
            "CREATE DOMAIN D; CREATE CLASS A UNDER D; CREATE CLASS B UNDER D;\
             CREATE CLASS E UNDER D;\
             CREATE RELATION R (V: D); ASSERT R (ALL A);\
             LET V = CONSOLIDATE R;",
        )
        .unwrap();
    assert!(engine.snapshot().is_view("V"));
    // Maintained: a new base row shows up in the view.
    engine.execute("ASSERT R (ALL B);").unwrap();
    assert_eq!(engine.snapshot().relation("V").unwrap().len(), 2);
    // Direct write into V detaches it…
    engine.execute("ASSERT NOT V (ALL E);").unwrap();
    assert!(!engine.snapshot().is_view("V"));
    let frozen = render_table(engine.snapshot().relation("V").unwrap());
    // …so later base writes no longer touch it.
    engine.execute("RETRACT R (ALL A);").unwrap();
    assert_eq!(
        render_table(engine.snapshot().relation("V").unwrap()),
        frozen,
        "detached view must stop tracking its base"
    );
}

/// Committed writes publish a structured delta alongside their epoch,
/// including the rows view maintenance cascaded into the views.
#[test]
fn writes_publish_epoch_deltas() {
    let engine = Engine::new();
    engine
        .execute(
            "CREATE DOMAIN D; CREATE CLASS A UNDER D;\
             CREATE RELATION R (V: D); LET V = CONSOLIDATE R;",
        )
        .unwrap();
    engine.execute("ASSERT R (ALL A);").unwrap();
    let (epoch, delta) = engine.last_delta().expect("write published a delta");
    assert_eq!(epoch, engine.epoch());
    let r_rows = delta.relations["R"].rows().expect("row-level change");
    assert_eq!(r_rows.added.len(), 1);
    let v_rows = delta.relations["V"].rows().expect("view delta cascaded");
    assert_eq!(v_rows.added.len(), 1);
    // Domain edits are flagged as such.
    engine.execute("CREATE CLASS B UNDER D;").unwrap();
    let (_, delta) = engine.last_delta().unwrap();
    assert!(delta.domains.contains("D"));
}

/// A mutation that would leave a view under-derivable fails atomically:
/// the base write is rejected too, and nothing publishes.
#[test]
fn maintenance_failure_rejects_the_statement() {
    let engine = Engine::new();
    engine
        .execute(
            "CREATE DOMAIN D; CREATE CLASS A UNDER D; CREATE CLASS B UNDER D;\
             CREATE INSTANCE x OF A, B;\
             CREATE RELATION R (V: D); CREATE RELATION S (V: D);\
             ASSERT R (ALL A); LET V = UNION R S;",
        )
        .unwrap();
    let epoch = engine.epoch();
    // ¬B makes x (under both A and B) ambiguous in R; the union view's
    // re-derivation rejects the conflicted input, so the *assert* must
    // fail and publish nothing — live views enforce derivability.
    let err = engine.execute("ASSERT NOT R (ALL B);").unwrap_err();
    let _ = format!("{err}");
    assert_eq!(
        engine.epoch(),
        epoch,
        "failed maintenance published nothing"
    );
    assert_eq!(
        engine.snapshot().relation("R").unwrap().len(),
        1,
        "base write rolled back with the failed maintenance"
    );
}
