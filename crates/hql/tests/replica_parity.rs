//! Replica-parity harness (the acceptance gate for WAL shipping).
//!
//! A model-driven generator feeds a primary engine ≥ 1k randomized
//! mutation statements (every WAL mutation kind, plus rollover-forcing
//! `CHECKPOINT` / `CONSOLIDATE`), journaling through an `OPEN`ed store.
//! A [`Replica`] tails the same directory and, at randomized sync
//! points, every read over the catalog (`SHOW` / `COUNT` / `CHECK` per
//! relation, `SHOW DOMAIN` per domain) must render **byte-identically**
//! on the replica and on the primary at the shipped LSN. The shipped
//! LSN itself must agree with the primary's journal LSN — the replica
//! is exactly as far along as the WAL says.

use hrdm_hql::{Engine, ExecutorHandle, Replica};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEEDS: [u64; 4] = [0xA11CE, 0xB0B, 0x5EED_CAFE, 0xD15C0];
const SCRIPT_LEN: usize = 300;
const SYNC_STRIDE: usize = 7;

/// What the generator knows to be true of the primary, so reads can be
/// built over live names and retracts aim at stored tuples.
#[derive(Default)]
struct Model {
    counter: usize,
    domains: Vec<DomainModel>,
    relations: Vec<RelModel>,
}

struct DomainModel {
    name: String,
    /// Class-node names (the root counts), valid as `UNDER`/`OF` parents
    /// and as `ALL`-quantified values.
    classes: Vec<String>,
    /// Instance-node names, valid as plain values.
    instances: Vec<String>,
}

struct RelModel {
    name: String,
    /// Attribute domains, by index into `Model::domains` at creation.
    domains: Vec<String>,
    /// Rendered value lists of tuples asserted and not yet retracted.
    stored: Vec<String>,
}

impl Model {
    fn fresh(&mut self, stem: &str) -> String {
        self.counter += 1;
        format!("{stem}{}", self.counter)
    }

    fn domain_of(&self, name: &str) -> &DomainModel {
        self.domains
            .iter()
            .find(|d| d.name == name)
            .expect("relation signatures only name live domains")
    }

    /// One random value for an attribute over `domain`: a class
    /// (quantified) or an instance (plain).
    fn value(&self, rng: &mut SmallRng, domain: &str) -> String {
        let d = self.domain_of(domain);
        if !d.instances.is_empty() && (d.classes.is_empty() || rng.gen_bool(0.5)) {
            d.instances[rng.gen_range(0..d.instances.len())].clone()
        } else {
            format!("ALL {}", d.classes[rng.gen_range(0..d.classes.len())])
        }
    }

    /// The read suite over everything currently live.
    fn read_suite(&self) -> String {
        let mut script = String::new();
        for d in &self.domains {
            script.push_str(&format!("SHOW DOMAIN {};\n", d.name));
        }
        for r in &self.relations {
            script.push_str(&format!("SHOW {0};\nCOUNT {0};\nCHECK {0};\n", r.name));
        }
        script
    }
}

/// One random statement, valid against the model by construction
/// (except where the primary legitimately refuses — see the caller).
fn generate(rng: &mut SmallRng, model: &mut Model) -> String {
    loop {
        match rng.gen_range(0u32..100) {
            // Domain DDL keeps the hierarchy growing.
            0..=3 => {
                let name = model.fresh("D");
                model.domains.push(DomainModel {
                    name: name.clone(),
                    classes: vec![name.clone()],
                    instances: Vec::new(),
                });
                return format!("CREATE DOMAIN {name};");
            }
            4..=14 if !model.domains.is_empty() => {
                let d = rng.gen_range(0..model.domains.len());
                let name = model.fresh("C");
                let parent = {
                    let classes = &model.domains[d].classes;
                    classes[rng.gen_range(0..classes.len())].clone()
                };
                model.domains[d].classes.push(name.clone());
                return format!("CREATE CLASS {name} UNDER {parent};");
            }
            15..=29 if !model.domains.is_empty() => {
                let d = rng.gen_range(0..model.domains.len());
                let name = model.fresh("i");
                let parent = {
                    let classes = &model.domains[d].classes;
                    classes[rng.gen_range(0..classes.len())].clone()
                };
                model.domains[d].instances.push(name.clone());
                return format!("CREATE INSTANCE {name} OF {parent};");
            }
            30..=35 if !model.domains.is_empty() => {
                let name = model.fresh("R");
                let arity = rng.gen_range(1..=2usize);
                let domains: Vec<String> = (0..arity)
                    .map(|_| {
                        model.domains[rng.gen_range(0..model.domains.len())]
                            .name
                            .clone()
                    })
                    .collect();
                let attrs = domains
                    .iter()
                    .enumerate()
                    .map(|(k, d)| format!("A{k}: {d}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                model.relations.push(RelModel {
                    name: name.clone(),
                    domains,
                    stored: Vec::new(),
                });
                return format!("CREATE RELATION {name} ({attrs});");
            }
            36..=38 if model.relations.len() > 2 => {
                let r = model
                    .relations
                    .remove(rng.gen_range(0..model.relations.len()));
                return format!("DROP RELATION {};", r.name);
            }
            // The bulk: tuple-level writes.
            39..=74 if !model.relations.is_empty() => {
                let r = rng.gen_range(0..model.relations.len());
                let values = model.relations[r]
                    .domains
                    .clone()
                    .iter()
                    .map(|d| model.value(rng, d))
                    .collect::<Vec<_>>()
                    .join(", ");
                let negated = if rng.gen_bool(0.25) { "NOT " } else { "" };
                let rel = &mut model.relations[r];
                rel.stored.push(values.clone());
                return format!("ASSERT {negated}{} ({values});", rel.name);
            }
            75..=84 => {
                let candidates: Vec<usize> = model
                    .relations
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.stored.is_empty())
                    .map(|(k, _)| k)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let r = candidates[rng.gen_range(0..candidates.len())];
                let rel = &mut model.relations[r];
                let values = rel.stored.remove(rng.gen_range(0..rel.stored.len()));
                return format!("RETRACT {} ({values});", rel.name);
            }
            85..=90 if !model.relations.is_empty() => {
                let rel = &model.relations[rng.gen_range(0..model.relations.len())];
                let mode = ["OFF-PATH", "ON-PATH", "NONE"][rng.gen_range(0..3usize)];
                return format!("SET PREEMPTION {} {mode};", rel.name);
            }
            // Rollover forcers: an out-of-vocabulary write (implicit
            // checkpoint) and the explicit verb.
            91..=94 if !model.relations.is_empty() => {
                let rel = &model.relations[rng.gen_range(0..model.relations.len())];
                return format!("CONSOLIDATE {};", rel.name);
            }
            95..=96 => return "CHECKPOINT;".to_string(),
            _ => continue,
        }
    }
}

fn temp_store(tag: u64) -> (std::path::PathBuf, String) {
    let dir = std::env::temp_dir().join(format!(
        "hrdm_replica_parity_{tag:x}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let quoted = dir.to_str().unwrap().to_string();
    (dir, quoted)
}

/// Sync the replica and pin byte parity with the primary right now.
fn assert_parity(primary: &Engine, replica: &Replica, model: &Model, at: usize) {
    let shipped = replica.sync().unwrap();
    assert_eq!(
        Some(shipped),
        primary.journal_lsn(),
        "replica drained to a different LSN than the primary journaled (statement {at})"
    );
    let suite = model.read_suite();
    if suite.is_empty() {
        return;
    }
    let expected = primary.execute_read(&suite, 0).unwrap();
    let got = replica.execute_read(&suite, 0).unwrap();
    assert_eq!(
        expected, got,
        "replica diverged from the primary at statement {at} (lsn {shipped})"
    );
    assert!(replica.execute("CREATE DOMAIN Nope;").is_err());
}

#[test]
fn replica_reads_are_byte_identical_across_randomized_histories() {
    let mut statements_total = 0usize;
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut model = Model::default();
        let (dir, dir_str) = temp_store(seed);

        let primary = Engine::new();
        primary
            .execute(&format!("OPEN \"{dir_str}\" SYNC EVERY 1;"))
            .unwrap();
        let replica = Replica::attach(&dir);

        let mut applied = 0usize;
        let mut attempts = 0usize;
        while applied < SCRIPT_LEN {
            attempts += 1;
            assert!(
                attempts < SCRIPT_LEN * 20,
                "generator starved: only {applied} statements applied"
            );
            let stmt = generate(&mut rng, &mut model);
            // The model is optimistic about tuple writes (an ASSERT can
            // legitimately conflict with a stored literal); a refused
            // statement journals nothing, so both sides are unaffected.
            if primary.execute(&stmt).is_err() {
                continue;
            }
            applied += 1;
            if applied.is_multiple_of(SYNC_STRIDE) {
                assert_parity(&primary, &replica, &model, applied);
            }
        }
        assert_parity(&primary, &replica, &model, applied);
        statements_total += applied;

        // A replica attached late sees the same state via a catch-up
        // rollover plus tail replay.
        let late = Replica::attach(&dir);
        assert_eq!(late.sync().unwrap(), replica.shipped_lsn());
        let suite = model.read_suite();
        assert_eq!(
            replica.execute_read(&suite, 0).unwrap(),
            late.execute_read(&suite, 0).unwrap(),
            "late-attach replica diverged (seed {seed:#x})"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        statements_total >= 1000,
        "harness must cover ≥ 1k mutation statements, got {statements_total}"
    );
}
