//! `CONE_LIMIT` is a cost knob, not a semantics knob: a live
//! `CONSOLIDATE` view maintained with cone localization disabled
//! (limit 0 → every delta falls back to recomputation) renders
//! byte-identically to one maintained with localization always on
//! (limit `MAX` → every delta sweeps the preemption cone locally).
//! Own test binary: the knob is process-global.

use hrdm_hql::{Engine, ExecutorHandle};

const BOOTSTRAP: &str = "
    CREATE DOMAIN Animal;
    CREATE CLASS Bird UNDER Animal;
    CREATE CLASS Penguin UNDER Bird;
    CREATE CLASS Emperor UNDER Penguin;
    CREATE INSTANCE Tweety OF Bird;
    CREATE INSTANCE Paul OF Penguin;
    CREATE INSTANCE Pia OF Emperor;
    CREATE RELATION Flies (Creature: Animal);
    ASSERT Flies (ALL Bird);
    ASSERT NOT Flies (ALL Penguin);
    LET Known = CONSOLIDATE Flies;
";

/// Deltas that exercise both directions through the view: inserts and
/// retracts, on-path and off-path of the existing preemption chain.
const MUTATIONS: [&str; 6] = [
    "ASSERT Flies (ALL Emperor);",
    "CREATE INSTANCE Pablo OF Penguin;",
    "ASSERT NOT Flies (Tweety);",
    "RETRACT Flies (ALL Emperor);",
    "CREATE CLASS Kiwi UNDER Bird; ASSERT NOT Flies (ALL Kiwi);",
    "RETRACT Flies (Tweety);",
];

const READS: &str =
    "SHOW Known;\nCOUNT Known;\nCHECK Known;\nSHOW Flies;\nHOLDS Known (Paul);\nHOLDS Known (Pia);";

/// Run the whole script under one cone limit, capturing the rendered
/// read suite after every mutation.
fn run_under(limit: usize) -> Vec<Vec<String>> {
    let engine = Engine::new();
    engine.set_cone_limit(limit);
    assert_eq!(engine.cone_limit(), limit);
    engine.execute(BOOTSTRAP).unwrap();
    MUTATIONS
        .iter()
        .map(|m| {
            engine.execute(m).unwrap();
            engine.execute_read(READS, 0).unwrap()
        })
        .collect()
}

#[test]
fn both_sides_of_the_cutoff_render_byte_identically() {
    // limit 0: the localized sweep never fires (everything recomputes).
    let recomputed = run_under(0);
    // limit MAX: the localized sweep always fires.
    let localized = run_under(usize::MAX);
    for (step, (a, b)) in recomputed.iter().zip(&localized).enumerate() {
        assert_eq!(
            a, b,
            "cone localization changed results after mutation #{step} ({:?})",
            MUTATIONS[step]
        );
    }
}
