//! Session fuzz: random statement sequences over a seeded world must
//! never panic, and successful mutations must leave the session in a
//! queryable state.

use proptest::prelude::*;

use hrdm_hql::Session;

const CLASSES: &[&str] = &["Bird", "Penguin", "Fish", "Mammal"];
const INSTANCES: &[&str] = &["tweety", "paul", "nemo", "rex"];
const RELATIONS: &[&str] = &["R", "S"];

fn seeded_session() -> Session {
    let mut s = Session::new();
    s.execute(
        r#"
        CREATE DOMAIN D;
        CREATE CLASS Bird UNDER D;
        CREATE CLASS Penguin UNDER Bird;
        CREATE CLASS Fish UNDER D;
        CREATE CLASS Mammal UNDER D;
        CREATE INSTANCE tweety OF Bird;
        CREATE INSTANCE paul OF Penguin;
        CREATE INSTANCE nemo OF Fish;
        CREATE INSTANCE rex OF Mammal;
        CREATE RELATION R (V: D);
        CREATE RELATION S (V: D);
        "#,
    )
    .expect("seed script");
    s
}

/// One random statement: a mix of valid and deliberately invalid
/// inputs.
fn arb_command() -> impl Strategy<Value = String> {
    let name = prop::sample::select(
        CLASSES
            .iter()
            .chain(INSTANCES)
            .chain(&["Nonexistent", "D"]) // sometimes bogus / root
            .copied()
            .collect::<Vec<_>>(),
    );
    let rel = prop::sample::select(
        RELATIONS
            .iter()
            .chain(&["Missing"])
            .copied()
            .collect::<Vec<_>>(),
    );
    (rel, name, any::<u8>()).prop_map(|(rel, name, op)| match op % 10 {
        0 => format!("ASSERT {rel} (ALL {name});"),
        1 => format!("ASSERT NOT {rel} (ALL {name});"),
        2 => format!("RETRACT {rel} ({name});"),
        3 => format!("HOLDS {rel} ({name});"),
        4 => format!("WHY {rel} ({name});"),
        5 => format!("CHECK {rel};"),
        6 => format!("CONSOLIDATE {rel};"),
        7 => format!("COUNT {rel};"),
        8 => format!("SHOW {rel};"),
        _ => format!("LET X{op} = SELECT {rel} WHERE V IS ALL {name};"),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_sessions_never_panic(commands in prop::collection::vec(arb_command(), 1..25)) {
        let mut s = seeded_session();
        for cmd in &commands {
            // Errors are fine (contradictions, unknown names, duplicate
            // LET bindings); panics are not.
            let _ = s.execute(cmd);
        }
        // The session remains usable afterwards.
        let out = s.execute("HOLDS R (tweety);");
        prop_assert!(out.is_ok());
    }

    #[test]
    fn successful_asserts_are_visible(class in prop::sample::select(CLASSES.to_vec())) {
        let mut s = seeded_session();
        s.execute(&format!("ASSERT R (ALL {class});")).unwrap();
        // Some instance under the class must now hold.
        let member = match class {
            "Bird" => "tweety",
            "Penguin" => "paul",
            "Fish" => "nemo",
            _ => "rex",
        };
        let out = s.execute(&format!("HOLDS R ({member});")).unwrap();
        prop_assert!(out[0].to_string().contains("true"), "{}", out[0]);
    }
}
