//! Concurrent-session parity: K reader threads race one writer on a
//! shared [`Engine`], and every response any reader ever sees must be
//! **byte-identical** to the response the same query gets against some
//! serial prefix of the write history.
//!
//! The proof obligation comes straight from the engine's snapshot
//! protocol: each write publishes exactly one epoch under the writer
//! lock, so epoch `base + i` *is* the state after the first `i` writes.
//! A reader brackets each query with two epoch loads; the serving
//! snapshot's prefix lies in that window, so the response must equal
//! one of the precomputed serial responses for the window.

use hrdm_hql::Engine;

/// The Fig. 1 world (16 statements — epochs 1..=16 on a fresh engine).
const BOOTSTRAP: &str = r#"
    CREATE DOMAIN Animal;
    CREATE CLASS Bird UNDER Animal;
    CREATE CLASS Canary UNDER Bird;
    CREATE CLASS Penguin UNDER Bird;
    CREATE CLASS "Galapagos Penguin" UNDER Penguin;
    CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
    CREATE INSTANCE Tweety OF Canary;
    CREATE INSTANCE Paul OF "Galapagos Penguin";
    CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
    CREATE INSTANCE Pamela OF "Amazing Flying Penguin";
    CREATE INSTANCE Peter OF "Amazing Flying Penguin";
    CREATE RELATION Flies (Creature: Animal);
    ASSERT Flies (ALL Bird);
    ASSERT NOT Flies (ALL Penguin);
    ASSERT Flies (ALL "Amazing Flying Penguin");
    ASSERT Flies (Peter);
    "#;

/// The write history: one statement per epoch, deterministic.
fn writes() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..10 {
        out.push(format!("CREATE INSTANCE P{i} OF Penguin;"));
        out.push(format!("ASSERT Flies (P{i});"));
    }
    out
}

/// Read-only statements with deterministic renderings. Several name
/// instances that only exist after some prefix, so readers exercise
/// the existence transition too (the error rendering is part of the
/// parity contract).
fn queries() -> Vec<&'static str> {
    vec![
        "HOLDS Flies (Tweety);",
        "HOLDS Flies (Paul);",
        "HOLDS Flies (Patricia);",
        "COUNT Flies;",
        "CHECK Flies;",
        "SHOW Flies;",
        "HOLDS Flies (P0);",
        "HOLDS Flies (P4);",
        "HOLDS Flies (P9);",
        "COUNT Flies BY Creature;",
    ]
}

/// Render a query result the way a serving layer would: the response's
/// display form, or a stable error line.
fn rendered(engine: &Engine, q: &str) -> String {
    match engine.execute(q) {
        Ok(mut rs) => rs.remove(0).to_string(),
        Err(e) => format!("ERR {} {e}", e.kind()),
    }
}

#[test]
fn concurrent_readers_see_only_serial_prefixes() {
    let writes = writes();
    let queries = queries();

    // Serially precompute expected[i][q]: the response to query q after
    // the bootstrap plus the first i writes.
    let mut expected: Vec<Vec<String>> = Vec::with_capacity(writes.len() + 1);
    {
        let engine = Engine::new();
        engine.execute(BOOTSTRAP).unwrap();
        expected.push(queries.iter().map(|q| rendered(&engine, q)).collect());
        for w in &writes {
            engine.execute(w).unwrap();
            expected.push(queries.iter().map(|q| rendered(&engine, q)).collect());
        }
    }

    let engine = Engine::new();
    engine.execute(BOOTSTRAP).unwrap();
    let base_epoch = engine.epoch();
    let w_total = writes.len() as u64;

    std::thread::scope(|s| {
        let eng = &engine;
        let writes = &writes;
        let queries = &queries;
        let expected = &expected;
        s.spawn(move || {
            for w in writes {
                eng.execute(w).unwrap();
                std::thread::yield_now();
            }
        });
        for reader in 0..8u64 {
            s.spawn(move || {
                // Deterministic per-thread xorshift; no RNG dependency.
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (reader + 1);
                let mut last_epoch = 0u64;
                for _ in 0..200 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let qi = (state % queries.len() as u64) as usize;
                    let e0 = eng.epoch();
                    let resp = rendered(eng, queries[qi]);
                    let e1 = eng.epoch();
                    assert!(e1 >= e0, "epochs are monotone");
                    assert!(e0 >= last_epoch, "epochs never run backwards");
                    last_epoch = e0;
                    // The serving snapshot was published somewhere in
                    // [e0, e1]; its write prefix must explain the bytes.
                    let lo = e0.saturating_sub(base_epoch).min(w_total) as usize;
                    let hi = e1.saturating_sub(base_epoch).min(w_total) as usize;
                    let matches_a_prefix = (lo..=hi).any(|i| expected[i][qi] == resp);
                    assert!(
                        matches_a_prefix,
                        "response to {:?} matches no serial prefix in [{lo}, {hi}]:\n{resp}",
                        queries[qi]
                    );
                }
            });
        }
    });

    // Every write published exactly one epoch, and the final state is
    // byte-identical to the full serial replay.
    assert_eq!(engine.epoch(), base_epoch + w_total);
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(rendered(&engine, q), expected[writes.len()][qi]);
    }
}

#[test]
fn a_reader_holding_a_snapshot_is_immune_to_later_writes() {
    let engine = Engine::new();
    engine.execute(BOOTSTRAP).unwrap();
    let snap = engine.snapshot();
    let before = snap.relation("Flies").unwrap().len();
    for w in writes() {
        engine.execute(&w).unwrap();
    }
    // The old snapshot still answers from its own epoch.
    assert_eq!(snap.relation("Flies").unwrap().len(), before);
    assert!(snap.relation("Flies").unwrap().schema().arity() == 1);
    assert!(engine.snapshot().relation("Flies").unwrap().len() > before);
}
