//! Parser fuzzing: random statements must survive a
//! display → parse round trip unchanged.

use proptest::prelude::*;

use hrdm_hql::ast::{Derivation, Source, Statement, ValueRef};
use hrdm_hql::parser::parse;

/// Names exercise bare words, digits-only words, hyphens, spaces, and
/// quotes.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[A-Za-z][A-Za-z0-9_]{0,8}",
        "[0-9]{1,4}",
        "[A-Za-z]{1,4}-[A-Za-z]{1,4}",
        "[A-Za-z]{1,5} [A-Za-z]{1,5}",
        Just("Amazing Flying Penguin".to_string()),
        Just("say \"hi\"".to_string()),
        Just("ALL".to_string()), // keyword-looking name must be quoted
    ]
}

fn arb_value() -> impl Strategy<Value = ValueRef> {
    (arb_name(), any::<bool>()).prop_map(|(name, all)| ValueRef { name, all })
}

fn arb_values() -> impl Strategy<Value = Vec<ValueRef>> {
    prop::collection::vec(arb_value(), 1..4)
}

fn arb_names() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_name(), 1..4)
}

/// Operands: mostly plain names, with nested derivations down to a
/// bounded depth so parenthesized compositions round-trip too.
fn arb_source(depth: u32) -> BoxedStrategy<Source> {
    if depth == 0 {
        arb_name().prop_map(Source::Named).boxed()
    } else {
        prop_oneof![
            arb_name().prop_map(Source::Named),
            arb_name().prop_map(Source::Named),
            arb_derivation_depth(depth - 1).prop_map(|d| Source::Derived(Box::new(d))),
        ]
        .boxed()
    }
}

fn arb_derivation_depth(depth: u32) -> BoxedStrategy<Derivation> {
    prop_oneof![
        (arb_source(depth), arb_source(depth)).prop_map(|(a, b)| Derivation::Union(a, b)),
        (arb_source(depth), arb_source(depth)).prop_map(|(a, b)| Derivation::Intersect(a, b)),
        (arb_source(depth), arb_source(depth)).prop_map(|(a, b)| Derivation::Difference(a, b)),
        (arb_source(depth), arb_source(depth)).prop_map(|(a, b)| Derivation::Join(a, b)),
        (arb_source(depth), arb_names()).prop_map(|(a, ns)| Derivation::Project(a, ns)),
        (
            arb_source(depth),
            prop::collection::vec((arb_name(), arb_value()), 1..3)
        )
            .prop_map(|(a, cs)| Derivation::Select(a, cs)),
        arb_source(depth).prop_map(Derivation::Consolidated),
        (arb_source(depth), prop::collection::vec(arb_name(), 0..3))
            .prop_map(|(a, ns)| Derivation::Explicated(a, ns)),
    ]
    .boxed()
}

fn arb_derivation() -> impl Strategy<Value = Derivation> {
    arb_derivation_depth(2)
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        arb_name().prop_map(|name| Statement::CreateDomain { name }),
        (arb_name(), arb_names())
            .prop_map(|(name, parents)| Statement::CreateClass { name, parents }),
        (arb_name(), arb_names())
            .prop_map(|(name, parents)| Statement::CreateInstance { name, parents }),
        (arb_name(), arb_name(), arb_name()).prop_map(|(stronger, weaker, domain)| {
            Statement::Prefer {
                stronger,
                weaker,
                domain,
            }
        }),
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_name()), 1..4)
        )
            .prop_map(|(name, attributes)| Statement::CreateRelation { name, attributes }),
        (arb_name(), any::<bool>(), arb_values()).prop_map(|(relation, negated, values)| {
            Statement::Assert {
                relation,
                negated,
                values,
            }
        }),
        (arb_name(), arb_values())
            .prop_map(|(relation, values)| Statement::Retract { relation, values }),
        (arb_name(), arb_values())
            .prop_map(|(relation, values)| Statement::Holds { relation, values }),
        (arb_name(), arb_values())
            .prop_map(|(relation, values)| Statement::Why { relation, values }),
        (arb_name(), arb_values())
            .prop_map(|(relation, values)| Statement::Holds3 { relation, values }),
        arb_name().prop_map(|relation| Statement::Check { relation }),
        arb_name().prop_map(|relation| Statement::Show { relation }),
        arb_name().prop_map(|name| Statement::ShowDomain { name }),
        arb_name().prop_map(|relation| Statement::Consolidate { relation }),
        (arb_name(), prop::collection::vec(arb_name(), 0..3))
            .prop_map(|(relation, attrs)| Statement::Explicate { relation, attrs }),
        (
            arb_name(),
            prop::sample::select(vec!["OFF-PATH", "ON-PATH", "NONE"])
        )
            .prop_map(|(relation, mode)| Statement::SetPreemption {
                relation,
                mode: mode.to_string(),
            }),
        (arb_name(), prop::option::of(arb_name()))
            .prop_map(|(relation, by)| Statement::Count { relation, by }),
        arb_name().prop_map(|path| Statement::Save { path }),
        arb_name().prop_map(|path| Statement::Load { path }),
        (arb_name(), arb_derivation())
            .prop_map(|(name, derivation)| Statement::Let { name, derivation }),
        arb_derivation().prop_map(|derivation| Statement::Explain { derivation }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_round_trips(stmt in arb_statement()) {
        let rendered = stmt.to_string();
        let parsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
        prop_assert_eq!(parsed.len(), 1, "rendered {}", rendered);
        prop_assert_eq!(&parsed[0], &stmt, "rendered {}", rendered);
    }

    #[test]
    fn scripts_of_many_statements_round_trip(
        stmts in prop::collection::vec(arb_statement(), 1..6)
    ) {
        let script: String = stmts
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse(&script).expect("rendered scripts parse");
        prop_assert_eq!(parsed, stmts);
    }
}
