//! Sharded-coordinator integration: byte parity with the single
//! engine, cross-shard relation migration, the `DROP DOMAIN` in-use
//! guard through the coordinator, and writes racing scatter-gather
//! reads under the epoch floor.

use std::sync::Arc;

use hrdm_hql::{default_shard, Engine, ExecutorHandle, ShardedEngine};

/// Fig. 1-flavored fixture spanning two domains and two relations.
const BOOTSTRAP: &str = "
    CREATE DOMAIN Animal;
    CREATE CLASS Bird UNDER Animal;
    CREATE CLASS Penguin UNDER Bird;
    CREATE INSTANCE Tweety OF Bird;
    CREATE INSTANCE Paul OF Penguin;
    CREATE DOMAIN Color;
    CREATE CLASS Dark UNDER Color;
    CREATE INSTANCE Black OF Dark;
    CREATE RELATION Flies (Creature: Animal);
    ASSERT Flies (ALL Bird);
    ASSERT NOT Flies (ALL Penguin);
    CREATE RELATION Colors (Creature: Animal, Hue: Color);
    ASSERT Colors (ALL Penguin, Black);
";

const READ_SUITE: &str = "
    HOLDS Flies (Tweety);
    HOLDS Flies (Paul);
    SHOW Flies;
    COUNT Flies;
    CHECK Flies;
    WHY Flies (Paul);
    SHOW Colors;
    COUNT Colors BY Creature;
    SHOW DOMAIN Animal;
";

#[test]
fn sharded_coordinator_is_byte_identical_to_the_single_engine() {
    for shards in [1, 2, 4] {
        let single = Engine::new();
        let sharded = ShardedEngine::new(shards);
        let a = single.execute(BOOTSTRAP).unwrap();
        let b = ExecutorHandle::execute(&sharded, BOOTSTRAP).unwrap();
        let rendered: Vec<String> = a.iter().map(ToString::to_string).collect();
        assert_eq!(rendered, b, "write responses diverged at {shards} shards");

        let a = ExecutorHandle::execute_read(&single, READ_SUITE, 0).unwrap();
        let b = sharded.execute_read(READ_SUITE, 0).unwrap();
        assert_eq!(a, b, "read responses diverged at {shards} shards");
    }
}

#[test]
fn statement_errors_keep_their_stable_kinds_through_the_coordinator() {
    let sharded = ShardedEngine::new(3);
    sharded.execute(BOOTSTRAP).unwrap();
    let cases = [
        ("CREATE DOMAIN Animal;", "duplicate"),
        ("CREATE RELATION Flies (X: Animal);", "duplicate"),
        ("SHOW Nothing;", "unknown"),
        ("ASSERT Nothing (Tweety);", "unknown"),
        ("DROP DOMAIN Missing;", "unknown"),
        ("OPEN \"/tmp/nope\";", "unsupported"),
        ("CHECKPOINT;", "unsupported"),
        ("SAVE \"/tmp/nope.img\";", "unsupported"),
        ("HOLDS Flies (Tweety;", "parse"),
    ];
    for (script, kind) in cases {
        let e = sharded.execute(script).unwrap_err();
        assert_eq!(e.kind(), kind, "script {script:?}");
    }
    // A mutating script through the read path is refused up front.
    let e = sharded
        .execute_read("ASSERT Flies (Tweety);", 0)
        .unwrap_err();
    assert_eq!(e.kind(), "unsupported");
    let e = sharded.execute_read(READ_SUITE, u64::MAX).unwrap_err();
    assert_eq!(e.kind(), "stale");
}

/// A relation name whose default placement differs from `from`'s under
/// `shards` shards — guaranteed to exist for any shard count > 1.
fn name_on_another_shard(from: &str, shards: usize) -> String {
    let src = default_shard(from, shards);
    (0..)
        .map(|i| format!("Migrated{i}"))
        .find(|c| default_shard(c, shards) != src)
        .expect("unbounded candidate stream")
}

#[test]
fn rename_migrates_a_relation_across_shards() {
    let shards = 3;
    let sharded = ShardedEngine::new(shards);
    sharded.execute(BOOTSTRAP).unwrap();
    let to = name_on_another_shard("Flies", shards);
    let src = sharded.owner_of("Flies");

    let out = sharded
        .execute(&format!("RENAME RELATION Flies TO {to};"))
        .unwrap();
    assert_eq!(out, vec![format!("relation Flies renamed to {to}")]);
    let dst = sharded.owner_of(&to);
    assert_ne!(src, dst, "the new name hashes to a different shard");
    assert_eq!(sharded.route_of(&to), Some(dst));
    assert_eq!(sharded.route_of("Flies"), None);

    // The migrated relation answers byte-identically to a single
    // engine that performed the same rename.
    let single = Engine::new();
    single.execute(BOOTSTRAP).unwrap();
    single
        .execute(&format!("RENAME RELATION Flies TO {to};"))
        .unwrap();
    let reads =
        format!("HOLDS {to} (Tweety);\nHOLDS {to} (Paul);\nSHOW {to};\nCOUNT {to};\nCHECK {to};");
    let a = ExecutorHandle::execute_read(&single, &reads, 0).unwrap();
    let b = sharded.execute_read(&reads, 0).unwrap();
    assert_eq!(a, b, "migrated relation diverged from the single engine");

    // The old name is gone everywhere.
    let e = sharded.execute_read("SHOW Flies;", 0).unwrap_err();
    assert_eq!(e.kind(), "unknown");
    // Writes keep following the moved relation.
    sharded
        .execute(&format!(
            "CREATE INSTANCE Pia OF Penguin; ASSERT {to} (Pia);"
        ))
        .unwrap();
    let out = sharded
        .execute_read(&format!("HOLDS {to} (Pia);"), 0)
        .unwrap();
    assert!(out[0].ends_with("true"), "{:?}", out[0]);
}

#[test]
fn rename_to_an_existing_name_fails_without_losing_the_source() {
    let shards = 4;
    let sharded = ShardedEngine::new(shards);
    sharded.execute(BOOTSTRAP).unwrap();
    let e = sharded
        .execute("RENAME RELATION Flies TO Colors;")
        .unwrap_err();
    assert_eq!(e.kind(), "duplicate");
    // Both relations still answer.
    sharded
        .execute_read("COUNT Flies; COUNT Colors;", 0)
        .unwrap();
}

#[test]
fn drop_domain_in_use_guard_sees_every_shard() {
    let shards = 4;
    let sharded = ShardedEngine::new(shards);
    sharded.execute(BOOTSTRAP).unwrap();

    // Color is referenced only by Colors, wherever that shard is.
    let e = sharded.execute("DROP DOMAIN Color;").unwrap_err();
    assert_eq!(e.kind(), "in-use");
    assert!(e.message().contains("Colors"), "{}", e.message());
    // The failed probe must not have half-dropped the domain anywhere.
    for shard in sharded.shards() {
        shard.execute("SHOW DOMAIN Color;").unwrap();
    }

    sharded.execute("DROP RELATION Colors;").unwrap();
    let out = sharded.execute("DROP DOMAIN Color;").unwrap();
    assert_eq!(out, vec!["domain Color dropped".to_string()]);
    // And now it is gone from every shard.
    for shard in sharded.shards() {
        assert!(shard.execute("SHOW DOMAIN Color;").is_err());
    }
}

/// Extract `n` from `"<rel> has <n> atom(s) in its extension"`.
fn count_of(rendered: &str) -> u64 {
    rendered
        .split_whitespace()
        .nth(2)
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable COUNT response {rendered:?}"))
}

#[test]
fn writes_racing_scatter_gather_reads_respect_the_epoch_floor() {
    let sharded = Arc::new(ShardedEngine::new(4));
    sharded.execute(BOOTSTRAP).unwrap();
    let baseline = count_of(&sharded.execute_read("COUNT Flies;", 0).unwrap()[0]);

    const WRITES: u64 = 40;
    let writer = {
        let sharded = Arc::clone(&sharded);
        std::thread::spawn(move || {
            for i in 0..WRITES {
                // A broadcast DDL write and a routed row write per turn.
                sharded
                    .execute(&format!(
                        "CREATE INSTANCE Racer{i} OF Bird; ASSERT Flies (Racer{i});"
                    ))
                    .unwrap();
            }
        })
    };

    // Racing reader: every read pinned at the coordinator's current
    // epoch must observe a cardinality at least as large as any earlier
    // pinned read — the floor forbids going back in time.
    let mut last = baseline;
    loop {
        let epoch = sharded.last_epoch().unwrap();
        let out = sharded.execute_read("COUNT Flies;", epoch).unwrap();
        let n = count_of(&out[0]);
        assert!(n >= last, "cardinality went backwards: {n} < {last}");
        last = n;
        if n >= baseline + WRITES {
            break;
        }
        std::thread::yield_now();
    }
    writer.join().unwrap();

    // Program order through the coordinator: a write followed by a
    // floor-pinned read always observes itself.
    sharded
        .execute("CREATE INSTANCE Last OF Penguin; ASSERT NOT Flies (Last);")
        .unwrap();
    let epoch = sharded.last_epoch().unwrap();
    let out = sharded.execute_read("HOLDS Flies (Last);", epoch).unwrap();
    assert!(out[0].ends_with("false"), "{:?}", out[0]);
}

#[test]
fn let_views_colocate_and_cross_shard_derivations_are_refused() {
    let shards = 4;
    let sharded = ShardedEngine::new(shards);
    sharded.execute(BOOTSTRAP).unwrap();

    // A view over one source lands on that source's shard.
    sharded
        .execute("LET Grounded = DIFFERENCE Flies Flies;")
        .unwrap();
    assert_eq!(
        sharded.route_of("Grounded"),
        Some(sharded.owner_of("Flies"))
    );
    let single = Engine::new();
    single.execute(BOOTSTRAP).unwrap();
    single
        .execute("LET Grounded = DIFFERENCE Flies Flies;")
        .unwrap();
    assert_eq!(
        ExecutorHandle::execute_read(&single, "SHOW Grounded;", 0).unwrap(),
        sharded.execute_read("SHOW Grounded;", 0).unwrap()
    );

    // Find two relations the hash separates, then ask for a join.
    let other = name_on_another_shard("Flies", shards);
    sharded
        .execute(&format!("CREATE RELATION {other} (Creature: Animal);"))
        .unwrap();
    let e = sharded
        .execute(&format!("LET Wide = JOIN Flies {other};"))
        .unwrap_err();
    assert_eq!(e.kind(), "unsupported");
    assert!(
        sharded.route_of("Wide").is_none(),
        "failed LET left a route"
    );
}

#[test]
fn probe_reports_the_coordinator_epoch_shape() {
    let sharded = ShardedEngine::new(2);
    sharded.execute(BOOTSTRAP).unwrap();
    let probe = sharded.probe().unwrap();
    let first = probe.lines().next().unwrap();
    let epoch: u64 = first.strip_prefix("epoch: ").unwrap().parse().unwrap();
    assert_eq!(epoch, sharded.last_epoch().unwrap());
    assert!(probe.contains("shards: 2"));
    assert!(probe.contains("shard-0-epoch: "));
    assert!(probe.contains("shard-1-epoch: "));
}
