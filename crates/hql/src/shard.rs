//! A single-process sharded coordinator over N engine shards.
//!
//! [`ShardedEngine`] hash-partitions the catalog by **relation name**
//! ([`default_shard`]) across N in-process [`Engine`] shards, while
//! staying **domain-subtree aware**: domain hierarchies are replicated
//! to every shard (domain DDL — `CREATE DOMAIN`/`CLASS`/`INSTANCE`,
//! `PREFER`, `DROP DOMAIN` — broadcasts), so the name-hash partition
//! never splits a domain's subsumption structure and any relation can
//! resolve its values on whichever shard owns it.
//!
//! * **Reads scatter-gather**: each read statement routes to its owning
//!   shard's epoch-floor-checked [`ReadView`] and the responses are
//!   gathered in statement order.
//! * **Writes route**: relation-scoped writes go to the owning shard;
//!   `LET` lands on the (single) shard holding all its sources;
//!   `RENAME RELATION` migrates the relation when the name hash moves
//!   it to a different shard.
//! * **Errors merge** under the existing stable wire codes: a shard's
//!   [`HqlError::kind`](crate::HqlError::kind) crosses the coordinator
//!   unchanged as an [`ExecError`].
//!
//! The coordinator keeps a per-shard **epoch floor**, advanced after
//! every write it routes; reads pin a view at or above the floor, so a
//! read that program-order follows a write through this coordinator
//! always observes it, even while other statements race.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, RwLock};

use hrdm_core::prelude::*;

use crate::ast::{Derivation, Source, Statement, ValueRef};
use crate::engine::{Engine, ReadView};
use crate::error::HqlError;
use crate::exec::Response;
use crate::executor::{ExecError, ExecResult, ExecutorHandle};
use crate::parser::parse;

/// The default placement of a relation name: FNV-1a over the name,
/// modulo the shard count. Routing-table entries (tracking `LET`
/// colocations and `RENAME` moves) override it.
pub fn default_shard(relation: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in relation.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// The relation a statement is scoped to, when it names exactly one
/// (derivation-bearing statements route by their source set instead).
pub fn statement_relation(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::CreateRelation { name, .. } | Statement::DropRelation { name } => Some(name),
        Statement::Assert { relation, .. }
        | Statement::Retract { relation, .. }
        | Statement::Holds { relation, .. }
        | Statement::Holds3 { relation, .. }
        | Statement::Why { relation, .. }
        | Statement::Check { relation }
        | Statement::Show { relation }
        | Statement::Consolidate { relation }
        | Statement::Explicate { relation, .. }
        | Statement::SetPreemption { relation, .. }
        | Statement::Count { relation, .. } => Some(relation),
        _ => None,
    }
}

/// Collect the named base relations a derivation scans (recursing into
/// nested derivations).
pub fn derivation_sources(derivation: &Derivation, out: &mut BTreeSet<String>) {
    let mut source = |s: &Source| match s {
        Source::Named(name) => {
            out.insert(name.clone());
        }
        Source::Derived(inner) => derivation_sources(inner, out),
    };
    match derivation {
        Derivation::Union(a, b)
        | Derivation::Intersect(a, b)
        | Derivation::Difference(a, b)
        | Derivation::Join(a, b) => {
            source(a);
            source(b);
        }
        Derivation::Project(a, _)
        | Derivation::Select(a, _)
        | Derivation::Consolidated(a)
        | Derivation::Explicated(a, _) => source(a),
    }
}

/// Routing state: the authoritative relation→shard map plus the
/// per-shard epoch floors of writes routed through this coordinator.
struct Routing {
    routes: BTreeMap<String, usize>,
    floors: Vec<u64>,
}

/// A coordinator that partitions one logical catalog across N
/// in-process engine shards behind the same [`ExecutorHandle`] surface
/// as a single [`Engine`]. See the module docs for the routing rules.
///
/// Statements that are inherently whole-catalog (`SAVE`, `LOAD`,
/// `OPEN`, `CHECKPOINT`) report kind `"unsupported"` through the
/// coordinator — durability composes per shard instead (each shard
/// engine can be `OPEN`ed individually before serving).
pub struct ShardedEngine {
    shards: Vec<Engine>,
    routing: RwLock<Routing>,
    /// Serializes route-changing DDL (broadcasts, create/drop/rename
    /// relation) so a `DROP DOMAIN` probe can't race a `CREATE
    /// RELATION` into an inconsistent cross-shard state. Row writes
    /// (`ASSERT`, …) do not take it.
    ddl: Mutex<()>,
}

impl ShardedEngine {
    /// A coordinator over `shards` fresh, empty engine shards (at
    /// least one).
    pub fn new(shards: usize) -> ShardedEngine {
        let n = shards.max(1);
        ShardedEngine {
            shards: (0..n).map(|_| Engine::new()).collect(),
            routing: RwLock::new(Routing {
                routes: BTreeMap::new(),
                floors: vec![0; n],
            }),
            ddl: Mutex::new(()),
        }
    }

    /// The shard engines, in shard order — e.g. to put each behind its
    /// own `hrdm-server` event loop.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard currently owning `relation`: its routing-table entry
    /// if the coordinator placed it, the name hash otherwise.
    pub fn owner_of(&self, relation: &str) -> usize {
        let routing = self.routing.read().expect("routing lock poisoned");
        routing
            .routes
            .get(relation)
            .copied()
            .unwrap_or_else(|| default_shard(relation, self.shards.len()))
    }

    /// The routing-table entry for `relation`, if the coordinator has
    /// placed it (created, `LET`-bound, or renamed through here).
    pub fn route_of(&self, relation: &str) -> Option<usize> {
        let routing = self.routing.read().expect("routing lock poisoned");
        routing.routes.get(relation).copied()
    }

    /// The coordinator epoch: the sum of all shard epochs (monotone —
    /// every routed or broadcast write advances it by at least one).
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(Engine::epoch).sum()
    }

    /// Execute one statement on shard `k` and advance its epoch floor.
    fn exec_on(&self, k: usize, stmt: Statement) -> ExecResult<Response> {
        let response = self.shards[k].execute_statement(stmt)?;
        let mut routing = self.routing.write().expect("routing lock poisoned");
        let epoch = self.shards[k].epoch();
        if routing.floors[k] < epoch {
            routing.floors[k] = epoch;
        }
        Ok(response)
    }

    /// Pin a read view on shard `k` at or above its epoch floor.
    ///
    /// The floor is recorded *after* a routed write publishes, so a
    /// freshly loaded view can never be below it; the loop is the
    /// belt-and-braces form of that argument.
    fn floor_view(&self, k: usize) -> ReadView {
        let floor = self.routing.read().expect("routing lock poisoned").floors[k];
        loop {
            let view = self.shards[k].read_view();
            if view.epoch() >= floor {
                return view;
            }
            std::thread::yield_now();
        }
    }

    /// The single shard holding **all** of a derivation's sources.
    /// Cross-shard derivations are not evaluated in this PR; colocate
    /// the sources (they hash together or were `LET` on one shard) or
    /// run the derivation against one shard engine directly.
    fn single_shard_of(&self, derivation: &Derivation) -> ExecResult<usize> {
        let mut sources = BTreeSet::new();
        derivation_sources(derivation, &mut sources);
        let shards: BTreeSet<usize> = sources.iter().map(|s| self.owner_of(s)).collect();
        match shards.len() {
            0 => Err(ExecError::new("unsupported", "derivation has no sources")),
            1 => Ok(shards.into_iter().next().expect("len checked")),
            _ => Err(ExecError::new(
                "unsupported",
                format!(
                    "derivation spans shards {shards:?} (sources {sources:?}); \
                     cross-shard derivations are not supported"
                ),
            )),
        }
    }

    /// Apply a domain-scoped statement to every shard. Shard 0 goes
    /// first: since domain state is identical on every shard by
    /// induction, its verdict is the statement's verdict, and a failure
    /// there leaves all shards untouched. The caller holds the DDL
    /// lock.
    fn broadcast_locked(&self, stmt: Statement) -> ExecResult<Response> {
        let response = self.exec_on(0, stmt.clone())?;
        for k in 1..self.shards.len() {
            self.exec_on(k, stmt.clone()).map_err(|e| {
                ExecError::new(
                    "execution",
                    format!("shard {k} diverged on broadcast of `{stmt}`: {e}"),
                )
            })?;
        }
        Ok(response)
    }

    fn run_write(&self, stmt: Statement) -> ExecResult<Response> {
        match stmt {
            Statement::CreateDomain { .. }
            | Statement::CreateClass { .. }
            | Statement::CreateInstance { .. }
            | Statement::Prefer { .. } => {
                let _ddl = self.ddl.lock().expect("ddl lock poisoned");
                self.broadcast_locked(stmt)
            }
            Statement::DropDomain { name } => {
                let _ddl = self.ddl.lock().expect("ddl lock poisoned");
                // The InUse guard must see every shard's relations, not
                // just one's: probe all snapshots before broadcasting.
                for shard in &self.shards {
                    if let Some(by) = shard.snapshot().domain_user(&name) {
                        return Err(HqlError::Core(CoreError::InUse {
                            kind: "domain",
                            name: name.clone(),
                            by,
                        })
                        .into());
                    }
                }
                self.broadcast_locked(Statement::DropDomain { name })
            }
            Statement::CreateRelation { name, attributes } => {
                let _ddl = self.ddl.lock().expect("ddl lock poisoned");
                let k = default_shard(&name, self.shards.len());
                let response = self.exec_on(
                    k,
                    Statement::CreateRelation {
                        name: name.clone(),
                        attributes,
                    },
                )?;
                let mut routing = self.routing.write().expect("routing lock poisoned");
                routing.routes.insert(name, k);
                Ok(response)
            }
            Statement::DropRelation { name } => {
                let _ddl = self.ddl.lock().expect("ddl lock poisoned");
                let k = self.owner_of(&name);
                let response = self.exec_on(k, Statement::DropRelation { name: name.clone() })?;
                let mut routing = self.routing.write().expect("routing lock poisoned");
                routing.routes.remove(&name);
                Ok(response)
            }
            Statement::RenameRelation { from, to } => self.rename(from, to),
            Statement::Let { name, derivation } => {
                let _ddl = self.ddl.lock().expect("ddl lock poisoned");
                let k = self.single_shard_of(&derivation)?;
                let response = self.exec_on(
                    k,
                    Statement::Let {
                        name: name.clone(),
                        derivation,
                    },
                )?;
                let mut routing = self.routing.write().expect("routing lock poisoned");
                routing.routes.insert(name, k);
                Ok(response)
            }
            Statement::Load { .. } | Statement::Open { .. } | Statement::Checkpoint => {
                Err(ExecError::new(
                    "unsupported",
                    format!(
                        "`{}` is whole-catalog; it does not route through a sharded \
                         coordinator (open each shard engine individually)",
                        stmt.kind_keyword()
                    ),
                ))
            }
            other => {
                // Relation-scoped row writes: ASSERT, RETRACT,
                // CONSOLIDATE, EXPLICATE, SET PREEMPTION.
                let relation = statement_relation(&other)
                    .expect("all remaining write statements are relation-scoped")
                    .to_string();
                self.exec_on(self.owner_of(&relation), other)
            }
        }
    }

    fn run_read(&self, stmt: Statement) -> ExecResult<Response> {
        let k = match &stmt {
            Statement::ShowDomain { .. } => 0, // domains are on every shard
            Statement::Explain { derivation } | Statement::Trace { derivation } => {
                self.single_shard_of(derivation)?
            }
            Statement::Save { .. } => {
                return Err(ExecError::new(
                    "unsupported",
                    "`SAVE` is whole-catalog; it does not route through a sharded coordinator",
                ))
            }
            other => {
                let relation = statement_relation(other)
                    .expect("all remaining read statements are relation-scoped");
                self.owner_of(relation)
            }
        };
        match self.floor_view(k).execute_statement(stmt) {
            Some(result) => result.map_err(ExecError::from),
            None => unreachable!("run_read is called with read-only statements"),
        }
    }

    fn run_one(&self, stmt: Statement) -> ExecResult<Response> {
        if stmt.is_read_only() {
            self.run_read(stmt)
        } else {
            self.run_write(stmt)
        }
    }

    /// Rename, migrating the relation when the name hash places the new
    /// name on a different shard: replay schema, preemption mode, and
    /// tuples onto the destination (domains are already everywhere),
    /// then drop the source. Failures before the source drop roll the
    /// destination back, so the old name stays intact.
    fn rename(&self, from: String, to: String) -> ExecResult<Response> {
        let _ddl = self.ddl.lock().expect("ddl lock poisoned");
        let src = self.owner_of(&from);
        let dst = default_shard(&to, self.shards.len());
        if src == dst {
            let response = self.exec_on(
                src,
                Statement::RenameRelation {
                    from: from.clone(),
                    to: to.clone(),
                },
            )?;
            let mut routing = self.routing.write().expect("routing lock poisoned");
            routing.routes.remove(&from);
            routing.routes.insert(to, src);
            return Ok(response);
        }
        let snap = self.shards[src].snapshot();
        let entry = snap.relation_entry(&from)?; // kind "unknown" if missing
        if self.shards[src].snapshot().is_view(&from) {
            // Match the single-engine semantics: a renamed view detaches.
            // Dropping the source below would otherwise fail its
            // dependents mid-migration; keep it simple and explicit.
            return Err(ExecError::new(
                "unsupported",
                format!("{from} is a live view; drop or detach it before a cross-shard rename"),
            ));
        }
        let attributes = entry.signature.clone();
        let relation = entry.relation.clone();
        self.exec_on(
            dst,
            Statement::CreateRelation {
                name: to.clone(),
                attributes,
            },
        )?; // kind "duplicate" if the new name exists — source untouched
        let replay: ExecResult<()> = (|| {
            let mode = match relation.preemption() {
                Preemption::OffPath => "OFF-PATH",
                Preemption::OnPath => "ON-PATH",
                Preemption::NoPreemption => "NONE",
            };
            self.exec_on(
                dst,
                Statement::SetPreemption {
                    relation: to.clone(),
                    mode: mode.to_string(),
                },
            )?;
            let attrs = relation.schema().attributes().to_vec();
            for (item, truth) in relation.iter() {
                let values: Vec<ValueRef> = item
                    .components()
                    .iter()
                    .zip(attrs.iter())
                    .map(|(id, a)| ValueRef {
                        name: a.domain().name(*id).to_string(),
                        all: false,
                    })
                    .collect();
                self.exec_on(
                    dst,
                    Statement::Assert {
                        relation: to.clone(),
                        negated: truth == Truth::Negative,
                        values,
                    },
                )?;
            }
            Ok(())
        })();
        if let Err(e) = replay {
            let _ = self.exec_on(dst, Statement::DropRelation { name: to.clone() });
            return Err(e);
        }
        self.exec_on(src, Statement::DropRelation { name: from.clone() })?;
        let mut routing = self.routing.write().expect("routing lock poisoned");
        routing.routes.remove(&from);
        routing.routes.insert(to.clone(), dst);
        Ok(Response::Ok(format!("relation {from} renamed to {to}")))
    }
}

impl ExecutorHandle for ShardedEngine {
    fn execute(&self, script: &str) -> ExecResult<Vec<String>> {
        let statements = parse(script).map_err(ExecError::from)?;
        let mut out = Vec::with_capacity(statements.len());
        for stmt in statements {
            out.push(self.run_one(stmt)?.to_string());
        }
        Ok(out)
    }

    fn execute_read(&self, script: &str, min_epoch: u64) -> ExecResult<Vec<String>> {
        let statements = parse(script).map_err(ExecError::from)?;
        if !statements.iter().all(Statement::is_read_only) {
            return Err(ExecError::new(
                "unsupported",
                "script contains a mutating statement; route it through execute",
            ));
        }
        if self.epoch() < min_epoch {
            return Err(ExecError::new(
                "stale",
                format!(
                    "coordinator at epoch {} is below the requested floor {min_epoch}",
                    self.epoch()
                ),
            ));
        }
        let mut out = Vec::with_capacity(statements.len());
        for stmt in statements {
            out.push(self.run_read(stmt)?.to_string());
        }
        Ok(out)
    }

    fn last_epoch(&self) -> ExecResult<u64> {
        Ok(self.epoch())
    }

    fn probe(&self) -> ExecResult<String> {
        let mut out = format!("epoch: {}\nshards: {}", self.epoch(), self.shards.len());
        for (k, shard) in self.shards.iter().enumerate() {
            out.push_str(&format!("\nshard-{k}-epoch: {}", shard.epoch()));
        }
        let routing = self.routing.read().expect("routing lock poisoned");
        out.push_str(&format!("\nrouted-relations: {}", routing.routes.len()));
        Ok(out)
    }
}

impl Statement {
    /// The leading keyword(s) of this statement kind, for messages.
    fn kind_keyword(&self) -> &'static str {
        match self {
            Statement::Load { .. } => "LOAD",
            Statement::Open { .. } => "OPEN",
            Statement::Checkpoint => "CHECKPOINT",
            _ => "statement",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shard_is_stable_and_in_range() {
        for n in 1..8 {
            for name in ["Flies", "Sizes", "Colors", "R1", "R2"] {
                let k = default_shard(name, n);
                assert!(k < n);
                assert_eq!(k, default_shard(name, n), "deterministic");
            }
        }
    }
}
