//! The HQL abstract syntax.

/// A value written in a tuple position: an instance/class name,
/// optionally universally quantified with `ALL` (the paper's `∀`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRef {
    /// The node name as written.
    pub name: String,
    /// True when prefixed with `ALL` (purely documentary: a class name
    /// without `ALL` still denotes the class; `ALL` on an instance is
    /// harmless since instances are singleton classes).
    pub all: bool,
}

/// One parsed HQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE DOMAIN name`
    CreateDomain {
        /// Domain name.
        name: String,
    },
    /// `CREATE CLASS name UNDER parent, parent…`
    CreateClass {
        /// Class name.
        name: String,
        /// Parent class/domain names (resolved within one domain).
        parents: Vec<String>,
    },
    /// `CREATE INSTANCE name OF parent, parent…`
    CreateInstance {
        /// Instance name.
        name: String,
        /// Parent class names.
        parents: Vec<String>,
    },
    /// `PREFER stronger OVER weaker IN domain` (Appendix preference
    /// edges)
    Prefer {
        /// Dominating class.
        stronger: String,
        /// Dominated class.
        weaker: String,
        /// The domain holding both.
        domain: String,
    },
    /// `CREATE RELATION name (attr: domain, …)`
    CreateRelation {
        /// Relation name.
        name: String,
        /// Attribute name/domain pairs.
        attributes: Vec<(String, String)>,
    },
    /// `ASSERT [NOT] rel (value, …)`
    Assert {
        /// Relation name.
        relation: String,
        /// True for a negated tuple.
        negated: bool,
        /// Tuple values.
        values: Vec<ValueRef>,
    },
    /// `RETRACT rel (value, …)`
    Retract {
        /// Relation name.
        relation: String,
        /// Tuple values.
        values: Vec<ValueRef>,
    },
    /// `HOLDS rel (value, …)`
    Holds {
        /// Relation name.
        relation: String,
        /// Item values.
        values: Vec<ValueRef>,
    },
    /// `HOLDS3 rel (value, …)` — three-valued truth (§4: no closed
    /// world; unknown instead of false when nothing binds)
    Holds3 {
        /// Relation name.
        relation: String,
        /// Item values.
        values: Vec<ValueRef>,
    },
    /// `WHY rel (value, …)` — justification (Fig. 9)
    Why {
        /// Relation name.
        relation: String,
        /// Item values.
        values: Vec<ValueRef>,
    },
    /// `CHECK rel` — §3.1 ambiguity-constraint audit
    Check {
        /// Relation name.
        relation: String,
    },
    /// `SHOW rel`
    Show {
        /// Relation name.
        relation: String,
    },
    /// `SHOW DOMAIN name` — Graphviz DOT
    ShowDomain {
        /// Domain name.
        name: String,
    },
    /// `CONSOLIDATE rel` (§3.3.1, in place)
    Consolidate {
        /// Relation name.
        relation: String,
    },
    /// `EXPLICATE rel [ON attr, …]` (§3.3.2, in place)
    Explicate {
        /// Relation name.
        relation: String,
        /// Attribute names to explicate; empty means all.
        attrs: Vec<String>,
    },
    /// `SET PREEMPTION rel OFF-PATH|ON-PATH|NONE`
    SetPreemption {
        /// Relation name.
        relation: String,
        /// Mode keyword as written.
        mode: String,
    },
    /// `COUNT rel [BY attr]` — §3.3.2's statistical motivation
    Count {
        /// Relation name.
        relation: String,
        /// Optional group-by attribute.
        by: Option<String>,
    },
    /// `SAVE "path"` — snapshot the whole session to an HRDM1 image
    Save {
        /// Target file path.
        path: String,
    },
    /// `LOAD "path"` — restore a session snapshot (replaces current
    /// domains and relations)
    Load {
        /// Source file path.
        path: String,
    },
    /// `OPEN "dir" [SYNC EVERY n]` — attach the session to a durable
    /// store directory: recover (latest checkpoint + WAL replay), then
    /// journal every subsequent catalog mutation with group-commit
    /// batching of `n` appends per fsync (default 1: every append).
    Open {
        /// Store directory path.
        dir: String,
        /// Group-commit width; `None` means fsync every append.
        sync_every: Option<u64>,
    },
    /// `CHECKPOINT` — write a fresh checkpoint image of the open store
    /// and truncate its write-ahead log.
    Checkpoint,
    /// `LET name = <derivation>`
    Let {
        /// New relation name.
        name: String,
        /// The derivation expression.
        derivation: Derivation,
    },
    /// `EXPLAIN <derivation>` — show the optimized logical plan and the
    /// rewrite rules that fired, without materializing anything.
    Explain {
        /// The derivation expression to plan.
        derivation: Derivation,
    },
    /// `TRACE <derivation>` — run the optimized plan and render the
    /// recorded execution trace: per-node rows, wall time, and cache
    /// hit/miss attribution.
    Trace {
        /// The derivation expression to run and trace.
        derivation: Derivation,
    },
    /// `DROP DOMAIN name` — remove a domain no relation references.
    DropDomain {
        /// Domain name.
        name: String,
    },
    /// `DROP RELATION name` — remove a stored relation (and its live
    /// view definition, if it was a `LET` view).
    DropRelation {
        /// Relation name.
        name: String,
    },
    /// `RENAME RELATION old TO new`
    RenameRelation {
        /// Current relation name.
        from: String,
        /// New relation name.
        to: String,
    },
}

/// The fieldless discriminant of a [`Statement`] — the key the
/// executor's dispatch table is indexed by, and the unit of the
/// read/write classification the concurrent engine schedules on.
///
/// The discriminant values are the dispatch-table indexes; keep the
/// order in sync with `engine::DISPATCH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StatementKind {
    /// `CREATE DOMAIN`
    CreateDomain = 0,
    /// `CREATE CLASS`
    CreateClass = 1,
    /// `CREATE INSTANCE`
    CreateInstance = 2,
    /// `PREFER … OVER … IN …`
    Prefer = 3,
    /// `CREATE RELATION`
    CreateRelation = 4,
    /// `ASSERT [NOT]`
    Assert = 5,
    /// `RETRACT`
    Retract = 6,
    /// `HOLDS`
    Holds = 7,
    /// `HOLDS3`
    Holds3 = 8,
    /// `WHY`
    Why = 9,
    /// `CHECK`
    Check = 10,
    /// `SHOW`
    Show = 11,
    /// `SHOW DOMAIN`
    ShowDomain = 12,
    /// `CONSOLIDATE` (in place)
    Consolidate = 13,
    /// `EXPLICATE` (in place)
    Explicate = 14,
    /// `SET PREEMPTION`
    SetPreemption = 15,
    /// `COUNT`
    Count = 16,
    /// `SAVE`
    Save = 17,
    /// `LOAD`
    Load = 18,
    /// `OPEN`
    Open = 19,
    /// `CHECKPOINT`
    Checkpoint = 20,
    /// `LET`
    Let = 21,
    /// `EXPLAIN`
    Explain = 22,
    /// `TRACE`
    Trace = 23,
    /// `DROP DOMAIN`
    DropDomain = 24,
    /// `DROP RELATION`
    DropRelation = 25,
    /// `RENAME RELATION`
    RenameRelation = 26,
}

/// Number of statement kinds (= dispatch-table length).
pub const STATEMENT_KINDS: usize = 27;

impl StatementKind {
    /// Does this statement leave the session state untouched?
    ///
    /// Read-only statements execute against an immutable catalog
    /// snapshot — many in parallel — while mutating statements funnel
    /// through the engine's single writer. `SAVE` is classified as a
    /// read: it writes a file but never changes the session state, so
    /// it can snapshot concurrently with other readers.
    pub fn is_read_only(self) -> bool {
        matches!(
            self,
            StatementKind::Holds
                | StatementKind::Holds3
                | StatementKind::Why
                | StatementKind::Check
                | StatementKind::Show
                | StatementKind::ShowDomain
                | StatementKind::Count
                | StatementKind::Save
                | StatementKind::Explain
                | StatementKind::Trace
        )
    }
}

impl Statement {
    /// The fieldless discriminant of this statement.
    pub fn kind(&self) -> StatementKind {
        match self {
            Statement::CreateDomain { .. } => StatementKind::CreateDomain,
            Statement::CreateClass { .. } => StatementKind::CreateClass,
            Statement::CreateInstance { .. } => StatementKind::CreateInstance,
            Statement::Prefer { .. } => StatementKind::Prefer,
            Statement::CreateRelation { .. } => StatementKind::CreateRelation,
            Statement::Assert { .. } => StatementKind::Assert,
            Statement::Retract { .. } => StatementKind::Retract,
            Statement::Holds { .. } => StatementKind::Holds,
            Statement::Holds3 { .. } => StatementKind::Holds3,
            Statement::Why { .. } => StatementKind::Why,
            Statement::Check { .. } => StatementKind::Check,
            Statement::Show { .. } => StatementKind::Show,
            Statement::ShowDomain { .. } => StatementKind::ShowDomain,
            Statement::Consolidate { .. } => StatementKind::Consolidate,
            Statement::Explicate { .. } => StatementKind::Explicate,
            Statement::SetPreemption { .. } => StatementKind::SetPreemption,
            Statement::Count { .. } => StatementKind::Count,
            Statement::Save { .. } => StatementKind::Save,
            Statement::Load { .. } => StatementKind::Load,
            Statement::Open { .. } => StatementKind::Open,
            Statement::Checkpoint => StatementKind::Checkpoint,
            Statement::Let { .. } => StatementKind::Let,
            Statement::Explain { .. } => StatementKind::Explain,
            Statement::Trace { .. } => StatementKind::Trace,
            Statement::DropDomain { .. } => StatementKind::DropDomain,
            Statement::DropRelation { .. } => StatementKind::DropRelation,
            Statement::RenameRelation { .. } => StatementKind::RenameRelation,
        }
    }

    /// Shorthand for `self.kind().is_read_only()`.
    pub fn is_read_only(&self) -> bool {
        self.kind().is_read_only()
    }
}

/// An operand of a derivation: a stored relation by name, or a nested
/// derivation in parentheses (so a whole query tree is one statement and
/// the planner can rewrite across the composition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A stored relation referenced by name.
    Named(String),
    /// `( <derivation> )`
    Derived(Box<Derivation>),
}

impl Source {
    /// Convenience constructor for a named operand.
    pub fn named(name: impl Into<String>) -> Source {
        Source::Named(name.into())
    }
}

/// Right-hand sides of `LET` statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derivation {
    /// `UNION a b`
    Union(Source, Source),
    /// `INTERSECT a b`
    Intersect(Source, Source),
    /// `DIFFERENCE a b`
    Difference(Source, Source),
    /// `JOIN a b`
    Join(Source, Source),
    /// `PROJECT a (attr, …)`
    Project(Source, Vec<String>),
    /// `SELECT a WHERE attr IS value AND …`
    Select(Source, Vec<(String, ValueRef)>),
    /// `CONSOLIDATE a` (derive, don't mutate)
    Consolidated(Source),
    /// `EXPLICATE a [ON attrs]` (derive, don't mutate)
    Explicated(Source, Vec<String>),
}

use std::fmt;

/// Quote a name when it cannot stand as a bare word (or could be
/// absorbed as a keyword by the surrounding rule); anything uncertain
/// gets quoted.
fn quoted(name: &str) -> String {
    let bare_ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !name.contains("--")
        && ![
            "all", "not", "under", "of", "over", "in", "on", "by", "where", "is", "and", "domain",
            "to", "relation",
        ]
        .contains(&name.to_ascii_lowercase().as_str());
    if bare_ok {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\\\""))
    }
}

impl fmt::Display for ValueRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all {
            write!(f, "ALL {}", quoted(&self.name))
        } else {
            write!(f, "{}", quoted(&self.name))
        }
    }
}

fn tuple(values: &[ValueRef]) -> String {
    let parts: Vec<String> = values.iter().map(ValueRef::to_string).collect();
    format!("({})", parts.join(", "))
}

fn names(list: &[String]) -> String {
    list.iter()
        .map(|n| quoted(n))
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateDomain { name } => {
                write!(f, "CREATE DOMAIN {};", quoted(name))
            }
            Statement::CreateClass { name, parents } => {
                write!(f, "CREATE CLASS {} UNDER {};", quoted(name), names(parents))
            }
            Statement::CreateInstance { name, parents } => {
                write!(f, "CREATE INSTANCE {} OF {};", quoted(name), names(parents))
            }
            Statement::Prefer {
                stronger,
                weaker,
                domain,
            } => write!(
                f,
                "PREFER {} OVER {} IN {};",
                quoted(stronger),
                quoted(weaker),
                quoted(domain)
            ),
            Statement::CreateRelation { name, attributes } => {
                let attrs: Vec<String> = attributes
                    .iter()
                    .map(|(a, d)| format!("{}: {}", quoted(a), quoted(d)))
                    .collect();
                write!(
                    f,
                    "CREATE RELATION {} ({});",
                    quoted(name),
                    attrs.join(", ")
                )
            }
            Statement::Assert {
                relation,
                negated,
                values,
            } => write!(
                f,
                "ASSERT {}{} {};",
                if *negated { "NOT " } else { "" },
                quoted(relation),
                tuple(values)
            ),
            Statement::Retract { relation, values } => {
                write!(f, "RETRACT {} {};", quoted(relation), tuple(values))
            }
            Statement::Holds { relation, values } => {
                write!(f, "HOLDS {} {};", quoted(relation), tuple(values))
            }
            Statement::Holds3 { relation, values } => {
                write!(f, "HOLDS3 {} {};", quoted(relation), tuple(values))
            }
            Statement::Why { relation, values } => {
                write!(f, "WHY {} {};", quoted(relation), tuple(values))
            }
            Statement::Check { relation } => write!(f, "CHECK {};", quoted(relation)),
            Statement::Show { relation } => write!(f, "SHOW {};", quoted(relation)),
            Statement::ShowDomain { name } => write!(f, "SHOW DOMAIN {};", quoted(name)),
            Statement::Consolidate { relation } => {
                write!(f, "CONSOLIDATE {};", quoted(relation))
            }
            Statement::Explicate { relation, attrs } => {
                if attrs.is_empty() {
                    write!(f, "EXPLICATE {};", quoted(relation))
                } else {
                    write!(f, "EXPLICATE {} ON {};", quoted(relation), names(attrs))
                }
            }
            Statement::SetPreemption { relation, mode } => {
                write!(f, "SET PREEMPTION {} {};", quoted(relation), mode)
            }
            Statement::Count { relation, by } => match by {
                Some(attr) => write!(f, "COUNT {} BY {};", quoted(relation), quoted(attr)),
                None => write!(f, "COUNT {};", quoted(relation)),
            },
            Statement::Save { path } => write!(f, "SAVE {};", quoted(path)),
            Statement::Load { path } => write!(f, "LOAD {};", quoted(path)),
            Statement::Open { dir, sync_every } => match sync_every {
                Some(n) => write!(f, "OPEN {} SYNC EVERY {n};", quoted(dir)),
                None => write!(f, "OPEN {};", quoted(dir)),
            },
            Statement::Checkpoint => write!(f, "CHECKPOINT;"),
            Statement::Let { name, derivation } => {
                write!(f, "LET {} = {};", quoted(name), derivation)
            }
            Statement::Explain { derivation } => {
                write!(f, "EXPLAIN {derivation};")
            }
            Statement::Trace { derivation } => {
                write!(f, "TRACE {derivation};")
            }
            Statement::DropDomain { name } => write!(f, "DROP DOMAIN {};", quoted(name)),
            Statement::DropRelation { name } => write!(f, "DROP RELATION {};", quoted(name)),
            Statement::RenameRelation { from, to } => {
                write!(f, "RENAME RELATION {} TO {};", quoted(from), quoted(to))
            }
        }
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Named(name) => write!(f, "{}", quoted(name)),
            Source::Derived(d) => write!(f, "({d})"),
        }
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Derivation::Union(a, b) => write!(f, "UNION {a} {b}"),
            Derivation::Intersect(a, b) => write!(f, "INTERSECT {a} {b}"),
            Derivation::Difference(a, b) => write!(f, "DIFFERENCE {a} {b}"),
            Derivation::Join(a, b) => write!(f, "JOIN {a} {b}"),
            Derivation::Project(a, attrs) => {
                write!(f, "PROJECT {} ({})", a, names(attrs))
            }
            Derivation::Select(a, conds) => {
                let cs: Vec<String> = conds
                    .iter()
                    .map(|(attr, v)| format!("{} IS {}", quoted(attr), v))
                    .collect();
                write!(f, "SELECT {} WHERE {}", a, cs.join(" AND "))
            }
            Derivation::Consolidated(a) => write!(f, "CONSOLIDATE {a}"),
            Derivation::Explicated(a, attrs) => {
                if attrs.is_empty() {
                    write!(f, "EXPLICATE {a}")
                } else {
                    write!(f, "EXPLICATE {} ON {}", a, names(attrs))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ref_equality() {
        let a = ValueRef {
            name: "Bird".into(),
            all: true,
        };
        let b = ValueRef {
            name: "Bird".into(),
            all: false,
        };
        assert_ne!(a, b);
    }

    #[test]
    fn statements_are_cloneable_and_comparable() {
        let s = Statement::CreateDomain {
            name: "Animal".into(),
        };
        assert_eq!(s.clone(), s);
        let d = Derivation::Union(Source::named("A"), Source::named("B"));
        assert_eq!(d.clone(), d);
    }

    #[test]
    fn open_and_checkpoint_render() {
        let s = Statement::Open {
            dir: "db".into(),
            sync_every: None,
        };
        assert_eq!(s.to_string(), "OPEN db;");
        let s = Statement::Open {
            dir: "/tmp/x".into(),
            sync_every: Some(4),
        };
        assert_eq!(s.to_string(), "OPEN \"/tmp/x\" SYNC EVERY 4;");
        assert_eq!(Statement::Checkpoint.to_string(), "CHECKPOINT;");
    }

    #[test]
    fn nested_sources_render_parenthesized() {
        let d = Derivation::Select(
            Source::Derived(Box::new(Derivation::Explicated(
                Source::named("Flies"),
                vec![],
            ))),
            vec![(
                "Creature".into(),
                ValueRef {
                    name: "Penguin".into(),
                    all: true,
                },
            )],
        );
        assert_eq!(
            d.to_string(),
            "SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin"
        );
        let e = Statement::Explain {
            derivation: d.clone(),
        };
        assert!(e.to_string().starts_with("EXPLAIN SELECT (EXPLICATE"));
        let t = Statement::Trace { derivation: d };
        assert!(t.to_string().starts_with("TRACE SELECT (EXPLICATE"));
    }
}
