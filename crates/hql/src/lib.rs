#![warn(missing_docs)]

//! HQL — a textual interface to the hierarchical relational model.
//!
//! §1 of the paper: "The intent of this paper is to present a data model
//! that can serve as a standard interface providing 'higher level'
//! primitive operators than a standard relational model would in support
//! of hierarchy." HQL is that interface as a language: DDL for domains,
//! classes, instances, and relations; truth-valued assertions with the
//! paper's `ALL` (∀) class values; binding queries with justification;
//! the two new physical operators (`CONSOLIDATE`, `EXPLICATE`); and the
//! standard operators as derivation statements.
//!
//! # Statement overview
//!
//! ```text
//! CREATE DOMAIN Animal;
//! CREATE CLASS Bird UNDER Animal;
//! CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
//! CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
//! PREFER ClassA OVER ClassB IN Animal;
//!
//! CREATE RELATION Flies (Creature: Animal);
//! ASSERT Flies (ALL Bird);
//! ASSERT NOT Flies (ALL Penguin);
//! RETRACT Flies (ALL Penguin);
//!
//! HOLDS Flies (Tweety);            -- closed-world truth
//! WHY Flies (Paul);                -- justification (Fig. 9)
//! CHECK Flies;                     -- ambiguity-constraint audit (§3.1)
//! SHOW Flies;                      -- paper-style table
//! SHOW DOMAIN Animal;              -- Graphviz DOT
//!
//! CONSOLIDATE Flies;               -- §3.3.1 (in place)
//! EXPLICATE Flies;                 -- §3.3.2 (in place; optional ON attrs)
//!
//! LET Loved = UNION JackLoves JillLoves;
//! LET Both  = INTERSECT JackLoves JillLoves;
//! LET OnlyJ = DIFFERENCE JackLoves JillLoves;
//! LET Full  = JOIN Sizes Colors;
//! LET Names = PROJECT Full (Animal, Color);
//! LET Sub   = SELECT Respects WHERE Student IS ALL "Obsequious Student";
//! SET PREEMPTION Flies ON-PATH;    -- Appendix ablation
//! ```
//!
//! Identifiers are bare words; names with spaces are `"quoted"`.
//! Keywords are case-insensitive; statements end with `;` (optional for
//! single statements). `--` starts a comment.

pub mod ast;
pub mod engine;
pub mod error;
pub mod exec;
pub mod executor;
pub mod lexer;
pub mod parser;
pub mod replica;
pub mod shard;
pub mod world;

pub use ast::{Statement, StatementKind};
pub use engine::{Engine, ReadView};
pub use error::{HqlError, Result};
pub use exec::{Response, Session};
pub use executor::{render, ExecError, ExecResult, ExecutorHandle};
pub use replica::Replica;
pub use shard::{default_shard, ShardedEngine};
pub use world::World;

/// Parse and execute one or more statements against a fresh session.
///
/// Convenience for tests and doctests; real applications keep a
/// [`Session`] alive.
///
/// ```
/// use hrdm_hql::Session;
/// let mut session = Session::new();
/// session.execute("CREATE DOMAIN Animal;").unwrap();
/// session.execute("CREATE CLASS Bird UNDER Animal;").unwrap();
/// session.execute("CREATE INSTANCE Tweety OF Bird;").unwrap();
/// session.execute("CREATE RELATION Flies (Creature: Animal);").unwrap();
/// session.execute("ASSERT Flies (ALL Bird);").unwrap();
/// let out = session.execute("HOLDS Flies (Tweety);").unwrap();
/// assert!(out.iter().any(|r| r.to_string().contains("true")));
/// ```
pub fn run(script: &str) -> Result<Vec<Response>> {
    let mut session = Session::new();
    session.execute(script)
}
