//! Error type for HQL.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T, E = HqlError> = std::result::Result<T, E>;

/// Errors raised while lexing, parsing, or executing HQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte position in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with the offending token and expectation.
    Parse {
        /// Rendered offending token (or "end of input").
        found: String,
        /// What the parser wanted.
        expected: String,
    },
    /// A named object (domain, relation, class, attribute) is missing.
    Unknown {
        /// Object category ("domain", "relation", …).
        kind: &'static str,
        /// The name as written.
        name: String,
    },
    /// An object with this name already exists.
    Duplicate {
        /// Object category.
        kind: &'static str,
        /// The name as written.
        name: String,
    },
    /// An error bubbled up from the core model.
    Core(String),
    /// A statement that needs a consistent relation found conflicts.
    Inconsistent {
        /// Relation involved.
        relation: String,
        /// Rendered conflicted items.
        conflicts: Vec<String>,
    },
}

impl fmt::Display for HqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            HqlError::Parse { found, expected } => {
                write!(f, "parse error: expected {expected}, found {found}")
            }
            HqlError::Unknown { kind, name } => write!(f, "unknown {kind} {name:?}"),
            HqlError::Duplicate { kind, name } => write!(f, "{kind} {name:?} already exists"),
            HqlError::Core(msg) => write!(f, "execution error: {msg}"),
            HqlError::Inconsistent {
                relation,
                conflicts,
            } => write!(
                f,
                "relation {relation:?} violates the ambiguity constraint at {} item(s): {}",
                conflicts.len(),
                conflicts.join(", ")
            ),
        }
    }
}

impl std::error::Error for HqlError {}

impl From<hrdm_core::CoreError> for HqlError {
    fn from(e: hrdm_core::CoreError) -> HqlError {
        HqlError::Core(e.to_string())
    }
}

impl From<hrdm_hierarchy::HierarchyError> for HqlError {
    fn from(e: hrdm_hierarchy::HierarchyError) -> HqlError {
        HqlError::Core(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = HqlError::Parse {
            found: "UNDER".into(),
            expected: "a relation name".into(),
        };
        assert!(e.to_string().contains("UNDER"));
        let e = HqlError::Unknown {
            kind: "domain",
            name: "Plant".into(),
        };
        assert!(e.to_string().contains("Plant"));
        let e = HqlError::Inconsistent {
            relation: "R".into(),
            conflicts: vec!["(a, b)".into()],
        };
        assert!(e.to_string().contains("1 item"));
    }

    #[test]
    fn conversions() {
        let c: HqlError = hrdm_core::CoreError::SchemaMismatch.into();
        assert!(matches!(c, HqlError::Core(_)));
        let h: HqlError = hrdm_hierarchy::HierarchyError::NoParent.into();
        assert!(matches!(h, HqlError::Core(_)));
    }
}
