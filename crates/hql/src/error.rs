//! Error type for HQL.
//!
//! The execution variants wrap the underlying crate errors *losslessly*
//! ([`HqlError::Core`] keeps the structured
//! [`CoreError`]; persistence failures keep their
//! stable kind code), so the unified `hrdm::Error` surface — and the
//! `hrdm-server` wire protocol's `ERR <kind>` replies — can classify
//! any failure without string matching.

use std::fmt;

use hrdm_core::CoreError;

/// Result alias used throughout the crate.
pub type Result<T, E = HqlError> = std::result::Result<T, E>;

/// Errors raised while lexing, parsing, or executing HQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte position in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with the offending token and expectation.
    Parse {
        /// Rendered offending token (or "end of input").
        found: String,
        /// What the parser wanted.
        expected: String,
    },
    /// A named object (domain, relation, class, attribute) is missing.
    Unknown {
        /// Object category ("domain", "relation", …).
        kind: &'static str,
        /// The name as written.
        name: String,
    },
    /// An object with this name already exists.
    Duplicate {
        /// Object category.
        kind: &'static str,
        /// The name as written.
        name: String,
    },
    /// An error bubbled up from the core model, kept structured so the
    /// original kind survives into the unified error surface.
    Core(CoreError),
    /// An error from the persistence layer (SAVE/LOAD/OPEN/CHECKPOINT
    /// or WAL journaling). `PersistError` is not `Clone`, so the
    /// rendered message rides along with the stable kind code.
    Persist {
        /// The persistence error's stable kind code
        /// ([`hrdm_persist::PersistError::kind`]).
        kind: &'static str,
        /// Rendered error message.
        message: String,
    },
    /// A session-level execution error with no structured payload
    /// (ambiguous name resolution, statements that need an open store,
    /// unrecognized mode keywords, …).
    Execution(String),
    /// A statement that needs a consistent relation found conflicts.
    Inconsistent {
        /// Relation involved.
        relation: String,
        /// Rendered conflicted items.
        conflicts: Vec<String>,
    },
}

impl HqlError {
    /// Stable machine-readable error-kind code. Structured variants
    /// forward the underlying crate's code (`CoreError::kind`,
    /// `PersistError::kind`); the wire protocol sends these verbatim,
    /// so existing codes must never change meaning.
    pub fn kind(&self) -> &'static str {
        match self {
            HqlError::Lex { .. } => "lex",
            HqlError::Parse { .. } => "parse",
            HqlError::Unknown { .. } => "unknown",
            HqlError::Duplicate { .. } => "duplicate",
            HqlError::Core(e) => e.kind(),
            HqlError::Persist { kind, .. } => kind,
            HqlError::Execution(_) => "execution",
            HqlError::Inconsistent { .. } => "conflict",
        }
    }
}

impl fmt::Display for HqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            HqlError::Parse { found, expected } => {
                write!(f, "parse error: expected {expected}, found {found}")
            }
            HqlError::Unknown { kind, name } => write!(f, "unknown {kind} {name:?}"),
            HqlError::Duplicate { kind, name } => write!(f, "{kind} {name:?} already exists"),
            HqlError::Core(e) => write!(f, "execution error: {e}"),
            HqlError::Persist { message, .. } => write!(f, "execution error: {message}"),
            HqlError::Execution(msg) => write!(f, "execution error: {msg}"),
            HqlError::Inconsistent {
                relation,
                conflicts,
            } => write!(
                f,
                "relation {relation:?} violates the ambiguity constraint at {} item(s): {}",
                conflicts.len(),
                conflicts.join(", ")
            ),
        }
    }
}

impl std::error::Error for HqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HqlError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hrdm_core::CoreError> for HqlError {
    fn from(e: hrdm_core::CoreError) -> HqlError {
        HqlError::Core(e)
    }
}

impl From<hrdm_hierarchy::HierarchyError> for HqlError {
    fn from(e: hrdm_hierarchy::HierarchyError) -> HqlError {
        HqlError::Core(CoreError::Hierarchy(e))
    }
}

impl From<hrdm_persist::PersistError> for HqlError {
    fn from(e: hrdm_persist::PersistError) -> HqlError {
        HqlError::Persist {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = HqlError::Parse {
            found: "UNDER".into(),
            expected: "a relation name".into(),
        };
        assert!(e.to_string().contains("UNDER"));
        let e = HqlError::Unknown {
            kind: "domain",
            name: "Plant".into(),
        };
        assert!(e.to_string().contains("Plant"));
        let e = HqlError::Inconsistent {
            relation: "R".into(),
            conflicts: vec!["(a, b)".into()],
        };
        assert!(e.to_string().contains("1 item"));
        let e = HqlError::Execution("no store open".into());
        assert!(e.to_string().contains("no store open"));
    }

    #[test]
    fn conversions() {
        let c: HqlError = hrdm_core::CoreError::SchemaMismatch.into();
        assert_eq!(c, HqlError::Core(hrdm_core::CoreError::SchemaMismatch));
        assert!(std::error::Error::source(&c).is_some());
        let h: HqlError = hrdm_hierarchy::HierarchyError::NoParent.into();
        assert!(matches!(h, HqlError::Core(CoreError::Hierarchy(_))));
        let p: HqlError = hrdm_persist::PersistError::BadMagic.into();
        assert!(matches!(
            p,
            HqlError::Persist {
                kind: "bad-magic",
                ..
            }
        ));
    }

    #[test]
    fn kind_codes_are_stable() {
        let cases: Vec<(HqlError, &str)> = vec![
            (
                HqlError::Lex {
                    position: 0,
                    message: String::new(),
                },
                "lex",
            ),
            (
                HqlError::Parse {
                    found: String::new(),
                    expected: String::new(),
                },
                "parse",
            ),
            (
                HqlError::Unknown {
                    kind: "relation",
                    name: String::new(),
                },
                "unknown",
            ),
            (
                HqlError::Duplicate {
                    kind: "domain",
                    name: String::new(),
                },
                "duplicate",
            ),
            (HqlError::Core(CoreError::SchemaMismatch), "schema"),
            (
                HqlError::Persist {
                    kind: "io",
                    message: String::new(),
                },
                "io",
            ),
            (HqlError::Execution(String::new()), "execution"),
            (
                HqlError::Inconsistent {
                    relation: String::new(),
                    conflicts: vec![],
                },
                "conflict",
            ),
        ];
        for (e, code) in cases {
            assert_eq!(e.kind(), code, "{e}");
        }
    }
}
