//! WAL-fed read replicas.
//!
//! A [`Replica`] is an embedded [`Engine`] kept current by tailing a
//! primary's store directory (`hrdm-persist`'s
//! [`WalTailer`](hrdm_persist::ship::WalTailer)): checkpoint rollovers
//! arrive as whole images and restore the replica wholesale; committed
//! WAL mutations arrive one at a time and are replayed as the
//! equivalent HQL statements through the same write path the primary
//! used — so a replica snapshot at shipped LSN *L* renders reads
//! **byte-identically** to the primary at LSN *L* (the replica-parity
//! harness pins this across randomized histories).
//!
//! Replication is asynchronous and pull-based: call
//! [`sync`](Replica::sync) on whatever cadence fits (a serving loop
//! tick, a timer thread). Reads between syncs serve the replica's
//! epoch-consistent snapshot — stale but internally consistent, and
//! [`ExecutorHandle::execute_read`]'s `min_epoch` floor lets callers
//! demand freshness explicitly.
//!
//! Writes through the [`ExecutorHandle`] surface report kind
//! `"unsupported"`: a replica is read-only by construction (its only
//! writer is the shipping stream).

use std::path::Path;
use std::sync::Mutex;

use hrdm_core::prelude::*;
use hrdm_persist::ship::{ShipEvent, WalTailer};

use crate::ast::{Statement, ValueRef};
use crate::engine::Engine;
use crate::error::HqlError;
use crate::executor::{ExecError, ExecResult, ExecutorHandle};

/// Replay form of one WAL mutation: the HQL statement whose write-path
/// effect on a catalog equals applying the mutation directly.
pub fn statement_for(mutation: CatalogMutation) -> Statement {
    let values = |vs: Vec<String>| -> Vec<ValueRef> {
        vs.into_iter()
            .map(|name| ValueRef { name, all: false })
            .collect()
    };
    match mutation {
        CatalogMutation::CreateDomain { name } => Statement::CreateDomain { name },
        CatalogMutation::DropDomain { name } => Statement::DropDomain { name },
        CatalogMutation::AddClass { name, parents, .. } => Statement::CreateClass { name, parents },
        CatalogMutation::AddInstance { name, parents, .. } => {
            Statement::CreateInstance { name, parents }
        }
        CatalogMutation::Prefer {
            domain,
            stronger,
            weaker,
        } => Statement::Prefer {
            stronger,
            weaker,
            domain,
        },
        CatalogMutation::CreateRelation { name, attributes } => {
            Statement::CreateRelation { name, attributes }
        }
        CatalogMutation::DropRelation { name } => Statement::DropRelation { name },
        CatalogMutation::Assert {
            relation,
            values: vs,
            truth,
        } => Statement::Assert {
            relation,
            negated: truth == Truth::Negative,
            values: values(vs),
        },
        CatalogMutation::Retract {
            relation,
            values: vs,
        } => Statement::Retract {
            relation,
            values: values(vs),
        },
        CatalogMutation::SetPreemption { relation, mode } => Statement::SetPreemption {
            relation,
            mode: match mode {
                Preemption::OffPath => "OFF-PATH",
                Preemption::OnPath => "ON-PATH",
                Preemption::NoPreemption => "NONE",
            }
            .to_string(),
        },
    }
}

/// A read-only engine fed by a primary's WAL.
pub struct Replica {
    engine: Engine,
    tailer: Mutex<WalTailer>,
}

impl Replica {
    /// Attach a fresh replica to a primary's store directory. The
    /// directory need not exist yet; the first [`sync`](Replica::sync)
    /// after the primary opens it catches up from the initial
    /// checkpoint.
    pub fn attach(dir: impl AsRef<Path>) -> Replica {
        Replica {
            engine: Engine::new(),
            tailer: Mutex::new(WalTailer::attach(dir.as_ref())),
        }
    }

    /// The replica's engine — read it like any engine (snapshots, read
    /// views); don't write to it.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Pull everything newly committed on the primary and apply it.
    /// Returns the shipped LSN after the pull (mutations applied since
    /// the primary store was born).
    pub fn sync(&self) -> ExecResult<u64> {
        let mut tailer = self.tailer.lock().expect("tailer lock poisoned");
        let events = tailer
            .poll()
            .map_err(|e| ExecError::from(HqlError::from(e)))?;
        for event in events {
            match event {
                ShipEvent::Rollover { image, .. } => self.engine.restore(image),
                ShipEvent::Mutation { mutation, .. } => {
                    self.engine
                        .execute_statement(statement_for(mutation))
                        .map_err(ExecError::from)?;
                }
            }
        }
        Ok(tailer.shipped_lsn())
    }

    /// LSN of the last shipped event applied (0 before the first sync
    /// observes the store).
    pub fn shipped_lsn(&self) -> u64 {
        self.tailer
            .lock()
            .expect("tailer lock poisoned")
            .shipped_lsn()
    }
}

impl ExecutorHandle for Replica {
    fn execute(&self, _script: &str) -> ExecResult<Vec<String>> {
        Err(ExecError::new(
            "unsupported",
            "replica is read-only; route writes to the primary",
        ))
    }

    fn execute_read(&self, script: &str, min_epoch: u64) -> ExecResult<Vec<String>> {
        self.engine.execute_read(script, min_epoch)
    }

    fn last_epoch(&self) -> ExecResult<u64> {
        Ok(self.engine.epoch())
    }

    fn probe(&self) -> ExecResult<String> {
        Ok(format!(
            "epoch: {}\nshipped-lsn: {}\nrole: replica",
            self.engine.epoch(),
            self.shipped_lsn()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_wal_mutation_kind_has_a_replay_statement() {
        let cases = vec![
            CatalogMutation::CreateDomain { name: "D".into() },
            CatalogMutation::AddClass {
                domain: "D".into(),
                name: "C".into(),
                parents: vec!["D".into()],
            },
            CatalogMutation::AddInstance {
                domain: "D".into(),
                name: "i".into(),
                parents: vec!["C".into()],
            },
            CatalogMutation::Prefer {
                domain: "D".into(),
                stronger: "A".into(),
                weaker: "B".into(),
            },
            CatalogMutation::CreateRelation {
                name: "R".into(),
                attributes: vec![("a".into(), "D".into())],
            },
            CatalogMutation::Assert {
                relation: "R".into(),
                values: vec!["C".into()],
                truth: Truth::Negative,
            },
            CatalogMutation::Retract {
                relation: "R".into(),
                values: vec!["C".into()],
            },
            CatalogMutation::SetPreemption {
                relation: "R".into(),
                mode: Preemption::OnPath,
            },
            CatalogMutation::DropRelation { name: "R".into() },
            CatalogMutation::DropDomain { name: "D".into() },
        ];
        for m in cases {
            let stmt = statement_for(m);
            assert!(!stmt.is_read_only(), "replay statements are writes");
            // Every replay statement re-parses from its rendering, so
            // the mapping stays inside the language.
            crate::parser::parse(&stmt.to_string()).unwrap();
        }
        assert_eq!(
            statement_for(CatalogMutation::SetPreemption {
                relation: "R".into(),
                mode: Preemption::OnPath,
            })
            .to_string(),
            "SET PREEMPTION R ON-PATH;"
        );
    }

    #[test]
    fn replica_refuses_writes_and_serves_reads() {
        let replica = Replica::attach(std::env::temp_dir().join("hrdm_replica_never_created"));
        assert_eq!(replica.sync().unwrap(), 0, "store not born yet");
        let e = replica.execute("CREATE DOMAIN D;").unwrap_err();
        assert_eq!(e.kind(), "unsupported");
        assert_eq!(replica.last_epoch().unwrap(), 0);
        assert!(replica.probe().unwrap().contains("role: replica"));
    }
}
