//! The immutable-once-published session state.
//!
//! A [`World`] is everything an HQL statement can see: the domain
//! graphs and the relations over them. It is the unit the concurrent
//! [`Engine`](crate::engine::Engine) publishes through a
//! [`SnapshotCell`]: readers hold an
//! `Arc<World>` and never lock; the single writer clones the world
//! (cheap — both maps hold `Arc`s, so a clone is a handful of pointer
//! bumps), mutates its private copy, and publishes it as the next
//! epoch.
//!
//! Because relations share their domain graphs through `Arc`s (join
//! compatibility is `Arc` identity), any mutation of a domain —
//! `CREATE CLASS`, `CREATE INSTANCE`, `PREFER` — re-shares a fresh
//! `Arc` across every relation on that domain. Node ids are stable
//! under node/edge addition, so the stored tuples carry over verbatim.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hrdm_core::delta::{Delta, RelationChange, RelationDelta};
use hrdm_core::differential::MaterializedPlan;
use hrdm_core::plan::LogicalPlan;
use hrdm_core::prelude::*;
use hrdm_hierarchy::HierarchyGraph;

use crate::ast::{Derivation, Source, ValueRef};
use crate::error::{HqlError, Result};

/// A stored relation plus its (attribute, domain-name) signature. The
/// signature is what lets a domain mutation rebuild the relation's
/// schema against the freshly re-shared graphs.
#[derive(Clone)]
pub struct RelationEntry {
    /// The relation itself, shared so a maintained view can alias its
    /// materialized plan's root cache instead of cloning every tuple on
    /// each write.
    pub relation: Arc<HRelation>,
    /// `(attribute name, domain name)` per schema position.
    pub signature: Vec<(String, String)>,
}

/// How a registered view is kept current.
#[derive(Clone)]
enum ViewMode {
    /// Maintained per-delta through the differential plan evaluator.
    Incremental(MaterializedPlan),
    /// Re-derived in full on every relevant delta. Used for top-level
    /// `EXPLICATE` over a *derived* source, whose evaluation order
    /// (consolidate the inner result, then explicate) the plan IR does
    /// not express — and as the landing mode when a materialization
    /// cannot be (re)built.
    Recompute,
}

/// One live `LET` view: its defining derivation plus the machinery to
/// keep the stored relation equal to re-deriving it from scratch.
#[derive(Clone)]
struct ViewDef {
    /// The view's relation name.
    name: String,
    /// The defining right-hand side, for full recomputation.
    derivation: Derivation,
    /// Base relations the derivation scans (delta routing).
    deps: BTreeSet<String>,
    /// Domains those base relations are over: an edit to any of them
    /// changes subsumption itself (and re-shares the schema `Arc`s the
    /// cached node outputs were built against), so the differential
    /// path does not apply and the view falls back to recomputation.
    dep_domains: BTreeSet<String>,
    /// Maintenance machinery.
    mode: ViewMode,
}

/// What one [`World::maintain_views`] pass did, for the engine's
/// durability policy (checkpoint when any view state changed) and the
/// `ivm.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MaintainSummary {
    /// Views updated through the differential path.
    pub maintained: usize,
    /// Views re-derived in full (domain edits, resets, recompute-mode
    /// views, or differential-path errors).
    pub fallback: usize,
    /// Views detached because the statement wrote their relation
    /// directly.
    pub detached: usize,
}

impl MaintainSummary {
    /// Whether any view relation or registration changed.
    pub fn changed(&self) -> bool {
        self.maintained + self.fallback + self.detached > 0
    }
}

/// The complete state an HQL statement executes against.
///
/// `Clone` is the copy-on-write entry point: it clones only the two
/// maps of `Arc`s (plus the view registry's `Arc`s), never a graph or
/// a tuple. Mutators then use
/// [`Arc::make_mut`] (relations) or clone-and-re-share (domains) so the
/// original world — possibly still held by concurrent readers — is
/// untouched.
#[derive(Clone, Default)]
pub struct World {
    /// The domain graphs, shared with every schema that references them.
    domains: BTreeMap<String, Arc<HierarchyGraph>>,
    /// Relations by name.
    relations: BTreeMap<String, Arc<RelationEntry>>,
    /// Live `LET` views in registration order, so a view over another
    /// view is maintained after its input and sees its delta. Views are
    /// *session* state, not image state: `LOAD`/`OPEN`/`restore`
    /// degrade them to plain relations.
    views: Vec<Arc<ViewDef>>,
}

/// Resolve a written tuple into an item against a relation's schema.
pub(crate) fn resolve_item(relation: &HRelation, values: &[ValueRef]) -> Result<Item> {
    let names: Vec<&str> = values.iter().map(|v| v.name.as_str()).collect();
    Ok(relation.item(&names)?)
}

/// Resolve attribute names to schema indexes; an empty list means all.
pub(crate) fn attr_indexes(rel: &HRelation, attrs: &[String]) -> Result<Vec<usize>> {
    if attrs.is_empty() {
        return Ok((0..rel.schema().arity()).collect());
    }
    attrs
        .iter()
        .map(|a| Ok(rel.schema().index_of(a)?))
        .collect()
}

impl World {
    /// A fresh, empty world.
    pub fn new() -> World {
        World::default()
    }

    /// Names of the defined domains.
    pub fn domain_names(&self) -> impl Iterator<Item = &str> {
        self.domains.keys().map(String::as_str)
    }

    /// Number of defined domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// A domain graph by name.
    pub fn domain(&self, name: &str) -> Result<&Arc<HierarchyGraph>> {
        self.domains.get(name).ok_or_else(|| HqlError::Unknown {
            kind: "domain",
            name: name.to_string(),
        })
    }

    /// Names of the defined relations.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of defined relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// A relation by name.
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.relation_entry(name).map(|e| e.relation.as_ref())
    }

    pub(crate) fn relation_entry(&self, name: &str) -> Result<&RelationEntry> {
        self.relations
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| HqlError::Unknown {
                kind: "relation",
                name: name.to_string(),
            })
    }

    fn relation_entry_mut(&mut self, name: &str) -> Result<&mut RelationEntry> {
        match self.relations.get_mut(name) {
            Some(arc) => Ok(Arc::make_mut(arc)),
            None => Err(HqlError::Unknown {
                kind: "relation",
                name: name.to_string(),
            }),
        }
    }

    /// Unique access to a relation's tuples (copy-on-write through both
    /// the entry and the relation `Arc`s).
    fn relation_mut(&mut self, name: &str) -> Result<&mut HRelation> {
        let entry = self.relation_entry_mut(name)?;
        Ok(Arc::make_mut(&mut entry.relation))
    }

    /// The domain that contains all the given node names (for resolving
    /// `UNDER`/`OF` parents).
    fn domain_containing(&self, names: &[String]) -> Result<String> {
        let mut hits: Vec<&String> = self
            .domains
            .iter()
            .filter(|(_, g)| names.iter().all(|n| g.node(n).is_ok()))
            .map(|(d, _)| d)
            .collect();
        match hits.len() {
            1 => Ok(hits.remove(0).clone()),
            0 => Err(HqlError::Unknown {
                kind: "class",
                name: names.join(", "),
            }),
            _ => Err(HqlError::Execution(format!(
                "parents {names:?} exist in several domains; qualify with distinct names"
            ))),
        }
    }

    /// After mutating `domain`, re-share its fresh `Arc` across every
    /// relation that references it (node ids are stable, so tuples are
    /// reused as-is).
    fn reshare(&mut self, domain: &str) {
        let names: Vec<String> = self
            .relations
            .iter()
            .filter(|(_, e)| e.signature.iter().any(|(_, d)| d == domain))
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            let entry = self.relations.remove(&name).expect("listed above");
            let attrs: Vec<Attribute> = entry
                .signature
                .iter()
                .map(|(attr, dom)| Attribute::new(attr.clone(), self.domains[dom].clone()))
                .collect();
            let schema = Arc::new(Schema::new(attrs));
            let mut rebuilt = HRelation::with_preemption(schema, entry.relation.preemption());
            for (item, truth) in entry.relation.iter() {
                rebuilt
                    .insert(Tuple::new(item.clone(), truth))
                    .expect("node ids are stable across domain growth");
            }
            self.relations.insert(
                name,
                Arc::new(RelationEntry {
                    relation: Arc::new(rebuilt),
                    signature: entry.signature.clone(),
                }),
            );
        }
    }

    /// Clone `domain`'s graph, apply `f` to the copy, and on success
    /// publish the fresh graph to every relation over the domain.
    fn mutate_domain<F>(&mut self, domain: &str, f: F) -> Result<()>
    where
        F: FnOnce(&mut HierarchyGraph) -> Result<()>,
    {
        let arc = self.domain(domain)?;
        let mut g = (**arc).clone();
        f(&mut g)?;
        self.domains.insert(domain.to_string(), Arc::new(g));
        self.reshare(domain);
        Ok(())
    }

    pub(crate) fn create_domain(&mut self, name: &str) -> Result<()> {
        if self.domains.contains_key(name) {
            return Err(HqlError::Duplicate {
                kind: "domain",
                name: name.to_string(),
            });
        }
        self.domains
            .insert(name.to_string(), Arc::new(HierarchyGraph::new(name)));
        Ok(())
    }

    /// Add a class under the named parents; returns the containing
    /// domain's name (for the journal record and the reply).
    pub(crate) fn add_class(&mut self, name: &str, parents: &[String]) -> Result<String> {
        let domain = self.domain_containing(parents)?;
        self.mutate_domain(&domain, |g| {
            let parent_ids = parents
                .iter()
                .map(|p| g.node(p))
                .collect::<std::result::Result<Vec<_>, _>>()?;
            g.add_class_multi(name, &parent_ids)?;
            Ok(())
        })?;
        Ok(domain)
    }

    /// Add an instance under the named parents; returns the containing
    /// domain's name.
    pub(crate) fn add_instance(&mut self, name: &str, parents: &[String]) -> Result<String> {
        let domain = self.domain_containing(parents)?;
        self.mutate_domain(&domain, |g| {
            let parent_ids = parents
                .iter()
                .map(|p| g.node(p))
                .collect::<std::result::Result<Vec<_>, _>>()?;
            g.add_instance_multi(name, &parent_ids)?;
            Ok(())
        })?;
        Ok(domain)
    }

    pub(crate) fn prefer(&mut self, domain: &str, stronger: &str, weaker: &str) -> Result<()> {
        self.mutate_domain(domain, |g| {
            let s = g.node(stronger)?;
            let w = g.node(weaker)?;
            hrdm_hierarchy::preference::prefer(g, s, w)?;
            Ok(())
        })
    }

    pub(crate) fn create_relation(
        &mut self,
        name: &str,
        attributes: &[(String, String)],
    ) -> Result<()> {
        if self.relations.contains_key(name) {
            return Err(HqlError::Duplicate {
                kind: "relation",
                name: name.to_string(),
            });
        }
        let attrs = attributes
            .iter()
            .map(|(attr, dom)| Ok(Attribute::new(attr.clone(), self.domain(dom)?.clone())))
            .collect::<Result<Vec<_>>>()?;
        let schema = Arc::new(Schema::new(attrs));
        self.relations.insert(
            name.to_string(),
            Arc::new(RelationEntry {
                relation: Arc::new(HRelation::new(schema)),
                signature: attributes.to_vec(),
            }),
        );
        Ok(())
    }

    /// The name of some relation whose schema references `domain`, if
    /// any — the `DROP DOMAIN` InUse guard, and what a sharded
    /// coordinator probes on every shard before broadcasting a drop.
    pub fn domain_user(&self, domain: &str) -> Option<String> {
        self.relations
            .iter()
            .find(|(_, e)| e.signature.iter().any(|(_, d)| d == domain))
            .map(|(n, _)| n.clone())
    }

    /// Remove a domain no relation references (mirrors
    /// `Catalog::apply_mutation`'s InUse guard, keyed on the signature
    /// rather than `Arc` identity — equivalent, since every relation
    /// over the domain shares its graph by name).
    pub(crate) fn drop_domain(&mut self, name: &str) -> Result<()> {
        if !self.domains.contains_key(name) {
            return Err(HqlError::Unknown {
                kind: "domain",
                name: name.to_string(),
            });
        }
        if let Some(by) = self.domain_user(name) {
            return Err(CoreError::InUse {
                kind: "domain",
                name: name.to_string(),
                by,
            }
            .into());
        }
        self.domains.remove(name);
        Ok(())
    }

    /// Remove a stored relation. If it was a live view, its definition
    /// goes with it; views *depending* on it fail on their next
    /// maintenance pass (the caller records a reset delta, so that pass
    /// is this very statement and the failure is atomic).
    pub(crate) fn drop_relation(&mut self, name: &str) -> Result<()> {
        if self.relations.remove(name).is_none() {
            return Err(HqlError::Unknown {
                kind: "relation",
                name: name.to_string(),
            });
        }
        self.views.retain(|v| v.name != name);
        Ok(())
    }

    /// Move a relation to a new name. A live view named `from` detaches
    /// (the stored tuples survive under `to` as a plain relation); views
    /// depending on `from` fail atomically via the caller's reset delta.
    pub(crate) fn rename_relation(&mut self, from: &str, to: &str) -> Result<()> {
        if self.relations.contains_key(to) {
            return Err(HqlError::Duplicate {
                kind: "relation",
                name: to.to_string(),
            });
        }
        let entry = match self.relations.remove(from) {
            Some(e) => e,
            None => {
                return Err(HqlError::Unknown {
                    kind: "relation",
                    name: from.to_string(),
                })
            }
        };
        self.relations.insert(to.to_string(), entry);
        self.views.retain(|v| v.name != from);
        Ok(())
    }

    /// Assert a tuple; returns the rendered item (for the reply) and
    /// the resolved item (for the write's delta).
    pub(crate) fn assert_item(
        &mut self,
        relation: &str,
        values: &[ValueRef],
        truth: Truth,
    ) -> Result<(String, Item)> {
        let rel = self.relation_mut(relation)?;
        let item = resolve_item(rel, values)?;
        let rendered = rel.schema().display_item(&item);
        rel.assert_item(item.clone(), truth)?;
        Ok((rendered, item))
    }

    /// Retract a stored tuple; returns the rendered item (for the
    /// reply) and the resolved item (for the write's delta).
    pub(crate) fn retract_item(
        &mut self,
        relation: &str,
        values: &[ValueRef],
    ) -> Result<(String, Item)> {
        let rel = self.relation_mut(relation)?;
        let item = resolve_item(rel, values)?;
        let rendered = rel.schema().display_item(&item);
        if rel.remove(&item).is_none() {
            return Err(HqlError::Unknown {
                kind: "tuple",
                name: rendered,
            });
        }
        Ok((rendered, item))
    }

    /// Consolidate a relation in place; returns the number of tuples
    /// removed.
    pub(crate) fn consolidate_in_place(&mut self, relation: &str) -> Result<usize> {
        let entry = self.relation_entry_mut(relation)?;
        let result = hrdm_core::consolidate::consolidate(entry.relation.as_ref());
        let removed = result.removed.len();
        entry.relation = Arc::new(result.relation);
        Ok(removed)
    }

    /// Explicate a relation in place; returns the new tuple count.
    pub(crate) fn explicate_in_place(&mut self, relation: &str, attrs: &[String]) -> Result<usize> {
        let entry = self.relation_entry_mut(relation)?;
        let indexes = attr_indexes(entry.relation.as_ref(), attrs)?;
        let result = hrdm_core::explicate::explicate(entry.relation.as_ref(), &indexes)?;
        let tuples = result.len();
        entry.relation = Arc::new(result);
        Ok(tuples)
    }

    pub(crate) fn set_preemption(&mut self, relation: &str, mode: Preemption) -> Result<()> {
        self.relation_mut(relation)?.set_preemption(mode);
        Ok(())
    }

    /// Store a derived relation under a fresh name; returns its stored
    /// tuple count.
    pub(crate) fn store_derived(&mut self, name: &str, relation: HRelation) -> Result<usize> {
        if self.relations.contains_key(name) {
            return Err(HqlError::Duplicate {
                kind: "relation",
                name: name.to_string(),
            });
        }
        let signature: Vec<(String, String)> = relation
            .schema()
            .attributes()
            .iter()
            .map(|a| {
                let domain_name = a.domain().name(a.domain().root()).to_string();
                (a.name().to_string(), domain_name)
            })
            .collect();
        let tuples = relation.len();
        self.relations.insert(
            name.to_string(),
            Arc::new(RelationEntry {
                relation: Arc::new(relation),
                signature,
            }),
        );
        Ok(tuples)
    }

    /// Names of the relations currently live as maintained views.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.iter().map(|v| v.name.as_str())
    }

    /// Whether `name` is a maintained view.
    pub fn is_view(&self, name: &str) -> bool {
        self.views.iter().any(|v| v.name == name)
    }

    /// The `(attribute, domain-root)` signature of a relation's schema,
    /// mirroring [`World::store_derived`]'s bookkeeping.
    fn signature_of(relation: &HRelation) -> Vec<(String, String)> {
        relation
            .schema()
            .attributes()
            .iter()
            .map(|a| {
                let domain_name = a.domain().name(a.domain().root()).to_string();
                (a.name().to_string(), domain_name)
            })
            .collect()
    }

    /// Replace a relation entry wholesale (view maintenance). Takes the
    /// relation as an `Arc` so the entry can alias a materialized
    /// plan's root cache without copying tuples.
    fn set_relation(&mut self, name: &str, relation: Arc<HRelation>) {
        let signature = World::signature_of(&relation);
        self.relations.insert(
            name.to_string(),
            Arc::new(RelationEntry {
                relation,
                signature,
            }),
        );
    }

    /// Build the maintenance machinery for a derivation against the
    /// current world. A top-level `EXPLICATE` over a *derived* source
    /// is pinned to recompute mode (see [`ViewMode::Recompute`]); every
    /// other shape gets a materialized plan — `new_raw` for a top-level
    /// `EXPLICATE` over a named relation (its point is the non-minimal
    /// form the canonicalizing root consolidate would collapse),
    /// canonical otherwise, matching [`World::derive`]'s two paths.
    fn view_mode_of(&self, derivation: &Derivation) -> ViewMode {
        let built = match derivation {
            Derivation::Explicated(Source::Derived(_), _) => None,
            Derivation::Explicated(Source::Named(_), _) => self
                .plan_of(derivation)
                .ok()
                .and_then(|p| MaterializedPlan::new_raw(p).ok()),
            _ => self
                .plan_of(derivation)
                .ok()
                .and_then(|p| MaterializedPlan::new(p).ok()),
        };
        match built {
            Some(mat) => ViewMode::Incremental(mat),
            None => ViewMode::Recompute,
        }
    }

    /// Register a freshly `LET`-bound relation as a live view. Called
    /// after [`World::store_derived`]; from here on the single writer
    /// keeps the stored relation identical to re-deriving `derivation`
    /// from scratch at every epoch.
    pub(crate) fn register_view(&mut self, name: &str, derivation: Derivation) -> Result<()> {
        let plan = self.plan_of(&derivation)?;
        let deps = hrdm_core::differential::scan_names(&plan);
        let mut dep_domains = BTreeSet::new();
        for dep in &deps {
            if let Ok(entry) = self.relation_entry(dep) {
                for (_, dom) in &entry.signature {
                    dep_domains.insert(dom.clone());
                }
            }
        }
        let mode = self.view_mode_of(&derivation);
        self.views.push(Arc::new(ViewDef {
            name: name.to_string(),
            derivation,
            deps,
            dep_domains,
            mode,
        }));
        Ok(())
    }

    /// Bring every registered view up to date with one committed
    /// write's `delta`, in registration order (so a view over another
    /// view sees its input's fresh rows). Each view takes the cheapest
    /// sound path:
    ///
    /// * none of its dependencies changed — untouched;
    /// * the statement wrote the view's relation directly — the view
    ///   **detaches** and its relation stays a plain relation;
    /// * row-level deltas only — differential maintenance through the
    ///   materialized plan;
    /// * a dependency was reset, a dependency's domain was edited, the
    ///   view is recompute-mode, or the differential path errored —
    ///   full recomputation via [`World::derive`].
    ///
    /// Either way the view's output delta is recorded into `delta`
    /// under the view's name, so cascaded views (and the published
    /// epoch delta) see it. An error from the fallback recomputation
    /// propagates: the *statement* fails atomically and publishes
    /// nothing — live views enforce derivability at every epoch.
    pub(crate) fn maintain_views(&mut self, delta: &mut Delta) -> Result<MaintainSummary> {
        let mut summary = MaintainSummary::default();
        if self.views.is_empty() {
            return Ok(summary);
        }
        let views = std::mem::take(&mut self.views);
        let mut kept = Vec::with_capacity(views.len());
        for view in views {
            // A direct write into the view's relation detaches it: the
            // user took ownership of the stored tuples.
            if delta.relations.contains_key(&view.name) {
                summary.detached += 1;
                continue;
            }
            let domain_hit = !delta.domains.is_disjoint(&view.dep_domains);
            let dep_reset = view
                .deps
                .iter()
                .any(|d| matches!(delta.relations.get(d), Some(RelationChange::Reset)));
            let mut rows: BTreeMap<String, RelationDelta> = BTreeMap::new();
            for dep in &view.deps {
                if let Some(RelationChange::Rows(rd)) = delta.relations.get(dep) {
                    if !rd.is_empty() {
                        rows.insert(dep.clone(), rd.clone());
                    }
                }
            }
            if !domain_hit && !dep_reset && rows.is_empty() {
                kept.push(view);
                continue;
            }

            let mut incremental = None;
            if !domain_hit && !dep_reset {
                if let ViewMode::Incremental(mat) = &view.mode {
                    // Post-write base relations, shared so the plan's
                    // scan caches alias them instead of copying.
                    let mut bases: BTreeMap<String, Arc<HRelation>> = BTreeMap::new();
                    for dep in rows.keys() {
                        if let Ok(entry) = self.relation_entry(dep) {
                            bases.insert(dep.clone(), entry.relation.clone());
                        }
                    }
                    // Any differential error falls through to the full
                    // recomputation below.
                    if let Ok((next, out_delta, _)) = mat.apply_with_bases(&rows, &bases) {
                        incremental = Some((next, out_delta));
                    }
                }
            }
            let old_preemption = self.relation(&view.name)?.preemption();
            let (relation, out_delta, mode) = match incremental {
                Some((next, out_delta)) => {
                    summary.maintained += 1;
                    // Share the plan's root cache — no per-write copy
                    // of the view's tuples.
                    let rel = next.relation_arc();
                    (rel, out_delta, ViewMode::Incremental(next))
                }
                None => {
                    summary.fallback += 1;
                    let derived = self.derive(&view.derivation)?;
                    let old = self.relation(&view.name)?;
                    let out_delta = RelationDelta::diff(old, &derived);
                    let mode = {
                        // Rebuild against the post-write world so later
                        // epochs can go differential again.
                        self.view_mode_of(&view.derivation)
                    };
                    (Arc::new(derived), out_delta, mode)
                }
            };
            let mode_changed = relation.preemption() != old_preemption;
            self.set_relation(&view.name, relation);
            if mode_changed {
                // A preemption-mode flip is invisible to a row diff but
                // changes downstream semantics; cascade it as a reset so
                // dependent views rebuild their caches.
                delta
                    .relations
                    .insert(view.name.clone(), RelationChange::Reset);
            } else if !out_delta.is_empty() {
                delta
                    .relations
                    .insert(view.name.clone(), RelationChange::Rows(out_delta));
            }
            kept.push(Arc::new(ViewDef {
                name: view.name.clone(),
                derivation: view.derivation.clone(),
                deps: view.deps.clone(),
                dep_domains: view.dep_domains.clone(),
                mode,
            }));
        }
        self.views = kept;
        Ok(summary)
    }

    /// Snapshot the world as a persistence image.
    pub fn to_image(&self) -> hrdm_persist::Image {
        let mut image = hrdm_persist::Image::new();
        for (name, arc) in &self.domains {
            image.add_domain(name.clone(), arc.clone());
        }
        for (name, entry) in &self.relations {
            image.add_relation(name.clone(), entry.relation.as_ref().clone());
        }
        image
    }

    /// Build a world from a persistence image.
    pub fn from_image(image: hrdm_persist::Image) -> World {
        let mut world = World::new();
        let domain_names: Vec<String> = image.domain_names().map(String::from).collect();
        for name in &domain_names {
            let arc = image.domain(name).expect("listed").clone();
            world.domains.insert(name.clone(), arc);
        }
        let relation_names: Vec<String> = image.relation_names().map(String::from).collect();
        for name in relation_names {
            let rel = image.relation(&name).expect("listed").clone();
            let signature: Vec<(String, String)> = rel
                .schema()
                .attributes()
                .iter()
                .map(|a| {
                    (
                        a.name().to_string(),
                        a.domain().name(a.domain().root()).to_string(),
                    )
                })
                .collect();
            world.relations.insert(
                name,
                Arc::new(RelationEntry {
                    relation: Arc::new(rel),
                    signature,
                }),
            );
        }
        world
    }

    /// Evaluate a derivation by building a [`LogicalPlan`], optimizing
    /// it, and executing the optimized form. Plan execution returns the
    /// *canonical* (consolidated, §3.3.1) relation of the query's flat
    /// model, so one exception applies: a top-level `EXPLICATE` is
    /// lowered directly — its whole point is the explicit, non-minimal
    /// form, which the final consolidate would collapse straight back.
    ///
    /// Physical execution is batch-at-a-time
    /// ([`hrdm_core::batch::execute_batch`]) over a plan reordered by
    /// the measured cost model
    /// ([`hrdm_core::cost::optimize_with_cost`] with
    /// [`hrdm_core::cost::CostModel::from_registry`]); both are proven
    /// byte-identical to
    /// the tuple path by the core parity suites, so HQL semantics are
    /// untouched.
    pub(crate) fn derive(&self, derivation: &Derivation) -> Result<HRelation> {
        if let Derivation::Explicated(src, attrs) = derivation {
            let input = self.source_relation(src)?;
            let indexes = attr_indexes(&input, attrs)?;
            return Ok(hrdm_core::explicate::explicate(&input, &indexes)?);
        }
        let model = hrdm_core::cost::CostModel::from_registry();
        let (optimized, _rewrites) =
            hrdm_core::cost::optimize_with_cost(&self.plan_of(derivation)?, &model);
        Ok(hrdm_core::batch::execute_batch(&optimized)?.relation)
    }

    /// Materialize an operand: a named relation is cloned as-is; a
    /// nested derivation is evaluated like any `LET` right-hand side.
    fn source_relation(&self, src: &Source) -> Result<HRelation> {
        match src {
            Source::Named(name) => Ok(self.relation_entry(name)?.relation.as_ref().clone()),
            Source::Derived(inner) => self.derive(inner),
        }
    }

    /// An operand as a plan node: scans stay leaves, nested derivations
    /// inline into the surrounding tree so rewrites can cross them.
    fn source_plan(&self, src: &Source) -> Result<LogicalPlan> {
        match src {
            Source::Named(name) => {
                let entry = self.relation_entry(name)?;
                Ok(LogicalPlan::scan(
                    name.clone(),
                    entry.relation.as_ref().clone(),
                ))
            }
            Source::Derived(inner) => self.plan_of(inner),
        }
    }

    /// Build the logical plan of a derivation (no execution). Attribute
    /// names resolve against the plan's inferred output schema, so
    /// projections and explications over nested derivations see the
    /// composed layout (e.g. a join's merged attribute list).
    pub(crate) fn plan_of(&self, derivation: &Derivation) -> Result<LogicalPlan> {
        Ok(match derivation {
            Derivation::Union(a, b) => self.source_plan(a)?.union(self.source_plan(b)?),
            Derivation::Intersect(a, b) => self.source_plan(a)?.intersect(self.source_plan(b)?),
            Derivation::Difference(a, b) => self.source_plan(a)?.diff(self.source_plan(b)?),
            Derivation::Join(a, b) => self.source_plan(a)?.join(self.source_plan(b)?),
            Derivation::Project(a, attrs) => {
                let p = self.source_plan(a)?;
                let schema = p.output_schema()?;
                let indexes = attrs
                    .iter()
                    .map(|n| Ok(schema.index_of(n)?))
                    .collect::<Result<Vec<_>>>()?;
                p.project(indexes)
            }
            Derivation::Select(a, conds) => {
                let mut p = self.source_plan(a)?;
                for (attr, value) in conds {
                    p = p.select_eq(attr.clone(), value.name.clone());
                }
                p
            }
            Derivation::Consolidated(a) => self.source_plan(a)?.consolidate(),
            Derivation::Explicated(a, attrs) => {
                let p = self.source_plan(a)?;
                let schema = p.output_schema()?;
                let indexes = if attrs.is_empty() {
                    (0..schema.arity()).collect()
                } else {
                    attrs
                        .iter()
                        .map(|n| Ok(schema.index_of(n)?))
                        .collect::<Result<Vec<_>>>()?
                };
                p.explicate(indexes)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let mut w = World::new();
        w.create_domain("D").unwrap();
        w.create_relation("R", &[("V".into(), "D".into())]).unwrap();
        let copy = w.clone();
        // Same Arcs on both sides until someone mutates.
        assert!(Arc::ptr_eq(
            w.domain("D").unwrap(),
            copy.domain("D").unwrap()
        ));
        assert!(Arc::ptr_eq(&w.relations["R"], &copy.relations["R"]));
    }

    #[test]
    fn mutating_a_copy_leaves_the_original_untouched() {
        let mut w = World::new();
        w.create_domain("D").unwrap();
        w.add_class("A", &["D".into()]).unwrap();
        w.create_relation("R", &[("V".into(), "D".into())]).unwrap();
        let mut copy = w.clone();
        copy.add_class("B", &["A".into()]).unwrap();
        copy.assert_item(
            "R",
            &[ValueRef {
                name: "A".into(),
                all: true,
            }],
            Truth::Positive,
        )
        .unwrap();
        // The original still has the pre-mutation graph and relation.
        assert!(w.domain("D").unwrap().node("B").is_err());
        assert_eq!(w.relation("R").unwrap().len(), 0);
        assert!(copy.domain("D").unwrap().node("B").is_ok());
        assert_eq!(copy.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn image_round_trip() {
        let mut w = World::new();
        w.create_domain("D").unwrap();
        w.add_class("A", &["D".into()]).unwrap();
        w.create_relation("R", &[("V".into(), "D".into())]).unwrap();
        w.assert_item(
            "R",
            &[ValueRef {
                name: "A".into(),
                all: true,
            }],
            Truth::Positive,
        )
        .unwrap();
        let restored = World::from_image(w.to_image());
        assert_eq!(restored.domain_count(), 1);
        assert_eq!(restored.relation("R").unwrap().len(), 1);
        // Domain handle identity links the restored relation's schema to
        // the restored domain map (join compatibility is Arc identity).
        assert!(Arc::ptr_eq(
            restored.domain("D").unwrap(),
            restored.relation("R").unwrap().schema().attributes()[0].domain()
        ));
    }
}
