//! Recursive-descent parser for HQL.

use crate::ast::{Derivation, Source, Statement, ValueRef};
use crate::error::{HqlError, Result};
use crate::lexer::{lex, Token};

/// Parse a script into statements (semicolon-separated; the final
/// semicolon is optional).
pub fn parse(input: &str) -> Result<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, at: 0 };
    let mut out = Vec::new();
    while !p.done() {
        // Tolerate stray semicolons.
        if p.eat(&Token::Semicolon) {
            continue;
        }
        out.push(p.statement()?);
        if !p.done() {
            p.expect(&Token::Semicolon, "';' between statements")?;
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn done(&self) -> bool {
        self.at >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn err(&self, expected: &str) -> HqlError {
        HqlError::Parse {
            found: self
                .peek()
                .map(Token::render)
                .unwrap_or_else(|| "end of input".into()),
            expected: expected.into(),
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("keyword {kw}")))
        }
    }

    fn name(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(t) if t.as_name().is_some() => {
                let n = t.as_name().expect("checked").to_string();
                self.at += 1;
                Ok(n)
            }
            _ => Err(self.err(what)),
        }
    }

    fn name_list(&mut self, what: &str) -> Result<Vec<String>> {
        let mut out = vec![self.name(what)?];
        while self.eat(&Token::Comma) {
            out.push(self.name(what)?);
        }
        Ok(out)
    }

    fn value(&mut self) -> Result<ValueRef> {
        let all = self.eat_kw("all");
        let name = self.name("a value name")?;
        Ok(ValueRef { name, all })
    }

    fn value_tuple(&mut self) -> Result<Vec<ValueRef>> {
        self.expect(&Token::LParen, "'('")?;
        let mut out = vec![self.value()?];
        while self.eat(&Token::Comma) {
            out.push(self.value()?);
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(out)
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            return self.create();
        }
        if self.eat_kw("prefer") {
            let stronger = self.name("a class name")?;
            self.expect_kw("over")?;
            let weaker = self.name("a class name")?;
            self.expect_kw("in")?;
            let domain = self.name("a domain name")?;
            return Ok(Statement::Prefer {
                stronger,
                weaker,
                domain,
            });
        }
        if self.eat_kw("assert") {
            let negated = self.eat_kw("not");
            let relation = self.name("a relation name")?;
            let values = self.value_tuple()?;
            return Ok(Statement::Assert {
                relation,
                negated,
                values,
            });
        }
        if self.eat_kw("retract") {
            let relation = self.name("a relation name")?;
            let values = self.value_tuple()?;
            return Ok(Statement::Retract { relation, values });
        }
        if self.eat_kw("holds3") {
            let relation = self.name("a relation name")?;
            let values = self.value_tuple()?;
            return Ok(Statement::Holds3 { relation, values });
        }
        if self.eat_kw("holds") {
            let relation = self.name("a relation name")?;
            let values = self.value_tuple()?;
            return Ok(Statement::Holds { relation, values });
        }
        if self.eat_kw("why") {
            let relation = self.name("a relation name")?;
            let values = self.value_tuple()?;
            return Ok(Statement::Why { relation, values });
        }
        if self.eat_kw("check") {
            let relation = self.name("a relation name")?;
            return Ok(Statement::Check { relation });
        }
        if self.eat_kw("show") {
            if self.eat_kw("domain") {
                let name = self.name("a domain name")?;
                return Ok(Statement::ShowDomain { name });
            }
            let relation = self.name("a relation name")?;
            return Ok(Statement::Show { relation });
        }
        if self.eat_kw("consolidate") {
            let relation = self.name("a relation name")?;
            return Ok(Statement::Consolidate { relation });
        }
        if self.eat_kw("explicate") {
            let relation = self.name("a relation name")?;
            let attrs = if self.eat_kw("on") {
                self.name_list("an attribute name")?
            } else {
                Vec::new()
            };
            return Ok(Statement::Explicate { relation, attrs });
        }
        if self.eat_kw("set") {
            self.expect_kw("preemption")?;
            let relation = self.name("a relation name")?;
            let mode = self.name("OFF-PATH, ON-PATH, or NONE")?;
            return Ok(Statement::SetPreemption { relation, mode });
        }
        if self.eat_kw("save") {
            let path = self.name("a file path (quote it)")?;
            return Ok(Statement::Save { path });
        }
        if self.eat_kw("load") {
            let path = self.name("a file path (quote it)")?;
            return Ok(Statement::Load { path });
        }
        if self.eat_kw("open") {
            let dir = self.name("a store directory path (quote it)")?;
            let sync_every = if self.eat_kw("sync") {
                self.expect_kw("every")?;
                let word = self.name("a group-commit width")?;
                let n = word.parse::<u64>().map_err(|_| HqlError::Parse {
                    found: word,
                    expected: "a positive integer after SYNC EVERY".into(),
                })?;
                if n == 0 {
                    return Err(HqlError::Parse {
                        found: "0".into(),
                        expected: "a positive integer after SYNC EVERY".into(),
                    });
                }
                Some(n)
            } else {
                None
            };
            return Ok(Statement::Open { dir, sync_every });
        }
        if self.eat_kw("checkpoint") {
            return Ok(Statement::Checkpoint);
        }
        if self.eat_kw("count") {
            let relation = self.name("a relation name")?;
            let by = if self.eat_kw("by") {
                Some(self.name("an attribute name")?)
            } else {
                None
            };
            return Ok(Statement::Count { relation, by });
        }
        if self.eat_kw("let") {
            let name = self.name("a new relation name")?;
            self.expect(&Token::Equals, "'='")?;
            let derivation = self.derivation()?;
            return Ok(Statement::Let { name, derivation });
        }
        if self.eat_kw("explain") {
            let derivation = self.derivation()?;
            return Ok(Statement::Explain { derivation });
        }
        if self.eat_kw("trace") {
            let derivation = self.derivation()?;
            return Ok(Statement::Trace { derivation });
        }
        if self.eat_kw("drop") {
            if self.eat_kw("domain") {
                let name = self.name("a domain name")?;
                return Ok(Statement::DropDomain { name });
            }
            self.expect_kw("relation")
                .map_err(|_| self.err("DOMAIN or RELATION after DROP"))?;
            let name = self.name("a relation name")?;
            return Ok(Statement::DropRelation { name });
        }
        if self.eat_kw("rename") {
            self.expect_kw("relation")?;
            let from = self.name("a relation name")?;
            self.expect_kw("to")?;
            let to = self.name("a new relation name")?;
            return Ok(Statement::RenameRelation { from, to });
        }
        Err(self.err("a statement keyword"))
    }

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("domain") {
            let name = self.name("a domain name")?;
            return Ok(Statement::CreateDomain { name });
        }
        if self.eat_kw("class") {
            let name = self.name("a class name")?;
            self.expect_kw("under")?;
            let parents = self.name_list("a parent name")?;
            return Ok(Statement::CreateClass { name, parents });
        }
        if self.eat_kw("instance") {
            let name = self.name("an instance name")?;
            self.expect_kw("of")?;
            let parents = self.name_list("a parent name")?;
            return Ok(Statement::CreateInstance { name, parents });
        }
        if self.eat_kw("relation") {
            let name = self.name("a relation name")?;
            self.expect(&Token::LParen, "'('")?;
            let mut attributes = Vec::new();
            loop {
                let attr = self.name("an attribute name")?;
                self.expect(&Token::Colon, "':'")?;
                let domain = self.name("a domain name")?;
                attributes.push((attr, domain));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "')'")?;
            return Ok(Statement::CreateRelation { name, attributes });
        }
        Err(self.err("DOMAIN, CLASS, INSTANCE, or RELATION after CREATE"))
    }

    /// A derivation operand: a relation name, or a parenthesized
    /// derivation (so operator compositions are one statement and the
    /// planner sees the whole tree).
    fn source(&mut self) -> Result<Source> {
        if self.eat(&Token::LParen) {
            let inner = self.derivation()?;
            self.expect(&Token::RParen, "')' after nested derivation")?;
            return Ok(Source::Derived(Box::new(inner)));
        }
        Ok(Source::Named(
            self.name("a relation name or '(' derivation ')'")?,
        ))
    }

    fn derivation(&mut self) -> Result<Derivation> {
        if self.eat_kw("union") {
            return Ok(Derivation::Union(self.source()?, self.source()?));
        }
        if self.eat_kw("intersect") {
            return Ok(Derivation::Intersect(self.source()?, self.source()?));
        }
        if self.eat_kw("difference") {
            return Ok(Derivation::Difference(self.source()?, self.source()?));
        }
        if self.eat_kw("join") {
            return Ok(Derivation::Join(self.source()?, self.source()?));
        }
        if self.eat_kw("project") {
            let rel = self.source()?;
            self.expect(&Token::LParen, "'('")?;
            let attrs = self.name_list("an attribute name")?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(Derivation::Project(rel, attrs));
        }
        if self.eat_kw("select") {
            let rel = self.source()?;
            self.expect_kw("where")?;
            let mut conds = Vec::new();
            loop {
                let attr = self.name("an attribute name")?;
                self.expect_kw("is")?;
                let value = self.value()?;
                conds.push((attr, value));
                if !self.eat_kw("and") {
                    break;
                }
            }
            return Ok(Derivation::Select(rel, conds));
        }
        if self.eat_kw("consolidate") {
            return Ok(Derivation::Consolidated(self.source()?));
        }
        if self.eat_kw("explicate") {
            let rel = self.source()?;
            let attrs = if self.eat_kw("on") {
                self.name_list("an attribute name")?
            } else {
                Vec::new()
            };
            return Ok(Derivation::Explicated(rel, attrs));
        }
        Err(self
            .err("UNION, INTERSECT, DIFFERENCE, JOIN, PROJECT, SELECT, CONSOLIDATE, or EXPLICATE"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ddl() {
        let stmts = parse(
            r#"
            CREATE DOMAIN Animal;
            CREATE CLASS Bird UNDER Animal;
            CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
            CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
            CREATE RELATION Flies (Creature: Animal);
            "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 5);
        assert_eq!(
            stmts[0],
            Statement::CreateDomain {
                name: "Animal".into()
            }
        );
        match &stmts[3] {
            Statement::CreateInstance { name, parents } => {
                assert_eq!(name, "Patricia");
                assert_eq!(parents.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[4] {
            Statement::CreateRelation { attributes, .. } => {
                assert_eq!(attributes[0], ("Creature".into(), "Animal".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_assertions() {
        let stmts = parse(
            "ASSERT Flies (ALL Bird);\
             ASSERT NOT Flies (ALL Penguin);\
             RETRACT Flies (ALL Penguin);",
        )
        .unwrap();
        match &stmts[0] {
            Statement::Assert {
                negated, values, ..
            } => {
                assert!(!negated);
                assert!(values[0].all);
                assert_eq!(values[0].name, "Bird");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&stmts[1], Statement::Assert { negated: true, .. }));
        assert!(matches!(&stmts[2], Statement::Retract { .. }));
    }

    #[test]
    fn parse_queries_and_physical_ops() {
        let stmts = parse(
            "HOLDS Flies (Tweety);\
             WHY Flies (Paul);\
             CHECK Flies;\
             SHOW Flies;\
             SHOW DOMAIN Animal;\
             CONSOLIDATE Flies;\
             EXPLICATE Flies ON Creature;\
             SET PREEMPTION Flies ON-PATH;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 8);
        assert!(matches!(&stmts[4], Statement::ShowDomain { .. }));
        match &stmts[6] {
            Statement::Explicate { attrs, .. } => assert_eq!(attrs, &["Creature"]),
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[7] {
            Statement::SetPreemption { mode, .. } => assert_eq!(mode, "ON-PATH"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_derivations() {
        let stmts = parse(
            "LET U = UNION A B;\
             LET J = JOIN Sizes Colors;\
             LET P = PROJECT J (Animal, Color);\
             LET S = SELECT R WHERE Student IS ALL \"Obsequious Student\" AND Teacher IS Smith;\
             LET C = CONSOLIDATE A;\
             LET E = EXPLICATE A;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 6);
        match &stmts[3] {
            Statement::Let {
                derivation: Derivation::Select(rel, conds),
                ..
            } => {
                assert_eq!(rel, &Source::named("R"));
                assert_eq!(conds.len(), 2);
                assert!(conds[0].1.all);
                assert!(!conds[1].1.all);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_nested_derivations_and_explain() {
        let stmts = parse(
            "LET S = SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;\
             EXPLAIN JOIN (UNION A B) Sizes;",
        )
        .unwrap();
        match &stmts[0] {
            Statement::Let {
                derivation: Derivation::Select(Source::Derived(inner), conds),
                ..
            } => {
                assert_eq!(
                    **inner,
                    Derivation::Explicated(Source::named("Flies"), vec![])
                );
                assert_eq!(conds.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[1] {
            Statement::Explain {
                derivation: Derivation::Join(Source::Derived(inner), right),
            } => {
                assert_eq!(
                    **inner,
                    Derivation::Union(Source::named("A"), Source::named("B"))
                );
                assert_eq!(right, &Source::named("Sizes"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // An unclosed nested derivation is a parse error.
        assert!(parse("LET X = UNION (JOIN A B C;").is_err());
    }

    #[test]
    fn trace_statement_parses() {
        let stmts = parse("TRACE SELECT Flying WHERE Creature IS ALL Penguin;").unwrap();
        assert_eq!(stmts.len(), 1);
        match &stmts[0] {
            Statement::Trace {
                derivation: Derivation::Select(src, conds),
            } => {
                assert_eq!(src, &Source::named("Flying"));
                assert_eq!(conds.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_open_and_checkpoint() {
        let stmts = parse("OPEN \"/tmp/store\" SYNC EVERY 8; CHECKPOINT; OPEN db;").unwrap();
        assert_eq!(
            stmts[0],
            Statement::Open {
                dir: "/tmp/store".into(),
                sync_every: Some(8),
            }
        );
        assert_eq!(stmts[1], Statement::Checkpoint);
        assert_eq!(
            stmts[2],
            Statement::Open {
                dir: "db".into(),
                sync_every: None,
            }
        );
        assert!(parse("OPEN \"x\" SYNC EVERY zero;").is_err());
        assert!(parse("OPEN \"x\" SYNC EVERY 0;").is_err());
        assert!(parse("OPEN \"x\" SYNC 4;").is_err());
    }

    #[test]
    fn parse_drop_and_rename() {
        let stmts = parse(
            "DROP DOMAIN Animal;\
             DROP RELATION Flies;\
             RENAME RELATION Flies TO Flying;",
        )
        .unwrap();
        assert_eq!(
            stmts[0],
            Statement::DropDomain {
                name: "Animal".into()
            }
        );
        assert_eq!(
            stmts[1],
            Statement::DropRelation {
                name: "Flies".into()
            }
        );
        assert_eq!(
            stmts[2],
            Statement::RenameRelation {
                from: "Flies".into(),
                to: "Flying".into(),
            }
        );
        assert!(parse("DROP TABLE x;").is_err());
        assert!(parse("RENAME RELATION A B;").is_err());
        // Round-trip through Display.
        for s in &stmts {
            assert_eq!(parse(&s.to_string()).unwrap()[0], *s);
        }
    }

    #[test]
    fn trailing_semicolon_optional() {
        assert_eq!(parse("SHOW R").unwrap().len(), 1);
        assert_eq!(parse("SHOW R;;;").unwrap().len(), 1);
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let e = parse("CREATE TABLE x").unwrap_err();
        assert!(e.to_string().contains("DOMAIN, CLASS"));
        let e = parse("ASSERT Flies Tweety").unwrap_err();
        assert!(e.to_string().contains("'('"));
        let e = parse("SHOW R CHECK R").unwrap_err();
        assert!(e.to_string().contains("';'"));
        let e = parse("LET X = FROBNICATE A").unwrap_err();
        assert!(e.to_string().contains("UNION"));
    }
}
