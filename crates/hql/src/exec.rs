//! The HQL session: name resolution and statement execution.
//!
//! A [`Session`] owns the mutable domain graphs and the relations over
//! them. Because relations share their domain graphs through `Arc`s
//! (join compatibility is `Arc` identity), any DDL that *mutates* a
//! domain — `CREATE CLASS`, `CREATE INSTANCE`, `PREFER` — re-shares a
//! fresh `Arc` across every relation on that domain. Node ids are stable
//! under node/edge addition, so the stored tuples carry over verbatim.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use hrdm_core::consolidate::consolidate;
use hrdm_core::justify::justify;
use hrdm_core::mutation::CatalogMutation;
use hrdm_core::plan::LogicalPlan;
use hrdm_core::prelude::*;
use hrdm_core::render::render_table;
use hrdm_hierarchy::HierarchyGraph;
use hrdm_persist::{Image, Journal};

use crate::ast::{Derivation, Source, Statement, ValueRef};
use crate::error::{HqlError, Result};
use crate::parser::parse;

/// The result of one executed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Generic success with a human-readable summary.
    Ok(String),
    /// A rendered relation table.
    Table(String),
    /// A `HOLDS` answer (`None` = conflicted/ambiguous).
    Truth {
        /// The queried item, rendered.
        item: String,
        /// The closed-world answer, or `None` on conflict.
        value: Option<bool>,
    },
    /// A `WHY` justification, rendered.
    Justification(String),
    /// A `CHECK` report: the conflicted items (empty = consistent).
    Conflicts(Vec<String>),
    /// A `SHOW DOMAIN` Graphviz document.
    Dot(String),
    /// An `EXPLAIN` report: the optimized plan tree plus the rewrite
    /// rules that fired.
    Plan(String),
    /// A `TRACE` report: the executed span tree with per-node rows,
    /// wall time and cache attribution, plus the rewrites that fired.
    Trace(String),
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ok(msg) => write!(f, "{msg}"),
            Response::Table(t) => write!(f, "{t}"),
            Response::Truth { item, value } => match value {
                Some(v) => write!(f, "{item}: {v}"),
                None => write!(f, "{item}: conflict"),
            },
            Response::Justification(j) => write!(f, "{j}"),
            Response::Conflicts(items) if items.is_empty() => write!(f, "consistent"),
            Response::Conflicts(items) => {
                write!(f, "conflicts at: {}", items.join(", "))
            }
            Response::Dot(d) => write!(f, "{d}"),
            Response::Plan(p) => write!(f, "{p}"),
            Response::Trace(t) => write!(f, "{t}"),
        }
    }
}

/// An interactive HQL session.
#[derive(Default)]
pub struct Session {
    /// Mutable master copies of the domain graphs.
    domains: BTreeMap<String, HierarchyGraph>,
    /// The shared handles currently referenced by relations.
    shared: BTreeMap<String, Arc<HierarchyGraph>>,
    /// Relations plus their (attribute, domain-name) signatures.
    relations: BTreeMap<String, (HRelation, Vec<(String, String)>)>,
    /// The write-ahead journal of an `OPEN`ed durable store, if any.
    /// Statements in the WAL vocabulary (DDL, assertions, retractions,
    /// preemption changes) append mutation records; whole-state changes
    /// (`LET`, in-place `CONSOLIDATE`/`EXPLICATE`, `LOAD`) take an
    /// implicit checkpoint instead.
    journal: Option<Journal>,
}

impl Session {
    /// A fresh, empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Names of the defined relations.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Access a relation by name (for embedding HQL in a larger
    /// program).
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.relations
            .get(name)
            .map(|(r, _)| r)
            .ok_or_else(|| HqlError::Unknown {
                kind: "relation",
                name: name.to_string(),
            })
    }

    /// LSN of the attached store, if one is `OPEN` (= mutations recorded
    /// since the store's birth).
    pub fn journal_lsn(&self) -> Option<u64> {
        self.journal.as_ref().map(Journal::next_lsn)
    }

    /// Flush and fsync any buffered WAL records of the open store.
    /// A no-op when no store is attached.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.sync().map_err(|e| HqlError::Core(e.to_string()))?;
        }
        Ok(())
    }

    /// Append one mutation record to the open store's WAL (no-op when
    /// detached). Called only after the session applied the change.
    fn journal_record(&mut self, m: CatalogMutation) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.record(&m).map_err(|e| HqlError::Core(e.to_string()))?;
        }
        Ok(())
    }

    /// Checkpoint the open store from the session's current state —
    /// used after changes outside the WAL vocabulary (`LET`, in-place
    /// operators, `LOAD`), which only an image can carry.
    fn journal_checkpoint(&mut self) -> Result<()> {
        if self.journal.is_none() {
            return Ok(());
        }
        let image = self.to_image();
        let j = self.journal.as_mut().expect("checked above");
        j.checkpoint(&image)
            .map_err(|e| HqlError::Core(e.to_string()))?;
        Ok(())
    }

    /// Parse and execute a script; returns one response per statement.
    pub fn execute(&mut self, script: &str) -> Result<Vec<Response>> {
        let statements = parse(script)?;
        let mut out = Vec::with_capacity(statements.len());
        for stmt in statements {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    fn domain_mut(&mut self, name: &str) -> Result<&mut HierarchyGraph> {
        self.domains.get_mut(name).ok_or_else(|| HqlError::Unknown {
            kind: "domain",
            name: name.to_string(),
        })
    }

    /// The domain that contains all the given node names (for resolving
    /// `UNDER`/`OF` parents).
    fn domain_containing(&self, names: &[String]) -> Result<String> {
        let mut hits: Vec<&String> = self
            .domains
            .iter()
            .filter(|(_, g)| names.iter().all(|n| g.node(n).is_ok()))
            .map(|(d, _)| d)
            .collect();
        match hits.len() {
            1 => Ok(hits.remove(0).clone()),
            0 => Err(HqlError::Unknown {
                kind: "class",
                name: names.join(", "),
            }),
            _ => Err(HqlError::Core(format!(
                "parents {names:?} exist in several domains; qualify with distinct names"
            ))),
        }
    }

    /// After mutating `domain`, re-share one fresh `Arc` across every
    /// relation that references it (node ids are stable, so tuples are
    /// reused as-is).
    fn reshare(&mut self, domain: &str) {
        let fresh = Arc::new(self.domains[domain].clone());
        self.shared.insert(domain.to_string(), fresh.clone());
        let names: Vec<String> = self
            .relations
            .iter()
            .filter(|(_, (_, sig))| sig.iter().any(|(_, d)| d == domain))
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            let (old, sig) = self.relations.remove(&name).expect("listed above");
            let attrs: Vec<Attribute> = sig
                .iter()
                .map(|(attr, dom)| Attribute::new(attr.clone(), self.shared[dom].clone()))
                .collect();
            let schema = Arc::new(Schema::new(attrs));
            let mut rebuilt = HRelation::with_preemption(schema, old.preemption());
            for (item, truth) in old.iter() {
                rebuilt
                    .insert(Tuple::new(item.clone(), truth))
                    .expect("node ids are stable across domain growth");
            }
            self.relations.insert(name, (rebuilt, sig));
        }
    }

    fn shared_domain(&mut self, name: &str) -> Result<Arc<HierarchyGraph>> {
        if !self.domains.contains_key(name) {
            return Err(HqlError::Unknown {
                kind: "domain",
                name: name.to_string(),
            });
        }
        if !self.shared.contains_key(name) {
            let arc = Arc::new(self.domains[name].clone());
            self.shared.insert(name.to_string(), arc);
        }
        Ok(self.shared[name].clone())
    }

    fn relation_entry(&self, name: &str) -> Result<&(HRelation, Vec<(String, String)>)> {
        self.relations.get(name).ok_or_else(|| HqlError::Unknown {
            kind: "relation",
            name: name.to_string(),
        })
    }

    /// Resolve a written tuple into an item against a relation's schema.
    fn resolve_item(relation: &HRelation, values: &[ValueRef]) -> Result<Item> {
        let names: Vec<&str> = values.iter().map(|v| v.name.as_str()).collect();
        Ok(relation.item(&names)?)
    }

    fn store_derived(&mut self, name: String, relation: HRelation) -> Result<Response> {
        if self.relations.contains_key(&name) {
            return Err(HqlError::Duplicate {
                kind: "relation",
                name,
            });
        }
        let sig: Vec<(String, String)> = relation
            .schema()
            .attributes()
            .iter()
            .map(|a| {
                let domain_name = a.domain().name(a.domain().root()).to_string();
                (a.name().to_string(), domain_name)
            })
            .collect();
        let tuples = relation.len();
        self.relations.insert(name.clone(), (relation, sig));
        Ok(Response::Ok(format!(
            "relation {name} defined ({tuples} tuples)"
        )))
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<Response> {
        match stmt {
            Statement::CreateDomain { name } => {
                if self.domains.contains_key(&name) {
                    return Err(HqlError::Duplicate {
                        kind: "domain",
                        name,
                    });
                }
                self.domains
                    .insert(name.clone(), HierarchyGraph::new(name.as_str()));
                self.journal_record(CatalogMutation::CreateDomain { name: name.clone() })?;
                Ok(Response::Ok(format!("domain {name} created")))
            }
            Statement::CreateClass { name, parents } => {
                let domain = self.domain_containing(&parents)?;
                let g = self.domain_mut(&domain)?;
                let parent_ids = parents
                    .iter()
                    .map(|p| g.node(p))
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                g.add_class_multi(name.as_str(), &parent_ids)?;
                self.reshare(&domain);
                self.journal_record(CatalogMutation::AddClass {
                    domain: domain.clone(),
                    name: name.clone(),
                    parents,
                })?;
                Ok(Response::Ok(format!("class {name} created in {domain}")))
            }
            Statement::CreateInstance { name, parents } => {
                let domain = self.domain_containing(&parents)?;
                let g = self.domain_mut(&domain)?;
                let parent_ids = parents
                    .iter()
                    .map(|p| g.node(p))
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                g.add_instance_multi(name.as_str(), &parent_ids)?;
                self.reshare(&domain);
                self.journal_record(CatalogMutation::AddInstance {
                    domain: domain.clone(),
                    name: name.clone(),
                    parents,
                })?;
                Ok(Response::Ok(format!("instance {name} created in {domain}")))
            }
            Statement::Prefer {
                stronger,
                weaker,
                domain,
            } => {
                let g = self.domain_mut(&domain)?;
                let s = g.node(&stronger)?;
                let w = g.node(&weaker)?;
                hrdm_hierarchy::preference::prefer(g, s, w)?;
                self.reshare(&domain);
                self.journal_record(CatalogMutation::Prefer {
                    domain: domain.clone(),
                    stronger: stronger.clone(),
                    weaker: weaker.clone(),
                })?;
                Ok(Response::Ok(format!(
                    "{stronger} now dominates {weaker} in {domain}"
                )))
            }
            Statement::CreateRelation { name, attributes } => {
                if self.relations.contains_key(&name) {
                    return Err(HqlError::Duplicate {
                        kind: "relation",
                        name,
                    });
                }
                let attrs = attributes
                    .iter()
                    .map(|(attr, dom)| Ok(Attribute::new(attr.clone(), self.shared_domain(dom)?)))
                    .collect::<Result<Vec<_>>>()?;
                let schema = Arc::new(Schema::new(attrs));
                self.relations
                    .insert(name.clone(), (HRelation::new(schema), attributes.clone()));
                self.journal_record(CatalogMutation::CreateRelation {
                    name: name.clone(),
                    attributes,
                })?;
                Ok(Response::Ok(format!("relation {name} created")))
            }
            Statement::Assert {
                relation,
                negated,
                values,
            } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let item = Self::resolve_item(rel, &values)?;
                let truth = if negated {
                    Truth::Negative
                } else {
                    Truth::Positive
                };
                let rendered = rel.schema().display_item(&item);
                let (rel, _) = self.relations.get_mut(&relation).expect("checked");
                rel.assert_item(item, truth)?;
                self.journal_record(CatalogMutation::Assert {
                    relation: relation.clone(),
                    values: values.iter().map(|v| v.name.clone()).collect(),
                    truth,
                })?;
                Ok(Response::Ok(format!(
                    "asserted {} {rendered} in {relation}",
                    truth.sign()
                )))
            }
            Statement::Retract { relation, values } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let item = Self::resolve_item(rel, &values)?;
                let rendered = rel.schema().display_item(&item);
                let (rel, _) = self.relations.get_mut(&relation).expect("checked");
                if rel.remove(&item).is_none() {
                    return Err(HqlError::Unknown {
                        kind: "tuple",
                        name: rendered,
                    });
                }
                self.journal_record(CatalogMutation::Retract {
                    relation: relation.clone(),
                    values: values.iter().map(|v| v.name.clone()).collect(),
                })?;
                Ok(Response::Ok(format!(
                    "retracted {rendered} from {relation}"
                )))
            }
            Statement::Holds { relation, values } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let item = Self::resolve_item(rel, &values)?;
                let rendered = rel.schema().display_item(&item);
                let value = match rel.bind(&item) {
                    hrdm_core::Binding::Conflict { .. } => None,
                    b => Some(b.truth() == Some(Truth::Positive)),
                };
                Ok(Response::Truth {
                    item: rendered,
                    value,
                })
            }
            Statement::Holds3 { relation, values } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let item = Self::resolve_item(rel, &values)?;
                let rendered = rel.schema().display_item(&item);
                let verdict = match hrdm_core::three_valued::holds3(rel, &item) {
                    hrdm_core::three_valued::Truth3::True => "true",
                    hrdm_core::three_valued::Truth3::False => "false",
                    hrdm_core::three_valued::Truth3::Unknown => "unknown",
                };
                Ok(Response::Ok(format!("{rendered}: {verdict}")))
            }
            Statement::Why { relation, values } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let item = Self::resolve_item(rel, &values)?;
                let j = justify(rel, &item);
                let mut out = format!(
                    "{}: {:?}\napplicable:\n",
                    rel.schema().display_item(&item),
                    j.binding.truth().map(Truth::holds)
                );
                for t in &j.applicable {
                    out.push_str(&format!(
                        "    {} {}\n",
                        t.truth.sign(),
                        rel.schema().display_item(&t.item)
                    ));
                }
                out.push_str("decisive:\n");
                for t in &j.decisive {
                    out.push_str(&format!(
                        "    {} {}\n",
                        t.truth.sign(),
                        rel.schema().display_item(&t.item)
                    ));
                }
                Ok(Response::Justification(out))
            }
            Statement::Check { relation } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let conflicts = hrdm_core::conflict::find_conflicts(rel)
                    .into_iter()
                    .map(|c| rel.schema().display_item(&c.item))
                    .collect();
                Ok(Response::Conflicts(conflicts))
            }
            Statement::Show { relation } => {
                let (rel, _) = self.relation_entry(&relation)?;
                Ok(Response::Table(render_table(rel)))
            }
            Statement::ShowDomain { name } => {
                let g = self.domains.get(&name).ok_or_else(|| HqlError::Unknown {
                    kind: "domain",
                    name: name.clone(),
                })?;
                Ok(Response::Dot(hrdm_hierarchy::dot::to_dot(g, &name)))
            }
            Statement::Consolidate { relation } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let result = consolidate(rel);
                let removed = result.removed.len();
                let (slot, _) = self.relations.get_mut(&relation).expect("checked");
                *slot = result.relation;
                self.journal_checkpoint()?;
                Ok(Response::Ok(format!(
                    "consolidated {relation}: removed {removed} redundant tuple(s)"
                )))
            }
            Statement::Explicate { relation, attrs } => {
                let (rel, _) = self.relation_entry(&relation)?;
                let indexes = Self::attr_indexes(rel, &attrs)?;
                let result = hrdm_core::explicate::explicate(rel, &indexes)?;
                let tuples = result.len();
                let (slot, _) = self.relations.get_mut(&relation).expect("checked");
                *slot = result;
                self.journal_checkpoint()?;
                Ok(Response::Ok(format!(
                    "explicated {relation}: now {tuples} tuple(s)"
                )))
            }
            Statement::SetPreemption { relation, mode } => {
                let preemption = match mode.to_ascii_uppercase().as_str() {
                    "OFF-PATH" => Preemption::OffPath,
                    "ON-PATH" => Preemption::OnPath,
                    "NONE" | "NO-PREEMPTION" => Preemption::NoPreemption,
                    other => {
                        return Err(HqlError::Parse {
                            found: other.to_string(),
                            expected: "OFF-PATH, ON-PATH, or NONE".into(),
                        })
                    }
                };
                let (rel, _) = self.relations.get_mut(&relation).ok_or(HqlError::Unknown {
                    kind: "relation",
                    name: relation.clone(),
                })?;
                rel.set_preemption(preemption);
                self.journal_record(CatalogMutation::SetPreemption {
                    relation: relation.clone(),
                    mode: preemption,
                })?;
                Ok(Response::Ok(format!(
                    "{relation} now uses {preemption} preemption"
                )))
            }
            Statement::Save { path } => {
                let image = self.to_image();
                image
                    .save(&path)
                    .map_err(|e| HqlError::Core(e.to_string()))?;
                Ok(Response::Ok(format!("session saved to {path}")))
            }
            Statement::Load { path } => {
                let image =
                    hrdm_persist::Image::load(&path).map_err(|e| HqlError::Core(e.to_string()))?;
                self.restore(image);
                self.journal_checkpoint()?;
                Ok(Response::Ok(format!(
                    "session restored from {path} ({} domain(s), {} relation(s))",
                    self.domains.len(),
                    self.relations.len()
                )))
            }
            Statement::Open { dir, sync_every } => {
                let path = Path::new(&dir);
                std::fs::create_dir_all(path).map_err(|e| HqlError::Core(e.to_string()))?;
                let recovered =
                    hrdm_persist::recover(path).map_err(|e| HqlError::Core(e.to_string()))?;
                let image = Image::from_catalog(&recovered.catalog);
                let group = sync_every.unwrap_or(1) as usize;
                // Start a fresh generation at the recovered LSN: the
                // checkpoint makes the replayed tail durable and drops
                // any torn bytes, so a re-crash cannot regress.
                let journal = Journal::begin(path, recovered.report.next_lsn(), &image, group)
                    .map_err(|e| HqlError::Core(e.to_string()))?;
                self.restore(image);
                self.journal = Some(journal);
                let r = &recovered.report;
                Ok(Response::Ok(format!(
                    "store {dir} open at lsn {} ({} domain(s), {} relation(s); \
                     {} record(s) replayed, {} byte(s) truncated)",
                    r.next_lsn(),
                    self.domains.len(),
                    self.relations.len(),
                    r.records_replayed,
                    r.truncated_bytes
                )))
            }
            Statement::Checkpoint => {
                if self.journal.is_none() {
                    return Err(HqlError::Core(
                        "no store open; use OPEN \"dir\" first".into(),
                    ));
                }
                let image = self.to_image();
                let j = self.journal.as_mut().expect("checked above");
                let lsn = j
                    .checkpoint(&image)
                    .map_err(|e| HqlError::Core(e.to_string()))?;
                Ok(Response::Ok(format!("checkpoint written at lsn {lsn}")))
            }
            Statement::Count { relation, by } => {
                let (rel, _) = self.relation_entry(&relation)?;
                match by {
                    None => {
                        let n = hrdm_core::ops::cardinality(rel);
                        Ok(Response::Ok(format!(
                            "{relation} has {n} atom(s) in its extension"
                        )))
                    }
                    Some(attr) => {
                        let rows = hrdm_core::ops::group_count_by_name(rel, &attr)?;
                        let mut out = format!("{relation} grouped by {attr}:\n");
                        for (name, count) in rows {
                            out.push_str(&format!("    {name}: {count}\n"));
                        }
                        Ok(Response::Table(out))
                    }
                }
            }
            Statement::Let { name, derivation } => {
                let derived = self.derive(&derivation)?;
                let response = self.store_derived(name, derived)?;
                self.journal_checkpoint()?;
                Ok(response)
            }
            Statement::Explain { derivation } => {
                let plan = self.plan_of(&derivation)?;
                Ok(Response::Plan(plan.explain()))
            }
            Statement::Trace { derivation } => {
                let plan = self.plan_of(&derivation)?;
                let (optimized, rewrites) = plan.optimize();
                let executed = optimized.execute()?;
                let mut out = executed.trace.render();
                if rewrites.is_empty() {
                    out.push_str("no rewrites applied\n");
                } else {
                    out.push_str("rewrites applied:\n");
                    for (k, rw) in rewrites.iter().enumerate() {
                        out.push_str(&format!("  {}. {} — {}\n", k + 1, rw.rule, rw.detail));
                    }
                }
                out.push_str(&format!(
                    "result: {} stored tuple(s), {} canonicalized away\n",
                    executed.relation.len(),
                    executed.canonicalized_away
                ));
                Ok(Response::Trace(out))
            }
        }
    }

    /// Snapshot the session as a persistence image (domains use the
    /// currently shared handles so relation `Arc`s match).
    pub fn to_image(&mut self) -> hrdm_persist::Image {
        let mut image = hrdm_persist::Image::new();
        let domain_names: Vec<String> = self.domains.keys().cloned().collect();
        for name in domain_names {
            let arc = self.shared_domain(&name).expect("domain exists");
            image.add_domain(name, arc);
        }
        for (name, (rel, _)) in &self.relations {
            image.add_relation(name.clone(), rel.clone());
        }
        image
    }

    /// Replace the session's whole state from a persistence image.
    pub fn restore(&mut self, image: hrdm_persist::Image) {
        self.domains.clear();
        self.shared.clear();
        self.relations.clear();
        let domain_names: Vec<String> = image.domain_names().map(String::from).collect();
        for name in &domain_names {
            let arc = image.domain(name).expect("listed").clone();
            self.domains.insert(name.clone(), (*arc).clone());
            self.shared.insert(name.clone(), arc);
        }
        let relation_names: Vec<String> = image.relation_names().map(String::from).collect();
        for name in relation_names {
            let rel = image.relation(&name).expect("listed").clone();
            let sig: Vec<(String, String)> = rel
                .schema()
                .attributes()
                .iter()
                .map(|a| {
                    (
                        a.name().to_string(),
                        a.domain().name(a.domain().root()).to_string(),
                    )
                })
                .collect();
            self.relations.insert(name, (rel, sig));
        }
    }

    fn attr_indexes(rel: &HRelation, attrs: &[String]) -> Result<Vec<usize>> {
        if attrs.is_empty() {
            return Ok((0..rel.schema().arity()).collect());
        }
        attrs
            .iter()
            .map(|a| Ok(rel.schema().index_of(a)?))
            .collect()
    }

    /// Evaluate a derivation by building a [`LogicalPlan`], optimizing
    /// it, and executing the optimized form. Plan execution returns the
    /// *canonical* (consolidated, §3.3.1) relation of the query's flat
    /// model, so one exception applies: a top-level `EXPLICATE` is
    /// lowered directly — its whole point is the explicit, non-minimal
    /// form, which the final consolidate would collapse straight back.
    fn derive(&self, derivation: &Derivation) -> Result<HRelation> {
        if let Derivation::Explicated(src, attrs) = derivation {
            let input = self.source_relation(src)?;
            let indexes = Self::attr_indexes(&input, attrs)?;
            return Ok(hrdm_core::explicate::explicate(&input, &indexes)?);
        }
        let (optimized, _rewrites) = self.plan_of(derivation)?.optimize();
        Ok(optimized.execute()?.relation)
    }

    /// Materialize an operand: a named relation is cloned as-is; a
    /// nested derivation is evaluated like any `LET` right-hand side.
    fn source_relation(&self, src: &Source) -> Result<HRelation> {
        match src {
            Source::Named(name) => Ok(self.relation_entry(name)?.0.clone()),
            Source::Derived(inner) => self.derive(inner),
        }
    }

    /// An operand as a plan node: scans stay leaves, nested derivations
    /// inline into the surrounding tree so rewrites can cross them.
    fn source_plan(&self, src: &Source) -> Result<LogicalPlan> {
        match src {
            Source::Named(name) => {
                let (rel, _) = self.relation_entry(name)?;
                Ok(LogicalPlan::scan(name.clone(), rel.clone()))
            }
            Source::Derived(inner) => self.plan_of(inner),
        }
    }

    /// Build the logical plan of a derivation (no execution). Attribute
    /// names resolve against the plan's inferred output schema, so
    /// projections and explications over nested derivations see the
    /// composed layout (e.g. a join's merged attribute list).
    fn plan_of(&self, derivation: &Derivation) -> Result<LogicalPlan> {
        Ok(match derivation {
            Derivation::Union(a, b) => self.source_plan(a)?.union(self.source_plan(b)?),
            Derivation::Intersect(a, b) => self.source_plan(a)?.intersect(self.source_plan(b)?),
            Derivation::Difference(a, b) => self.source_plan(a)?.diff(self.source_plan(b)?),
            Derivation::Join(a, b) => self.source_plan(a)?.join(self.source_plan(b)?),
            Derivation::Project(a, attrs) => {
                let p = self.source_plan(a)?;
                let schema = p.output_schema()?;
                let indexes = attrs
                    .iter()
                    .map(|n| Ok(schema.index_of(n)?))
                    .collect::<Result<Vec<_>>>()?;
                p.project(indexes)
            }
            Derivation::Select(a, conds) => {
                let mut p = self.source_plan(a)?;
                for (attr, value) in conds {
                    p = p.select_eq(attr.clone(), value.name.clone());
                }
                p
            }
            Derivation::Consolidated(a) => self.source_plan(a)?.consolidate(),
            Derivation::Explicated(a, attrs) => {
                let p = self.source_plan(a)?;
                let schema = p.output_schema()?;
                let indexes = if attrs.is_empty() {
                    (0..schema.arity()).collect()
                } else {
                    attrs
                        .iter()
                        .map(|n| Ok(schema.index_of(n)?))
                        .collect::<Result<Vec<_>>>()?
                };
                p.explicate(indexes)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 world, entirely through HQL.
    const FIG1: &str = r#"
            CREATE DOMAIN Animal;
            CREATE CLASS Bird UNDER Animal;
            CREATE CLASS Canary UNDER Bird;
            CREATE CLASS Penguin UNDER Bird;
            CREATE CLASS "Galapagos Penguin" UNDER Penguin;
            CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
            CREATE INSTANCE Tweety OF Canary;
            CREATE INSTANCE Paul OF "Galapagos Penguin";
            CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
            CREATE INSTANCE Pamela OF "Amazing Flying Penguin";
            CREATE INSTANCE Peter OF "Amazing Flying Penguin";
            CREATE RELATION Flies (Creature: Animal);
            ASSERT Flies (ALL Bird);
            ASSERT NOT Flies (ALL Penguin);
            ASSERT Flies (ALL "Amazing Flying Penguin");
            ASSERT Flies (Peter);
            "#;

    fn fig1_session() -> Session {
        let mut s = Session::new();
        s.execute(FIG1).expect("script is well-formed");
        s
    }

    fn truth_of(s: &mut Session, q: &str) -> Option<bool> {
        match s.execute(q).unwrap().remove(0) {
            Response::Truth { value, .. } => value,
            other => panic!("expected truth, got {other:?}"),
        }
    }

    #[test]
    fn fig1_through_hql() {
        let mut s = fig1_session();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Tweety);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Paul);"), Some(false));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Peter);"), Some(true));
    }

    #[test]
    fn show_and_why() {
        let mut s = fig1_session();
        let table = s.execute("SHOW Flies;").unwrap().remove(0);
        let rendered = table.to_string();
        assert!(rendered.contains("∀Bird"));
        assert!(rendered.contains("- | ∀Penguin"));
        let why = s.execute("WHY Flies (Paul);").unwrap().remove(0);
        assert!(why.to_string().contains("∀Penguin"));
        let dot = s.execute("SHOW DOMAIN Animal;").unwrap().remove(0);
        assert!(dot.to_string().contains("digraph"));
    }

    #[test]
    fn check_reports_conflicts() {
        let mut s = fig1_session();
        let r = s.execute("CHECK Flies;").unwrap().remove(0);
        assert_eq!(r, Response::Conflicts(vec![]));
        s.execute("ASSERT NOT Flies (ALL \"Galapagos Penguin\");")
            .unwrap();
        let r = s.execute("CHECK Flies;").unwrap().remove(0);
        match r {
            Response::Conflicts(items) => assert_eq!(items, vec!["Patricia"]),
            other => panic!("unexpected {other:?}"),
        }
        // And HOLDS reports the conflict as None.
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), None);
    }

    #[test]
    fn consolidate_and_explicate_in_place() {
        let mut s = fig1_session();
        let r = s.execute("CONSOLIDATE Flies;").unwrap().remove(0);
        assert!(r.to_string().contains("removed 1"));
        let mut s = fig1_session();
        let r = s.execute("EXPLICATE Flies;").unwrap().remove(0);
        assert!(r.to_string().contains("now 5 tuple(s)"));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Pamela);"), Some(true));
    }

    #[test]
    fn ddl_after_relations_reshares_domains() {
        let mut s = fig1_session();
        // Growing the taxonomy after the relation exists must keep old
        // tuples and make the new instance inherit.
        s.execute("CREATE INSTANCE Pablo OF \"Galapagos Penguin\";")
            .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Pablo);"), Some(false));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Tweety);"), Some(true));
    }

    #[test]
    fn let_derivations() {
        let mut s = fig1_session();
        s.execute(
            "CREATE RELATION JillLoves (Creature: Animal);\
             ASSERT JillLoves (ALL Penguin);",
        )
        .unwrap();
        s.execute("LET Both = INTERSECT Flies JillLoves;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Both (Peter);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Both (Tweety);"), Some(false));
        s.execute("LET Sub = SELECT Flies WHERE Creature IS ALL Penguin;")
            .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Sub (Pamela);"), Some(true));
        s.execute("LET Small = CONSOLIDATE Flies;").unwrap();
        assert!(s.relation("Small").unwrap().len() < s.relation("Flies").unwrap().len());
    }

    #[test]
    fn preference_statement() {
        let mut s = Session::new();
        s.execute(
            r#"
            CREATE DOMAIN D;
            CREATE CLASS A UNDER D;
            CREATE CLASS B UNDER D;
            CREATE CLASS A1 UNDER A;
            CREATE CLASS B1 UNDER B;
            CREATE INSTANCE x OF A1, B1;
            CREATE RELATION R (V: D);
            ASSERT R (ALL A);
            ASSERT NOT R (ALL B);
            "#,
        )
        .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS R (x);"), None, "conflict");
        s.execute("PREFER A OVER B IN D;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS R (x);"), Some(true));
    }

    #[test]
    fn set_preemption() {
        let mut s = fig1_session();
        s.execute("SET PREEMPTION Flies ON-PATH;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), None);
        s.execute("SET PREEMPTION Flies OFF-PATH;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), Some(true));
        assert!(s.execute("SET PREEMPTION Flies SIDEWAYS;").is_err());
    }

    #[test]
    fn error_paths() {
        let mut s = Session::new();
        assert!(matches!(
            s.execute("SHOW Nope;"),
            Err(HqlError::Unknown {
                kind: "relation",
                ..
            })
        ));
        s.execute("CREATE DOMAIN D;").unwrap();
        assert!(matches!(
            s.execute("CREATE DOMAIN D;"),
            Err(HqlError::Duplicate { .. })
        ));
        assert!(matches!(
            s.execute("CREATE CLASS X UNDER Nowhere;"),
            Err(HqlError::Unknown { kind: "class", .. })
        ));
        s.execute("CREATE RELATION R (V: D);").unwrap();
        assert!(matches!(
            s.execute("CREATE RELATION R (V: D);"),
            Err(HqlError::Duplicate { .. })
        ));
        assert!(matches!(
            s.execute("RETRACT R (D);"),
            Err(HqlError::Unknown { kind: "tuple", .. })
        ));
    }

    #[test]
    fn derived_relations_survive_later_ddl() {
        // A LET-derived relation references the domain through its
        // schema; later DDL on that domain must re-share it too, keeping
        // the derived relation queryable and join-compatible.
        let mut s = fig1_session();
        s.execute("LET Flyers = SELECT Flies WHERE Creature IS ALL Bird;")
            .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flyers (Tweety);"), Some(true));
        s.execute("CREATE INSTANCE Pablo OF Penguin;").unwrap();
        // Old derived data still queryable after the re-share...
        assert_eq!(truth_of(&mut s, "HOLDS Flyers (Tweety);"), Some(true));
        // ...and it can still combine with the (rebuilt) base relation.
        s.execute("LET Again = INTERSECT Flyers Flies;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Again (Tweety);"), Some(true));
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut s = fig1_session();
        let path =
            std::env::temp_dir().join(format!("hrdm_hql_session_{}.hrdm", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        s.execute(&format!("SAVE \"{path_str}\";")).unwrap();

        // A fresh session restores the whole world.
        let mut s2 = Session::new();
        s2.execute(&format!("LOAD \"{path_str}\";")).unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Patricia);"), Some(true));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Paul);"), Some(false));
        // DDL continues to work after a restore (re-sharing logic).
        s2.execute("CREATE INSTANCE Pablo OF Penguin;").unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Pablo);"), Some(false));
        std::fs::remove_file(&path).unwrap();

        // Loading a missing file reports a Core error.
        assert!(matches!(
            s2.execute("LOAD \"/nonexistent/nowhere.hrdm\";"),
            Err(HqlError::Core(_))
        ));
    }

    #[test]
    fn holds3_reports_unknown() {
        let mut s = fig1_session();
        // Canary flies via Bird: true.
        let r = s.execute("HOLDS3 Flies (Tweety);").unwrap().remove(0);
        assert!(r.to_string().ends_with("true"), "{r}");
        let r = s.execute("HOLDS3 Flies (Paul);").unwrap().remove(0);
        assert!(r.to_string().ends_with("false"), "{r}");
        // Nothing asserted above Bird: the root is unknown, not false.
        let r = s.execute("HOLDS3 Flies (Animal);").unwrap().remove(0);
        assert!(r.to_string().ends_with("unknown"), "{r}");
        // Closed-world HOLDS says false for the same item.
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Animal);"), Some(false));
    }

    #[test]
    fn count_statements() {
        let mut s = fig1_session();
        let r = s.execute("COUNT Flies;").unwrap().remove(0);
        assert!(r.to_string().contains("4 atom(s)"), "{r}");
        let r = s.execute("COUNT Flies BY Creature;").unwrap().remove(0);
        let text = r.to_string();
        assert!(text.contains("Tweety: 1"), "{text}");
        assert!(text.contains("Peter: 1"), "{text}");
        assert!(!text.contains("Paul"), "{text}");
        assert!(s.execute("COUNT Nope;").is_err());
        assert!(s.execute("COUNT Flies BY Wing;").is_err());
    }

    #[test]
    fn nested_derivations_compose_in_one_statement() {
        let mut s = fig1_session();
        // SELECT over an inline EXPLICATE: the planner fuses these
        // (explicate-select-fusion) but the answer must match running
        // the two statements separately.
        s.execute(
            "LET Fused = SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;\
             LET Flat = EXPLICATE Flies;\
             LET TwoStep = SELECT Flat WHERE Creature IS ALL Penguin;",
        )
        .unwrap();
        let fused = s.relation("Fused").unwrap();
        let twostep = s.relation("TwoStep").unwrap();
        let tuples = |r: &HRelation| -> Vec<(Item, Truth)> {
            r.iter().map(|(i, t)| (i.clone(), t)).collect()
        };
        assert_eq!(tuples(fused), tuples(twostep));
        assert_eq!(truth_of(&mut s, "HOLDS Fused (Patricia);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Fused (Paul);"), Some(false));
    }

    #[test]
    fn top_level_explicate_keeps_explicit_form() {
        let mut s = fig1_session();
        // A derived EXPLICATE must not be collapsed back to minimal
        // form by plan canonicalization: all 5 instances, including the
        // redundant negated Paul tuple, stay stored.
        s.execute("LET Flat = EXPLICATE Flies;").unwrap();
        assert_eq!(s.relation("Flat").unwrap().len(), 5);
        // Nested under another operator the explicit form is just an
        // intermediate, so the composed result is canonical.
        s.execute("LET Can = CONSOLIDATE (EXPLICATE Flies);")
            .unwrap();
        assert!(s.relation("Can").unwrap().len() < 5);
    }

    #[test]
    fn explain_reports_plan_and_rewrites() {
        let mut s = fig1_session();
        let r = s
            .execute("EXPLAIN SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;")
            .unwrap()
            .remove(0);
        let text = match r {
            Response::Plan(p) => p,
            other => panic!("expected a plan, got {other:?}"),
        };
        assert!(text.contains("Scan Flies"), "{text}");
        assert!(text.contains("selecteq-normalize"), "{text}");
        assert!(text.contains("explicate-select-fusion"), "{text}");
        // The fused tree runs the select below the explicate.
        let select_at = text.find("Select").expect("select node rendered");
        let explicate_at = text.find("Explicate").expect("explicate node rendered");
        assert!(explicate_at < select_at, "{text}");
        // EXPLAIN materializes nothing.
        assert!(s.relation("Flies").unwrap().len() == 4);
        // Errors in the referenced relations still surface.
        assert!(s.execute("EXPLAIN UNION Flies Nope;").is_err());
    }

    #[test]
    fn trace_reports_execution_per_node() {
        let mut s = fig1_session();
        let r = s
            .execute("TRACE SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;")
            .unwrap()
            .remove(0);
        let text = match r {
            Response::Trace(t) => t,
            other => panic!("expected a trace, got {other:?}"),
        };
        // The executed span tree names the plan nodes and reports rows.
        assert!(text.contains("Scan"), "{text}");
        assert!(text.contains("Explicate"), "{text}");
        assert!(text.contains("rows="), "{text}");
        // Rewrites that fired during optimization are listed.
        assert!(text.contains("explicate-select-fusion"), "{text}");
        // The result summary closes the report.
        assert!(text.contains("stored tuple(s)"), "{text}");
        // TRACE materializes nothing.
        assert_eq!(s.relation("Flies").unwrap().len(), 4);
        // Errors in the referenced relations still surface.
        assert!(s.execute("TRACE UNION Flies Nope;").is_err());
    }

    #[test]
    fn retract_and_assert_round_trip() {
        let mut s = fig1_session();
        s.execute("RETRACT Flies (ALL Penguin);").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Paul);"), Some(true));
        s.execute("ASSERT NOT Flies (ALL Penguin);").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Paul);"), Some(false));
    }

    fn temp_store(tag: &str) -> (std::path::PathBuf, String) {
        let dir = std::env::temp_dir().join(format!("hrdm_hql_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let quoted = dir.to_str().unwrap().to_string();
        (dir, quoted)
    }

    #[test]
    fn open_journals_statements_and_survives_reopen() {
        let (dir, dir_str) = temp_store("reopen");
        let mut s = Session::new();
        let r = s
            .execute(&format!("OPEN \"{dir_str}\" SYNC EVERY 4;"))
            .unwrap()
            .remove(0);
        assert!(r.to_string().contains("open at lsn 0"), "{r}");
        s.execute(FIG1).unwrap();
        assert_eq!(s.journal_lsn(), Some(16), "every FIG1 statement journaled");
        s.sync().unwrap();
        drop(s);

        // A fresh session recovers the whole world from checkpoint+WAL.
        let mut s2 = Session::new();
        let r = s2
            .execute(&format!("OPEN \"{dir_str}\";"))
            .unwrap()
            .remove(0);
        assert!(r.to_string().contains("16 record(s) replayed"), "{r}");
        assert_eq!(s2.journal_lsn(), Some(16));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Tweety);"), Some(true));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Paul);"), Some(false));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Patricia);"), Some(true));
        // DDL keeps working (and journaling) against the recovered state.
        s2.execute("CREATE INSTANCE Pablo OF Penguin;").unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Pablo);"), Some(false));
        assert_eq!(s2.journal_lsn(), Some(17));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let (dir, dir_str) = temp_store("ckpt");
        let mut s = Session::new();
        s.execute(&format!("OPEN \"{dir_str}\";")).unwrap();
        s.execute(FIG1).unwrap();
        let r = s.execute("CHECKPOINT;").unwrap().remove(0);
        assert!(
            r.to_string().contains("checkpoint written at lsn 16"),
            "{r}"
        );
        drop(s);

        // After the checkpoint the WAL tail is empty: recovery loads the
        // image and replays nothing.
        let mut s2 = Session::new();
        let r = s2
            .execute(&format!("OPEN \"{dir_str}\";"))
            .unwrap()
            .remove(0);
        assert!(r.to_string().contains("open at lsn 16"), "{r}");
        assert!(r.to_string().contains("0 record(s) replayed"), "{r}");
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Peter);"), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn derived_and_in_place_results_checkpoint_implicitly() {
        let (dir, dir_str) = temp_store("implicit");
        let mut s = Session::new();
        s.execute(&format!("OPEN \"{dir_str}\";")).unwrap();
        s.execute(FIG1).unwrap();
        // LET is outside the WAL vocabulary, so it must checkpoint; the
        // derived relation has to survive a reopen.
        s.execute("LET Sub = SELECT Flies WHERE Creature IS ALL Penguin;")
            .unwrap();
        s.execute("CONSOLIDATE Flies;").unwrap();
        drop(s);

        let mut s2 = Session::new();
        s2.execute(&format!("OPEN \"{dir_str}\";")).unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Sub (Pamela);"), Some(true));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Paul);"), Some(false));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_open_store_errors() {
        let mut s = Session::new();
        assert!(matches!(
            s.execute("CHECKPOINT;"),
            Err(HqlError::Core(msg)) if msg.contains("no store open")
        ));
        assert_eq!(s.journal_lsn(), None);
        s.sync().unwrap(); // no-op when detached
    }
}
