//! The HQL session: a single-caller view over the concurrent engine.
//!
//! A [`Session`] is the classic embedding API — `new`, `execute`,
//! `relation` — now implemented as a thin wrapper over an
//! [`Engine`]: every statement executes through
//! the engine's dispatch table (snapshot reads, serialized writes), and
//! the session keeps one cached [`Snapshot`] of the world so borrows
//! like [`Session::relation`] keep working exactly as before. Programs
//! that want concurrency call [`Session::engine`] (or build an
//! [`Engine`] directly) and clone it across
//! threads; programs that don't never notice the difference.

use std::fmt;

use hrdm_core::prelude::*;
use hrdm_persist::Image;

use crate::engine::Engine;
use crate::error::Result;
use crate::world::World;

/// The result of one executed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Generic success with a human-readable summary.
    Ok(String),
    /// A rendered relation table.
    Table(String),
    /// A `HOLDS` answer (`None` = conflicted/ambiguous).
    Truth {
        /// The queried item, rendered.
        item: String,
        /// The closed-world answer, or `None` on conflict.
        value: Option<bool>,
    },
    /// A `WHY` justification, rendered.
    Justification(String),
    /// A `CHECK` report: the conflicted items (empty = consistent).
    Conflicts(Vec<String>),
    /// A `SHOW DOMAIN` Graphviz document.
    Dot(String),
    /// An `EXPLAIN` report: the optimized plan tree plus the rewrite
    /// rules that fired.
    Plan(String),
    /// A `TRACE` report: the executed span tree with per-node rows,
    /// wall time and cache attribution, plus the rewrites that fired.
    Trace(String),
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ok(msg) => write!(f, "{msg}"),
            Response::Table(t) => write!(f, "{t}"),
            Response::Truth { item, value } => match value {
                Some(v) => write!(f, "{item}: {v}"),
                None => write!(f, "{item}: conflict"),
            },
            Response::Justification(j) => write!(f, "{j}"),
            Response::Conflicts(items) if items.is_empty() => write!(f, "consistent"),
            Response::Conflicts(items) => {
                write!(f, "conflicts at: {}", items.join(", "))
            }
            Response::Dot(d) => write!(f, "{d}"),
            Response::Plan(p) => write!(f, "{p}"),
            Response::Trace(t) => write!(f, "{t}"),
        }
    }
}

/// An interactive HQL session.
pub struct Session {
    /// The shared engine all statements execute through.
    engine: Engine,
    /// The world as of this session's last statement; refreshed after
    /// every `execute` so borrowing accessors see the latest state.
    view: Snapshot<World>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A fresh, empty session over its own private engine.
    pub fn new() -> Session {
        Session::over(Engine::new())
    }

    fn over(engine: Engine) -> Session {
        let view = engine.snapshot();
        Session { engine, view }
    }

    /// A session view over an existing (possibly shared) engine.
    #[deprecated(
        since = "0.1.0",
        note = "program against `ExecutorHandle` (which `Engine` implements directly) \
                instead of wrapping a shared engine in a second `Session`; \
                use `Session::new()` for a private session"
    )]
    pub fn with_engine(engine: Engine) -> Session {
        Session::over(engine)
    }

    /// The underlying engine — clone it to execute concurrently from
    /// other threads while this session keeps its own view.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Names of the defined relations.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.view.relation_names()
    }

    /// Access a relation by name (for embedding HQL in a larger
    /// program).
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.view.relation(name)
    }

    /// LSN of the attached store, if one is `OPEN` (= mutations recorded
    /// since the store's birth).
    pub fn journal_lsn(&self) -> Option<u64> {
        self.engine.journal_lsn()
    }

    /// Flush and fsync any buffered WAL records of the open store.
    /// A no-op when no store is attached.
    pub fn sync(&mut self) -> Result<()> {
        self.engine.sync()
    }

    /// Parse and execute a script; returns one response per statement.
    pub fn execute(&mut self, script: &str) -> Result<Vec<Response>> {
        let result = self.engine.execute(script);
        // Refresh even on error: a mid-script failure keeps the earlier
        // statements' published effects, and the view must show them.
        self.view = self.engine.snapshot();
        result
    }

    /// Snapshot the session as a persistence image.
    pub fn to_image(&self) -> Image {
        self.view.to_image()
    }

    /// Replace the session's whole state from a persistence image.
    pub fn restore(&mut self, image: Image) {
        self.engine.restore(image);
        self.view = self.engine.snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HqlError;

    /// The Fig. 1 world, entirely through HQL.
    const FIG1: &str = r#"
            CREATE DOMAIN Animal;
            CREATE CLASS Bird UNDER Animal;
            CREATE CLASS Canary UNDER Bird;
            CREATE CLASS Penguin UNDER Bird;
            CREATE CLASS "Galapagos Penguin" UNDER Penguin;
            CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;
            CREATE INSTANCE Tweety OF Canary;
            CREATE INSTANCE Paul OF "Galapagos Penguin";
            CREATE INSTANCE Patricia OF "Galapagos Penguin", "Amazing Flying Penguin";
            CREATE INSTANCE Pamela OF "Amazing Flying Penguin";
            CREATE INSTANCE Peter OF "Amazing Flying Penguin";
            CREATE RELATION Flies (Creature: Animal);
            ASSERT Flies (ALL Bird);
            ASSERT NOT Flies (ALL Penguin);
            ASSERT Flies (ALL "Amazing Flying Penguin");
            ASSERT Flies (Peter);
            "#;

    fn fig1_session() -> Session {
        let mut s = Session::new();
        s.execute(FIG1).expect("script is well-formed");
        s
    }

    fn truth_of(s: &mut Session, q: &str) -> Option<bool> {
        match s.execute(q).unwrap().remove(0) {
            Response::Truth { value, .. } => value,
            other => panic!("expected truth, got {other:?}"),
        }
    }

    #[test]
    fn fig1_through_hql() {
        let mut s = fig1_session();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Tweety);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Paul);"), Some(false));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Peter);"), Some(true));
    }

    #[test]
    fn show_and_why() {
        let mut s = fig1_session();
        let table = s.execute("SHOW Flies;").unwrap().remove(0);
        let rendered = table.to_string();
        assert!(rendered.contains("∀Bird"));
        assert!(rendered.contains("- | ∀Penguin"));
        let why = s.execute("WHY Flies (Paul);").unwrap().remove(0);
        assert!(why.to_string().contains("∀Penguin"));
        let dot = s.execute("SHOW DOMAIN Animal;").unwrap().remove(0);
        assert!(dot.to_string().contains("digraph"));
    }

    #[test]
    fn check_reports_conflicts() {
        let mut s = fig1_session();
        let r = s.execute("CHECK Flies;").unwrap().remove(0);
        assert_eq!(r, Response::Conflicts(vec![]));
        s.execute("ASSERT NOT Flies (ALL \"Galapagos Penguin\");")
            .unwrap();
        let r = s.execute("CHECK Flies;").unwrap().remove(0);
        match r {
            Response::Conflicts(items) => assert_eq!(items, vec!["Patricia"]),
            other => panic!("unexpected {other:?}"),
        }
        // And HOLDS reports the conflict as None.
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), None);
    }

    #[test]
    fn consolidate_and_explicate_in_place() {
        let mut s = fig1_session();
        let r = s.execute("CONSOLIDATE Flies;").unwrap().remove(0);
        assert!(r.to_string().contains("removed 1"));
        let mut s = fig1_session();
        let r = s.execute("EXPLICATE Flies;").unwrap().remove(0);
        assert!(r.to_string().contains("now 5 tuple(s)"));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Pamela);"), Some(true));
    }

    #[test]
    fn ddl_after_relations_reshares_domains() {
        let mut s = fig1_session();
        // Growing the taxonomy after the relation exists must keep old
        // tuples and make the new instance inherit.
        s.execute("CREATE INSTANCE Pablo OF \"Galapagos Penguin\";")
            .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Pablo);"), Some(false));
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Tweety);"), Some(true));
    }

    #[test]
    fn let_derivations() {
        let mut s = fig1_session();
        s.execute(
            "CREATE RELATION JillLoves (Creature: Animal);\
             ASSERT JillLoves (ALL Penguin);",
        )
        .unwrap();
        s.execute("LET Both = INTERSECT Flies JillLoves;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Both (Peter);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Both (Tweety);"), Some(false));
        s.execute("LET Sub = SELECT Flies WHERE Creature IS ALL Penguin;")
            .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Sub (Pamela);"), Some(true));
        s.execute("LET Small = CONSOLIDATE Flies;").unwrap();
        assert!(s.relation("Small").unwrap().len() < s.relation("Flies").unwrap().len());
    }

    #[test]
    fn preference_statement() {
        let mut s = Session::new();
        s.execute(
            r#"
            CREATE DOMAIN D;
            CREATE CLASS A UNDER D;
            CREATE CLASS B UNDER D;
            CREATE CLASS A1 UNDER A;
            CREATE CLASS B1 UNDER B;
            CREATE INSTANCE x OF A1, B1;
            CREATE RELATION R (V: D);
            ASSERT R (ALL A);
            ASSERT NOT R (ALL B);
            "#,
        )
        .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS R (x);"), None, "conflict");
        s.execute("PREFER A OVER B IN D;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS R (x);"), Some(true));
    }

    #[test]
    fn set_preemption() {
        let mut s = fig1_session();
        s.execute("SET PREEMPTION Flies ON-PATH;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), None);
        s.execute("SET PREEMPTION Flies OFF-PATH;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Patricia);"), Some(true));
        assert!(s.execute("SET PREEMPTION Flies SIDEWAYS;").is_err());
    }

    #[test]
    fn error_paths() {
        let mut s = Session::new();
        assert!(matches!(
            s.execute("SHOW Nope;"),
            Err(HqlError::Unknown {
                kind: "relation",
                ..
            })
        ));
        s.execute("CREATE DOMAIN D;").unwrap();
        assert!(matches!(
            s.execute("CREATE DOMAIN D;"),
            Err(HqlError::Duplicate { .. })
        ));
        assert!(matches!(
            s.execute("CREATE CLASS X UNDER Nowhere;"),
            Err(HqlError::Unknown { kind: "class", .. })
        ));
        s.execute("CREATE RELATION R (V: D);").unwrap();
        assert!(matches!(
            s.execute("CREATE RELATION R (V: D);"),
            Err(HqlError::Duplicate { .. })
        ));
        assert!(matches!(
            s.execute("RETRACT R (D);"),
            Err(HqlError::Unknown { kind: "tuple", .. })
        ));
    }

    #[test]
    fn derived_relations_survive_later_ddl() {
        // A LET-derived relation references the domain through its
        // schema; later DDL on that domain must re-share it too, keeping
        // the derived relation queryable and join-compatible.
        let mut s = fig1_session();
        s.execute("LET Flyers = SELECT Flies WHERE Creature IS ALL Bird;")
            .unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flyers (Tweety);"), Some(true));
        s.execute("CREATE INSTANCE Pablo OF Penguin;").unwrap();
        // Old derived data still queryable after the re-share...
        assert_eq!(truth_of(&mut s, "HOLDS Flyers (Tweety);"), Some(true));
        // ...and it can still combine with the (rebuilt) base relation.
        s.execute("LET Again = INTERSECT Flyers Flies;").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Again (Tweety);"), Some(true));
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut s = fig1_session();
        let path =
            std::env::temp_dir().join(format!("hrdm_hql_session_{}.hrdm", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        s.execute(&format!("SAVE \"{path_str}\";")).unwrap();

        // A fresh session restores the whole world.
        let mut s2 = Session::new();
        s2.execute(&format!("LOAD \"{path_str}\";")).unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Patricia);"), Some(true));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Paul);"), Some(false));
        // DDL continues to work after a restore (re-sharing logic).
        s2.execute("CREATE INSTANCE Pablo OF Penguin;").unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Pablo);"), Some(false));
        std::fs::remove_file(&path).unwrap();

        // Loading a missing file reports a persistence error with its
        // stable kind code.
        assert!(matches!(
            s2.execute("LOAD \"/nonexistent/nowhere.hrdm\";"),
            Err(HqlError::Persist { kind: "io", .. })
        ));
    }

    #[test]
    fn holds3_reports_unknown() {
        let mut s = fig1_session();
        // Canary flies via Bird: true.
        let r = s.execute("HOLDS3 Flies (Tweety);").unwrap().remove(0);
        assert!(r.to_string().ends_with("true"), "{r}");
        let r = s.execute("HOLDS3 Flies (Paul);").unwrap().remove(0);
        assert!(r.to_string().ends_with("false"), "{r}");
        // Nothing asserted above Bird: the root is unknown, not false.
        let r = s.execute("HOLDS3 Flies (Animal);").unwrap().remove(0);
        assert!(r.to_string().ends_with("unknown"), "{r}");
        // Closed-world HOLDS says false for the same item.
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Animal);"), Some(false));
    }

    #[test]
    fn count_statements() {
        let mut s = fig1_session();
        let r = s.execute("COUNT Flies;").unwrap().remove(0);
        assert!(r.to_string().contains("4 atom(s)"), "{r}");
        let r = s.execute("COUNT Flies BY Creature;").unwrap().remove(0);
        let text = r.to_string();
        assert!(text.contains("Tweety: 1"), "{text}");
        assert!(text.contains("Peter: 1"), "{text}");
        assert!(!text.contains("Paul"), "{text}");
        assert!(s.execute("COUNT Nope;").is_err());
        assert!(s.execute("COUNT Flies BY Wing;").is_err());
    }

    #[test]
    fn nested_derivations_compose_in_one_statement() {
        let mut s = fig1_session();
        // SELECT over an inline EXPLICATE: the planner fuses these
        // (explicate-select-fusion) but the answer must match running
        // the two statements separately.
        s.execute(
            "LET Fused = SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;\
             LET Flat = EXPLICATE Flies;\
             LET TwoStep = SELECT Flat WHERE Creature IS ALL Penguin;",
        )
        .unwrap();
        let fused = s.relation("Fused").unwrap();
        let twostep = s.relation("TwoStep").unwrap();
        let tuples = |r: &HRelation| -> Vec<(Item, Truth)> {
            r.iter().map(|(i, t)| (i.clone(), t)).collect()
        };
        assert_eq!(tuples(fused), tuples(twostep));
        assert_eq!(truth_of(&mut s, "HOLDS Fused (Patricia);"), Some(true));
        assert_eq!(truth_of(&mut s, "HOLDS Fused (Paul);"), Some(false));
    }

    #[test]
    fn top_level_explicate_keeps_explicit_form() {
        let mut s = fig1_session();
        // A derived EXPLICATE must not be collapsed back to minimal
        // form by plan canonicalization: all 5 instances, including the
        // redundant negated Paul tuple, stay stored.
        s.execute("LET Flat = EXPLICATE Flies;").unwrap();
        assert_eq!(s.relation("Flat").unwrap().len(), 5);
        // Nested under another operator the explicit form is just an
        // intermediate, so the composed result is canonical.
        s.execute("LET Can = CONSOLIDATE (EXPLICATE Flies);")
            .unwrap();
        assert!(s.relation("Can").unwrap().len() < 5);
    }

    #[test]
    fn explain_reports_plan_and_rewrites() {
        let mut s = fig1_session();
        let r = s
            .execute("EXPLAIN SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;")
            .unwrap()
            .remove(0);
        let text = match r {
            Response::Plan(p) => p,
            other => panic!("expected a plan, got {other:?}"),
        };
        assert!(text.contains("Scan Flies"), "{text}");
        assert!(text.contains("selecteq-normalize"), "{text}");
        assert!(text.contains("explicate-select-fusion"), "{text}");
        // The fused tree runs the select below the explicate.
        let select_at = text.find("Select").expect("select node rendered");
        let explicate_at = text.find("Explicate").expect("explicate node rendered");
        assert!(explicate_at < select_at, "{text}");
        // EXPLAIN materializes nothing.
        assert!(s.relation("Flies").unwrap().len() == 4);
        // Errors in the referenced relations still surface.
        assert!(s.execute("EXPLAIN UNION Flies Nope;").is_err());
    }

    #[test]
    fn trace_reports_execution_per_node() {
        let mut s = fig1_session();
        let r = s
            .execute("TRACE SELECT (EXPLICATE Flies) WHERE Creature IS ALL Penguin;")
            .unwrap()
            .remove(0);
        let text = match r {
            Response::Trace(t) => t,
            other => panic!("expected a trace, got {other:?}"),
        };
        // The executed span tree names the plan nodes and reports rows.
        assert!(text.contains("Scan"), "{text}");
        assert!(text.contains("Explicate"), "{text}");
        assert!(text.contains("rows="), "{text}");
        // Rewrites that fired during optimization are listed.
        assert!(text.contains("explicate-select-fusion"), "{text}");
        // The result summary closes the report.
        assert!(text.contains("stored tuple(s)"), "{text}");
        // TRACE materializes nothing.
        assert_eq!(s.relation("Flies").unwrap().len(), 4);
        // Errors in the referenced relations still surface.
        assert!(s.execute("TRACE UNION Flies Nope;").is_err());
    }

    #[test]
    fn retract_and_assert_round_trip() {
        let mut s = fig1_session();
        s.execute("RETRACT Flies (ALL Penguin);").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Paul);"), Some(true));
        s.execute("ASSERT NOT Flies (ALL Penguin);").unwrap();
        assert_eq!(truth_of(&mut s, "HOLDS Flies (Paul);"), Some(false));
    }

    fn temp_store(tag: &str) -> (std::path::PathBuf, String) {
        let dir = std::env::temp_dir().join(format!("hrdm_hql_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let quoted = dir.to_str().unwrap().to_string();
        (dir, quoted)
    }

    #[test]
    fn open_journals_statements_and_survives_reopen() {
        let (dir, dir_str) = temp_store("reopen");
        let mut s = Session::new();
        let r = s
            .execute(&format!("OPEN \"{dir_str}\" SYNC EVERY 4;"))
            .unwrap()
            .remove(0);
        assert!(r.to_string().contains("open at lsn 0"), "{r}");
        s.execute(FIG1).unwrap();
        assert_eq!(s.journal_lsn(), Some(16), "every FIG1 statement journaled");
        s.sync().unwrap();
        drop(s);

        // A fresh session recovers the whole world from checkpoint+WAL.
        let mut s2 = Session::new();
        let r = s2
            .execute(&format!("OPEN \"{dir_str}\";"))
            .unwrap()
            .remove(0);
        assert!(r.to_string().contains("16 record(s) replayed"), "{r}");
        assert_eq!(s2.journal_lsn(), Some(16));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Tweety);"), Some(true));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Paul);"), Some(false));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Patricia);"), Some(true));
        // DDL keeps working (and journaling) against the recovered state.
        s2.execute("CREATE INSTANCE Pablo OF Penguin;").unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Pablo);"), Some(false));
        assert_eq!(s2.journal_lsn(), Some(17));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let (dir, dir_str) = temp_store("ckpt");
        let mut s = Session::new();
        s.execute(&format!("OPEN \"{dir_str}\";")).unwrap();
        s.execute(FIG1).unwrap();
        let r = s.execute("CHECKPOINT;").unwrap().remove(0);
        assert!(
            r.to_string().contains("checkpoint written at lsn 16"),
            "{r}"
        );
        drop(s);

        // After the checkpoint the WAL tail is empty: recovery loads the
        // image and replays nothing.
        let mut s2 = Session::new();
        let r = s2
            .execute(&format!("OPEN \"{dir_str}\";"))
            .unwrap()
            .remove(0);
        assert!(r.to_string().contains("open at lsn 16"), "{r}");
        assert!(r.to_string().contains("0 record(s) replayed"), "{r}");
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Peter);"), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn derived_and_in_place_results_checkpoint_implicitly() {
        let (dir, dir_str) = temp_store("implicit");
        let mut s = Session::new();
        s.execute(&format!("OPEN \"{dir_str}\";")).unwrap();
        s.execute(FIG1).unwrap();
        // LET is outside the WAL vocabulary, so it must checkpoint; the
        // derived relation has to survive a reopen.
        s.execute("LET Sub = SELECT Flies WHERE Creature IS ALL Penguin;")
            .unwrap();
        s.execute("CONSOLIDATE Flies;").unwrap();
        drop(s);

        let mut s2 = Session::new();
        s2.execute(&format!("OPEN \"{dir_str}\";")).unwrap();
        assert_eq!(truth_of(&mut s2, "HOLDS Sub (Pamela);"), Some(true));
        assert_eq!(truth_of(&mut s2, "HOLDS Flies (Paul);"), Some(false));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_open_store_errors() {
        let mut s = Session::new();
        assert!(matches!(
            s.execute("CHECKPOINT;"),
            Err(HqlError::Execution(msg)) if msg.contains("no store open")
        ));
        assert_eq!(s.journal_lsn(), None);
        s.sync().unwrap(); // no-op when detached
    }

    #[test]
    fn sessions_sharing_an_engine_see_each_other() {
        let mut writer = fig1_session();
        let mut reader = Session::over(writer.engine().clone());
        assert_eq!(truth_of(&mut reader, "HOLDS Flies (Tweety);"), Some(true));
        writer.execute("CREATE INSTANCE Pia OF Penguin;").unwrap();
        assert_eq!(truth_of(&mut reader, "HOLDS Flies (Pia);"), Some(false));
        // The supported public shape of the same pattern: share the
        // engine through the location-transparent handle.
        let handle: &dyn crate::executor::ExecutorHandle = writer.engine();
        let out = handle.execute_read("HOLDS Flies (Pia);", 0).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].ends_with("false"), "{:?}", out[0]);
    }
}
