//! The HQL lexer.
//!
//! Tokens: bare identifiers (`[A-Za-z_][A-Za-z0-9_-]*` plus digits-only
//! words, so enclosure sizes like `3000` lex as names), quoted names
//! (`"Amazing Flying Penguin"`), and punctuation. Keywords are
//! recognized case-insensitively by the parser, not the lexer — any
//! word token can also be a name. `--` comments run to end of line.

use crate::error::{HqlError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare word (identifier, keyword, or number-like name).
    Word(String),
    /// Quoted name (quotes stripped; `\"` unescaped).
    Quoted(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `=`
    Equals,
}

impl Token {
    /// The token's text for error messages.
    pub fn render(&self) -> String {
        match self {
            Token::Word(w) => w.clone(),
            Token::Quoted(q) => format!("{q:?}"),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Comma => ",".into(),
            Token::Colon => ":".into(),
            Token::Semicolon => ";".into(),
            Token::Equals => "=".into(),
        }
    }

    /// Case-insensitive keyword match for a bare word.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// The name a word or quoted token denotes.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            Token::Quoted(q) => Some(q),
            _ => None,
        }
    }
}

/// Lex a full input into tokens.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(HqlError::Lex {
                                position: start,
                                message: "unterminated quoted name".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Quoted(s));
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        // A '-' inside a word is part of it unless it
                        // starts a comment.
                        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
                            break;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(HqlError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_punctuation_and_quotes() {
        let toks = lex(r#"CREATE CLASS "Amazing Flying Penguin" UNDER Penguin;"#).unwrap();
        assert_eq!(toks.len(), 6);
        assert!(toks[0].is_kw("create"));
        assert_eq!(toks[2], Token::Quoted("Amazing Flying Penguin".into()));
        assert_eq!(toks[5], Token::Semicolon);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SHOW R; -- the whole relation\nCHECK R;").unwrap();
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn numbers_are_names() {
        let toks = lex("ASSERT Sizes (ALL Elephant, 3000);").unwrap();
        assert!(toks.iter().any(|t| t == &Token::Word("3000".into())));
    }

    #[test]
    fn hyphenated_words() {
        let toks = lex("SET PREEMPTION R ON-PATH;").unwrap();
        assert!(toks.iter().any(|t| t.is_kw("on-path")));
    }

    #[test]
    fn escaped_quotes() {
        let toks = lex(r#"SHOW "say \"hi\"";"#).unwrap();
        assert_eq!(toks[1], Token::Quoted("say \"hi\"".into()));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("SHOW @"), Err(HqlError::Lex { .. })));
        assert!(matches!(lex("SHOW \"open"), Err(HqlError::Lex { .. })));
    }

    #[test]
    fn render_and_as_name() {
        assert_eq!(Token::LParen.render(), "(");
        assert_eq!(Token::Word("Bird".into()).as_name(), Some("Bird"));
        assert_eq!(Token::Quoted("A B".into()).as_name(), Some("A B"));
        assert_eq!(Token::Comma.as_name(), None);
    }
}
