//! Location-transparent execution: the [`ExecutorHandle`] trait.
//!
//! Callers that program against `ExecutorHandle` never assume a local
//! [`Engine`]: the same code drives
//!
//! * the embedded [`Engine`] (implemented here),
//! * a sharded coordinator ([`ShardedEngine`](crate::shard::ShardedEngine)),
//! * a WAL-fed read replica ([`Replica`](crate::replica::Replica)),
//! * a remote server over HRDM/1 (`hrdm-server`'s `proto::Client`).
//!
//! Responses cross the boundary **rendered**: one string per statement,
//! byte-identical whether the statement ran embedded or over the wire
//! (the wire protocol itself carries rendered responses). Failures
//! cross as [`ExecError`] — the stable machine-readable kind code
//! every backend already speaks ([`HqlError::kind`], the same codes
//! `hrdm-server` sends in `ERR` replies) plus the rendered message.
//!
//! Three transport-level kinds join the statement-level codes:
//! `"stale"` (a read pinned below the requested epoch floor),
//! `"unsupported"` (the backend cannot run the statement — e.g. a
//! mutating script through [`ExecutorHandle::execute_read`], a write
//! against a read replica, `OPEN` through a sharded coordinator), and
//! `"busy"`/`"io"` from remote transports.

use crate::engine::Engine;
use crate::error::HqlError;
use crate::exec::Response;

/// Result alias for handle-level execution.
pub type ExecResult<T> = std::result::Result<T, ExecError>;

/// A location-independent execution failure: the stable kind code plus
/// the rendered message, exactly what the wire protocol's `ERR` reply
/// carries. Embedded backends build it from [`HqlError`]; remote
/// backends parse it off the wire — either way `kind()` is comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    kind: String,
    message: String,
}

impl ExecError {
    /// Build an error from a kind code and message.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> ExecError {
        ExecError {
            kind: kind.into(),
            message: message.into(),
        }
    }

    /// The stable machine-readable kind code (`"parse"`, `"unknown"`,
    /// `"duplicate"`, `"in-use"`, `"io"`, `"stale"`, `"unsupported"`, …).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The rendered, human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.kind)
    }
}

impl std::error::Error for ExecError {}

impl From<HqlError> for ExecError {
    fn from(e: HqlError) -> ExecError {
        ExecError {
            kind: e.kind().to_string(),
            message: e.to_string(),
        }
    }
}

/// Render responses the way the serving tier does: one string per
/// statement, via each [`Response`]'s `Display`. This is the byte
/// representation parity harnesses compare across backends.
pub fn render(responses: &[Response]) -> Vec<String> {
    responses.iter().map(ToString::to_string).collect()
}

/// A location-transparent execution endpoint.
///
/// All methods take `&self`: every implementation is internally
/// synchronized (the embedded engine's snapshot/writer split, a mutex
/// around a wire connection), so one handle can be shared across
/// threads like an [`Engine`] clone.
pub trait ExecutorHandle: Send + Sync {
    /// Execute a script — reads and writes — returning one rendered
    /// response per statement. Statement semantics (atomic failed
    /// writes, script stopping at the first error) are the backend's.
    fn execute(&self, script: &str) -> ExecResult<Vec<String>>;

    /// Execute a **read-only** script against a snapshot whose epoch is
    /// at least `min_epoch` (pass `0` for "any current snapshot").
    ///
    /// Errors with kind `"unsupported"` if the script mutates, and
    /// `"stale"` if the backend cannot observe `min_epoch` — a replica
    /// that has not caught up, or a future epoch nothing has published.
    fn execute_read(&self, script: &str, min_epoch: u64) -> ExecResult<Vec<String>>;

    /// The epoch of the most recent committed write this handle can
    /// observe (monotone per handle; comparable only within one
    /// backend's epoch space).
    fn last_epoch(&self) -> ExecResult<u64>;

    /// A small rendered telemetry report (`key: value` lines); the
    /// first line is always `epoch: <n>`.
    fn probe(&self) -> ExecResult<String>;
}

impl ExecutorHandle for Engine {
    fn execute(&self, script: &str) -> ExecResult<Vec<String>> {
        Engine::execute(self, script)
            .map(|rs| render(&rs))
            .map_err(ExecError::from)
    }

    fn execute_read(&self, script: &str, min_epoch: u64) -> ExecResult<Vec<String>> {
        let view = self.read_view();
        if view.epoch() < min_epoch {
            return Err(ExecError::new(
                "stale",
                format!(
                    "snapshot at epoch {} is below the requested floor {min_epoch}",
                    view.epoch()
                ),
            ));
        }
        match view.try_execute(script) {
            None => Err(ExecError::new(
                "unsupported",
                "script contains a mutating statement; route it through execute",
            )),
            Some(result) => result.map(|rs| render(&rs)).map_err(ExecError::from),
        }
    }

    fn last_epoch(&self) -> ExecResult<u64> {
        Ok(self.epoch())
    }

    fn probe(&self) -> ExecResult<String> {
        Ok(format!(
            "epoch: {}\nwrite-queue-depth: {}",
            self.epoch(),
            self.write_queue_depth()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_implements_the_handle() {
        let engine = Engine::new();
        let handle: &dyn ExecutorHandle = &engine;
        let out = handle
            .execute("CREATE DOMAIN D; CREATE CLASS A UNDER D;")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], "domain D created");
        assert_eq!(handle.last_epoch().unwrap(), 2);
        assert!(handle.probe().unwrap().starts_with("epoch: 2"));
        // Rendered output through the handle equals the embedded render.
        let direct = render(&engine.execute("SHOW DOMAIN D;").unwrap());
        assert_eq!(handle.execute_read("SHOW DOMAIN D;", 2).unwrap(), direct);
    }

    #[test]
    fn execute_read_enforces_the_contract() {
        let engine = Engine::new();
        engine.execute("CREATE DOMAIN D;").unwrap();
        let handle: &dyn ExecutorHandle = &engine;
        let e = handle.execute_read("SHOW DOMAIN D;", 99).unwrap_err();
        assert_eq!(e.kind(), "stale");
        let e = handle.execute_read("CREATE DOMAIN E;", 0).unwrap_err();
        assert_eq!(e.kind(), "unsupported");
        // Statement-level failures keep their stable kinds.
        let e = handle.execute("CREATE DOMAIN D;").unwrap_err();
        assert_eq!(e.kind(), "duplicate");
        let e = handle.execute_read("SHOW DOMAIN Nope;", 0).unwrap_err();
        assert_eq!(e.kind(), "unknown");
    }
}
