//! The concurrent HQL engine: snapshot reads, serialized writes.
//!
//! An [`Engine`] is the shared, thread-safe core a
//! [`Session`](crate::Session) (and the `hrdm-server` serving layer)
//! executes against. It splits the statement vocabulary by effect:
//!
//! * **Read-only statements** (`HOLDS`, `SHOW`, `EXPLAIN`, …) grab one
//!   [`Snapshot`] of the [`World`] and evaluate with no lock held —
//!   arbitrarily many can run in parallel, and each sees a state that
//!   equals the state after some serial prefix of the write history.
//! * **Mutating statements** funnel through the single writer: a
//!   `Mutex` serializes them, each clones the world copy-on-write,
//!   applies its change, journals it through the write-ahead log of the
//!   `OPEN`ed store (if any), and publishes the fresh world as the next
//!   **epoch**. A failed statement publishes nothing, so errors are
//!   atomic — readers can never observe a half-applied write.
//!
//! Statements dispatch through a table indexed by
//! [`StatementKind`](crate::ast::StatementKind): one handler function
//! per statement, declared read or write by construction (the private
//! `Handler` enum).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use hrdm_core::delta::Delta;
use hrdm_core::justify::justify;
use hrdm_core::mutation::CatalogMutation;
use hrdm_core::prelude::*;
use hrdm_core::render::render_table;
use hrdm_obs::metrics::{self, Counter, Gauge, Histogram};
use hrdm_persist::{Image, Journal};

use crate::ast::{Statement, STATEMENT_KINDS};
use crate::error::{HqlError, Result};
use crate::exec::Response;
use crate::parser::parse;
use crate::world::{resolve_item, World};

/// A shared, thread-safe HQL engine.
///
/// `Engine` is `Clone` (handles share one underlying state): clone it
/// into as many threads as you like. Reads never block other reads;
/// writes serialize among themselves and publish atomically.
#[derive(Clone, Default)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

#[derive(Default)]
struct EngineInner {
    /// The published world; advances only under the writer lock.
    state: SnapshotCell<World>,
    /// Serializes mutating statements and owns the WAL handle.
    writer: Mutex<Writer>,
    /// The most recent committed write's structured delta, published
    /// alongside its epoch (under the writer lock, so it always pairs
    /// with the epoch it produced).
    last_delta: Mutex<Option<(u64, Arc<Delta>)>>,
    /// Writers currently queued on (or holding) the writer mutex.
    /// Sampled into the `engine.write_queue_depth` gauge at lock
    /// acquisition, so the gauge reports contention a writer actually
    /// observed rather than a racy instantaneous count.
    write_queue: AtomicU64,
}

struct IvmMetrics {
    maintained: Counter,
    fallback: Counter,
    detached: Counter,
}

fn ivm_obs() -> &'static IvmMetrics {
    static M: OnceLock<IvmMetrics> = OnceLock::new();
    M.get_or_init(|| IvmMetrics {
        maintained: metrics::counter("ivm.maintained"),
        fallback: metrics::counter("ivm.fallback"),
        detached: metrics::counter("ivm.detached"),
    })
}

/// Write-path contention telemetry, sampled at writer-lock
/// acquisition (the `engine.epoch` gauge itself is maintained by the
/// snapshot cell at publish time).
struct WriteObs {
    /// Writers queued on or holding the writer mutex, as seen by the
    /// writer that just acquired it.
    queue_depth: Gauge,
    /// Epochs published between this writer enqueueing and acquiring
    /// the lock — how stale the snapshot it cloned at enqueue time
    /// would have been.
    epoch_lag: Gauge,
    /// Lock acquisitions that found at least one other writer queued.
    contended: Counter,
    /// Wall time spent waiting for the writer mutex.
    wait: Histogram,
}

fn write_obs() -> &'static WriteObs {
    static M: OnceLock<WriteObs> = OnceLock::new();
    M.get_or_init(|| WriteObs {
        queue_depth: metrics::gauge("engine.write_queue_depth"),
        epoch_lag: metrics::gauge("engine.epoch_lag"),
        contended: metrics::counter("engine.write_contended"),
        wait: metrics::histogram("engine.write_wait"),
    })
}

/// Decrements the write-queue count on drop, so error paths out of a
/// write statement can't leak a phantom queued writer.
struct QueueGuard<'a>(&'a AtomicU64);

impl Drop for QueueGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[derive(Default)]
struct Writer {
    /// The write-ahead journal of an `OPEN`ed durable store, if any.
    /// Statements in the WAL vocabulary (DDL, assertions, retractions,
    /// preemption changes) append mutation records; whole-state changes
    /// (`LET`, in-place `CONSOLIDATE`/`EXPLICATE`, `LOAD`) take an
    /// implicit checkpoint instead.
    journal: Option<Journal>,
}

/// One mutating statement's workspace: a private copy-on-write clone
/// of the world plus the journal handle. The engine publishes
/// `txn.world` only if the handler returns `Ok`, so a failed write is
/// invisible — readers and later writers keep the previous epoch.
pub struct WriteTxn<'a> {
    /// The private world copy this transaction mutates.
    pub world: World,
    /// The structured effect of this write: asserted/retracted rows per
    /// relation, resets, and domain-graph edits. Handlers record into
    /// it; the engine feeds it to view maintenance and publishes it
    /// alongside the new epoch.
    pub delta: Delta,
    journal: &'a mut Option<Journal>,
}

impl WriteTxn<'_> {
    /// Append one mutation record to the open store's WAL (no-op when
    /// detached). Called only after the transaction applied the change.
    fn record(&mut self, m: CatalogMutation) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.record(&m)?;
        }
        Ok(())
    }

    /// Checkpoint the open store from the transaction's current world —
    /// used after changes outside the WAL vocabulary (`LET`, in-place
    /// operators, `LOAD`), which only an image can carry.
    fn checkpoint(&mut self) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            let image = self.world.to_image();
            j.checkpoint(&image)?;
        }
        Ok(())
    }
}

/// A dispatch-table entry: the effect class is part of the handler's
/// type, so a statement cannot accidentally mutate through the read
/// path or dodge the writer lock.
enum Handler {
    /// Runs against an immutable snapshot; many in parallel.
    Read(fn(&World, Statement) -> Result<Response>),
    /// Runs under the writer lock against a COW clone.
    Write(fn(&mut WriteTxn<'_>, Statement) -> Result<Response>),
}

/// One handler per [`StatementKind`], indexed by its discriminant.
const DISPATCH: [Handler; STATEMENT_KINDS] = [
    Handler::Write(exec_create_domain),   // CreateDomain
    Handler::Write(exec_create_class),    // CreateClass
    Handler::Write(exec_create_instance), // CreateInstance
    Handler::Write(exec_prefer),          // Prefer
    Handler::Write(exec_create_relation), // CreateRelation
    Handler::Write(exec_assert),          // Assert
    Handler::Write(exec_retract),         // Retract
    Handler::Read(exec_holds),            // Holds
    Handler::Read(exec_holds3),           // Holds3
    Handler::Read(exec_why),              // Why
    Handler::Read(exec_check),            // Check
    Handler::Read(exec_show),             // Show
    Handler::Read(exec_show_domain),      // ShowDomain
    Handler::Write(exec_consolidate),     // Consolidate
    Handler::Write(exec_explicate),       // Explicate
    Handler::Write(exec_set_preemption),  // SetPreemption
    Handler::Read(exec_count),            // Count
    Handler::Read(exec_save),             // Save
    Handler::Write(exec_load),            // Load
    Handler::Write(exec_open),            // Open
    Handler::Write(exec_checkpoint),      // Checkpoint
    Handler::Write(exec_let),             // Let
    Handler::Read(exec_explain),          // Explain
    Handler::Read(exec_trace),            // Trace
    Handler::Write(exec_drop_domain),     // DropDomain
    Handler::Write(exec_drop_relation),   // DropRelation
    Handler::Write(exec_rename_relation), // RenameRelation
];

/// A pinned, shareable read-only view of the engine: one snapshot
/// acquisition serving arbitrarily many read-only scripts.
///
/// The serving tier's event loop acquires one `ReadView` per loop tick
/// and hands clones of it to every worker executing a read-only script
/// parsed in that tick, so a batch of independent queries from many
/// connections costs a **single** snapshot load instead of one per
/// statement. Cloning is an `Arc` bump; the view keeps its world alive
/// (and byte-stable) for as long as any clone exists, exactly like a
/// reader inside [`Engine::execute`].
#[derive(Clone)]
pub struct ReadView {
    snap: Snapshot<World>,
}

impl ReadView {
    /// The epoch this view was pinned at: its state equals the state
    /// after exactly this many committed writes.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// Execute `script` against the pinned snapshot **iff** every
    /// statement in it is read-only.
    ///
    /// Returns `None` when the script contains a mutating statement
    /// (the caller must fall back to [`Engine::execute`], which routes
    /// writes through the single writer). Parse errors are served from
    /// the view (`Some(Err(..))`) — they touch no shared state.
    pub fn try_execute(&self, script: &str) -> Option<Result<Vec<Response>>> {
        let statements = match parse(script) {
            Ok(s) => s,
            Err(e) => return Some(Err(e)),
        };
        if !statements.iter().all(Statement::is_read_only) {
            return None;
        }
        let mut out = Vec::with_capacity(statements.len());
        for stmt in statements {
            let Handler::Read(h) = &DISPATCH[stmt.kind() as usize] else {
                unreachable!("read-only statements dispatch to read handlers");
            };
            match h(&self.snap, stmt) {
                Ok(r) => out.push(r),
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok(out))
    }

    /// Execute one parsed statement against the pinned snapshot **iff**
    /// it is read-only (`None` otherwise). The per-statement entry
    /// point a sharded coordinator scatter-gathers through: it routes
    /// each statement to its owning shard's floor-checked view.
    pub fn execute_statement(&self, stmt: Statement) -> Option<Result<Response>> {
        let Handler::Read(h) = &DISPATCH[stmt.kind() as usize] else {
            return None;
        };
        Some(h(&self.snap, stmt))
    }
}

impl Engine {
    /// A fresh engine over an empty world.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Grab the current published snapshot (epoch + shared world).
    pub fn snapshot(&self) -> Snapshot<World> {
        self.inner.state.load()
    }

    /// Pin a shareable [`ReadView`] of the current state — one snapshot
    /// acquisition that can serve many read-only scripts (the serving
    /// tier's per-tick read batch).
    pub fn read_view(&self) -> ReadView {
        ReadView {
            snap: self.inner.state.load(),
        }
    }

    /// Writers currently queued on (or holding) the writer mutex.
    ///
    /// This is the live admission-control signal behind the
    /// `engine.write_queue_depth` gauge: unlike the gauge (which is
    /// sampled at lock acquisition and compiles out without the `obs`
    /// feature), this reads the atomic directly, so backpressure
    /// policies can act on it in any build.
    pub fn write_queue_depth(&self) -> u64 {
        self.inner.write_queue.load(Ordering::SeqCst)
    }

    /// The current epoch (number of successful writes published).
    pub fn epoch(&self) -> u64 {
        self.inner.state.epoch()
    }

    /// The most recent committed write's structured [`Delta`], paired
    /// with the epoch it produced. `None` until the first write (and
    /// after [`Engine::restore`], which replaces state out-of-band).
    pub fn last_delta(&self) -> Option<(u64, Arc<Delta>)> {
        self.inner
            .last_delta
            .lock()
            .expect("delta lock poisoned")
            .clone()
    }

    /// Parse and execute a script; returns one response per statement.
    ///
    /// Statements run in order; within one call, a read after a write
    /// sees that write (the write publishes before the read loads its
    /// snapshot). A parse error anywhere aborts the whole script before
    /// any statement runs; an execution error stops the script at the
    /// failing statement, keeping earlier (published) effects.
    pub fn execute(&self, script: &str) -> Result<Vec<Response>> {
        let statements = parse(script)?;
        let mut out = Vec::with_capacity(statements.len());
        for stmt in statements {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Execute one parsed statement through the dispatch table.
    pub fn execute_statement(&self, stmt: Statement) -> Result<Response> {
        match &DISPATCH[stmt.kind() as usize] {
            Handler::Read(h) => {
                let snap = self.inner.state.load();
                h(&snap, stmt)
            }
            Handler::Write(h) => {
                let wobs = write_obs();
                let enqueue_epoch = self.inner.state.epoch();
                let queued = self.inner.write_queue.fetch_add(1, Ordering::SeqCst) + 1;
                let _queue_guard = QueueGuard(&self.inner.write_queue);
                let wait_started = Instant::now();
                let mut writer = self.inner.writer.lock().expect("writer lock poisoned");
                wobs.wait
                    .observe_ns(wait_started.elapsed().as_nanos() as u64);
                // Fresh load at acquisition: this writer plus anyone
                // who queued behind it while it waited.
                wobs.queue_depth
                    .set(self.inner.write_queue.load(Ordering::SeqCst));
                if queued > 1 {
                    // Someone was already queued (or writing) when this
                    // writer enqueued.
                    wobs.contended.incr();
                }
                wobs.epoch_lag
                    .set(self.inner.state.epoch().saturating_sub(enqueue_epoch));
                let snap = self.inner.state.load();
                let mut txn = WriteTxn {
                    world: (*snap).clone(),
                    delta: Delta::new(),
                    journal: &mut writer.journal,
                };
                let response = h(&mut txn, stmt)?;
                // Bring live views up to date with this write's delta
                // before anything publishes: a maintenance failure (the
                // fallback recomputation erroring) fails the statement
                // atomically, so readers never see a world whose views
                // disagree with their definitions.
                let mut delta = std::mem::take(&mut txn.delta);
                let summary = txn.world.maintain_views(&mut delta)?;
                if summary.changed() {
                    // View relations changed outside the WAL mutation
                    // vocabulary; only an image carries them.
                    txn.checkpoint()?;
                }
                let m = ivm_obs();
                m.maintained.add(summary.maintained as u64);
                m.fallback.add(summary.fallback as u64);
                m.detached.add(summary.detached as u64);
                let epoch = self.inner.state.publish(Arc::new(txn.world));
                *self.inner.last_delta.lock().expect("delta lock poisoned") =
                    Some((epoch, Arc::new(delta)));
                Ok(response)
            }
        }
    }

    /// LSN of the attached store, if one is `OPEN` (= mutations recorded
    /// since the store's birth).
    pub fn journal_lsn(&self) -> Option<u64> {
        let writer = self.inner.writer.lock().expect("writer lock poisoned");
        writer.journal.as_ref().map(Journal::next_lsn)
    }

    /// Flush and fsync any buffered WAL records of the open store.
    /// A no-op when no store is attached.
    pub fn sync(&self) -> Result<()> {
        let mut writer = self.inner.writer.lock().expect("writer lock poisoned");
        if let Some(j) = writer.journal.as_mut() {
            j.sync()?;
        }
        Ok(())
    }

    /// The incremental-view-maintenance cone-localization threshold:
    /// deltas touching more than this many cone-affected tuples make a
    /// consolidate node recompute instead of sweeping locally. Both
    /// sides of the cutoff are byte-identical; this is a cost knob.
    pub fn cone_limit(&self) -> usize {
        hrdm_core::differential::cone_limit()
    }

    /// Override the cone-localization threshold. The setting is
    /// process-global (it also honors the `HRDM_CONE_LIMIT` environment
    /// variable at first use), so it applies to every engine — and
    /// every shard — in the process.
    pub fn set_cone_limit(&self, limit: usize) {
        hrdm_core::differential::set_cone_limit(limit);
    }

    /// Replace the whole published state from a persistence image (no
    /// journal interaction; used by [`Session::restore`]).
    ///
    /// [`Session::restore`]: crate::Session::restore
    pub fn restore(&self, image: Image) {
        let _writer = self.inner.writer.lock().expect("writer lock poisoned");
        self.inner.state.publish(Arc::new(World::from_image(image)));
        *self.inner.last_delta.lock().expect("delta lock poisoned") = None;
    }
}

// ---------------------------------------------------------------------
// Write handlers
// ---------------------------------------------------------------------

fn exec_create_domain(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::CreateDomain { name } = stmt else {
        unreachable!("dispatched by kind")
    };
    txn.world.create_domain(&name)?;
    txn.delta.record_domain(&name);
    txn.record(CatalogMutation::CreateDomain { name: name.clone() })?;
    Ok(Response::Ok(format!("domain {name} created")))
}

fn exec_create_class(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::CreateClass { name, parents } = stmt else {
        unreachable!("dispatched by kind")
    };
    let domain = txn.world.add_class(&name, &parents)?;
    txn.delta.record_domain(&domain);
    txn.record(CatalogMutation::AddClass {
        domain: domain.clone(),
        name: name.clone(),
        parents,
    })?;
    Ok(Response::Ok(format!("class {name} created in {domain}")))
}

fn exec_create_instance(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::CreateInstance { name, parents } = stmt else {
        unreachable!("dispatched by kind")
    };
    let domain = txn.world.add_instance(&name, &parents)?;
    txn.delta.record_domain(&domain);
    txn.record(CatalogMutation::AddInstance {
        domain: domain.clone(),
        name: name.clone(),
        parents,
    })?;
    Ok(Response::Ok(format!("instance {name} created in {domain}")))
}

fn exec_prefer(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Prefer {
        stronger,
        weaker,
        domain,
    } = stmt
    else {
        unreachable!("dispatched by kind")
    };
    txn.world.prefer(&domain, &stronger, &weaker)?;
    txn.delta.record_domain(&domain);
    txn.record(CatalogMutation::Prefer {
        domain: domain.clone(),
        stronger: stronger.clone(),
        weaker: weaker.clone(),
    })?;
    Ok(Response::Ok(format!(
        "{stronger} now dominates {weaker} in {domain}"
    )))
}

fn exec_create_relation(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::CreateRelation { name, attributes } = stmt else {
        unreachable!("dispatched by kind")
    };
    txn.world.create_relation(&name, &attributes)?;
    txn.delta.record_reset(&name);
    txn.record(CatalogMutation::CreateRelation {
        name: name.clone(),
        attributes,
    })?;
    Ok(Response::Ok(format!("relation {name} created")))
}

fn exec_assert(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Assert {
        relation,
        negated,
        values,
    } = stmt
    else {
        unreachable!("dispatched by kind")
    };
    let truth = if negated {
        Truth::Negative
    } else {
        Truth::Positive
    };
    let (rendered, item) = txn.world.assert_item(&relation, &values, truth)?;
    txn.delta.record_added(&relation, item, truth);
    txn.record(CatalogMutation::Assert {
        relation: relation.clone(),
        values: values.iter().map(|v| v.name.clone()).collect(),
        truth,
    })?;
    Ok(Response::Ok(format!(
        "asserted {} {rendered} in {relation}",
        truth.sign()
    )))
}

fn exec_retract(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Retract { relation, values } = stmt else {
        unreachable!("dispatched by kind")
    };
    let (rendered, item) = txn.world.retract_item(&relation, &values)?;
    txn.delta.record_removed(&relation, item);
    txn.record(CatalogMutation::Retract {
        relation: relation.clone(),
        values: values.iter().map(|v| v.name.clone()).collect(),
    })?;
    Ok(Response::Ok(format!(
        "retracted {rendered} from {relation}"
    )))
}

fn exec_consolidate(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Consolidate { relation } = stmt else {
        unreachable!("dispatched by kind")
    };
    let removed = txn.world.consolidate_in_place(&relation)?;
    txn.delta.record_reset(&relation);
    txn.checkpoint()?;
    Ok(Response::Ok(format!(
        "consolidated {relation}: removed {removed} redundant tuple(s)"
    )))
}

fn exec_explicate(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Explicate { relation, attrs } = stmt else {
        unreachable!("dispatched by kind")
    };
    let tuples = txn.world.explicate_in_place(&relation, &attrs)?;
    txn.delta.record_reset(&relation);
    txn.checkpoint()?;
    Ok(Response::Ok(format!(
        "explicated {relation}: now {tuples} tuple(s)"
    )))
}

fn exec_set_preemption(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::SetPreemption { relation, mode } = stmt else {
        unreachable!("dispatched by kind")
    };
    let preemption = match mode.to_ascii_uppercase().as_str() {
        "OFF-PATH" => Preemption::OffPath,
        "ON-PATH" => Preemption::OnPath,
        "NONE" | "NO-PREEMPTION" => Preemption::NoPreemption,
        other => {
            return Err(HqlError::Parse {
                found: other.to_string(),
                expected: "OFF-PATH, ON-PATH, or NONE".into(),
            })
        }
    };
    txn.world.set_preemption(&relation, preemption)?;
    txn.delta.record_reset(&relation);
    txn.record(CatalogMutation::SetPreemption {
        relation: relation.clone(),
        mode: preemption,
    })?;
    Ok(Response::Ok(format!(
        "{relation} now uses {preemption} preemption"
    )))
}

fn exec_let(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Let { name, derivation } = stmt else {
        unreachable!("dispatched by kind")
    };
    let derived = txn.world.derive(&derivation)?;
    let tuples = txn.world.store_derived(&name, derived)?;
    // The fresh binding becomes a live view: from now on the writer
    // maintains it per-delta at commit. Its own birth is deliberately
    // not recorded in the delta — nothing can depend on it yet, and a
    // row entry under its name would read as a direct write (detach).
    txn.world.register_view(&name, derivation)?;
    txn.checkpoint()?;
    Ok(Response::Ok(format!(
        "relation {name} defined ({tuples} tuples)"
    )))
}

fn exec_load(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Load { path } = stmt else {
        unreachable!("dispatched by kind")
    };
    let image = hrdm_persist::Image::load(&path)?;
    txn.world = World::from_image(image);
    // Wholesale state replacement: every relation resets and any live
    // views are gone (images carry relations, not view definitions).
    let names: Vec<String> = txn.world.relation_names().map(String::from).collect();
    for name in &names {
        txn.delta.record_reset(name);
    }
    txn.checkpoint()?;
    Ok(Response::Ok(format!(
        "session restored from {path} ({} domain(s), {} relation(s))",
        txn.world.domain_count(),
        txn.world.relation_count()
    )))
}

fn exec_open(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Open { dir, sync_every } = stmt else {
        unreachable!("dispatched by kind")
    };
    let path = Path::new(&dir);
    std::fs::create_dir_all(path).map_err(hrdm_persist::PersistError::from)?;
    let recovered = hrdm_persist::recover(path)?;
    let image = Image::from_catalog(&recovered.catalog);
    let group = sync_every.unwrap_or(1) as usize;
    // Start a fresh generation at the recovered LSN: the checkpoint
    // makes the replayed tail durable and drops any torn bytes, so a
    // re-crash cannot regress.
    let journal = Journal::begin(path, recovered.report.next_lsn(), &image, group)?;
    txn.world = World::from_image(image);
    let names: Vec<String> = txn.world.relation_names().map(String::from).collect();
    for name in &names {
        txn.delta.record_reset(name);
    }
    *txn.journal = Some(journal);
    let r = &recovered.report;
    Ok(Response::Ok(format!(
        "store {dir} open at lsn {} ({} domain(s), {} relation(s); \
         {} record(s) replayed, {} byte(s) truncated)",
        r.next_lsn(),
        txn.world.domain_count(),
        txn.world.relation_count(),
        r.records_replayed,
        r.truncated_bytes
    )))
}

fn exec_checkpoint(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::Checkpoint = stmt else {
        unreachable!("dispatched by kind")
    };
    let Some(j) = txn.journal.as_mut() else {
        return Err(HqlError::Execution(
            "no store open; use OPEN \"dir\" first".into(),
        ));
    };
    let image = txn.world.to_image();
    let lsn = j.checkpoint(&image)?;
    Ok(Response::Ok(format!("checkpoint written at lsn {lsn}")))
}

fn exec_drop_domain(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::DropDomain { name } = stmt else {
        unreachable!("dispatched by kind")
    };
    txn.world.drop_domain(&name)?;
    txn.delta.record_domain(&name);
    txn.record(CatalogMutation::DropDomain { name: name.clone() })?;
    Ok(Response::Ok(format!("domain {name} dropped")))
}

fn exec_drop_relation(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::DropRelation { name } = stmt else {
        unreachable!("dispatched by kind")
    };
    txn.world.drop_relation(&name)?;
    // The reset makes any view depending on the dropped relation fail
    // its maintenance pass — and therefore this statement — atomically.
    txn.delta.record_reset(&name);
    txn.record(CatalogMutation::DropRelation { name: name.clone() })?;
    Ok(Response::Ok(format!("relation {name} dropped")))
}

fn exec_rename_relation(txn: &mut WriteTxn<'_>, stmt: Statement) -> Result<Response> {
    let Statement::RenameRelation { from, to } = stmt else {
        unreachable!("dispatched by kind")
    };
    txn.world.rename_relation(&from, &to)?;
    // Both names reset: views depending on the old name fail atomically
    // (their derivations no longer resolve), and consumers of the new
    // name rebuild from scratch. A rename is outside the WAL mutation
    // vocabulary, so durability takes an implicit checkpoint.
    txn.delta.record_reset(&from);
    txn.delta.record_reset(&to);
    txn.checkpoint()?;
    Ok(Response::Ok(format!("relation {from} renamed to {to}")))
}

// ---------------------------------------------------------------------
// Read handlers
// ---------------------------------------------------------------------

fn exec_holds(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Holds { relation, values } = stmt else {
        unreachable!("dispatched by kind")
    };
    let rel = world.relation(&relation)?;
    let item = resolve_item(rel, &values)?;
    let rendered = rel.schema().display_item(&item);
    let value = match rel.bind(&item) {
        hrdm_core::Binding::Conflict { .. } => None,
        b => Some(b.truth() == Some(Truth::Positive)),
    };
    Ok(Response::Truth {
        item: rendered,
        value,
    })
}

fn exec_holds3(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Holds3 { relation, values } = stmt else {
        unreachable!("dispatched by kind")
    };
    let rel = world.relation(&relation)?;
    let item = resolve_item(rel, &values)?;
    let rendered = rel.schema().display_item(&item);
    let verdict = match hrdm_core::three_valued::holds3(rel, &item) {
        hrdm_core::three_valued::Truth3::True => "true",
        hrdm_core::three_valued::Truth3::False => "false",
        hrdm_core::three_valued::Truth3::Unknown => "unknown",
    };
    Ok(Response::Ok(format!("{rendered}: {verdict}")))
}

fn exec_why(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Why { relation, values } = stmt else {
        unreachable!("dispatched by kind")
    };
    let rel = world.relation(&relation)?;
    let item = resolve_item(rel, &values)?;
    let j = justify(rel, &item);
    let mut out = format!(
        "{}: {:?}\napplicable:\n",
        rel.schema().display_item(&item),
        j.binding.truth().map(Truth::holds)
    );
    for t in &j.applicable {
        out.push_str(&format!(
            "    {} {}\n",
            t.truth.sign(),
            rel.schema().display_item(&t.item)
        ));
    }
    out.push_str("decisive:\n");
    for t in &j.decisive {
        out.push_str(&format!(
            "    {} {}\n",
            t.truth.sign(),
            rel.schema().display_item(&t.item)
        ));
    }
    Ok(Response::Justification(out))
}

fn exec_check(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Check { relation } = stmt else {
        unreachable!("dispatched by kind")
    };
    let rel = world.relation(&relation)?;
    let conflicts = hrdm_core::conflict::find_conflicts(rel)
        .into_iter()
        .map(|c| rel.schema().display_item(&c.item))
        .collect();
    Ok(Response::Conflicts(conflicts))
}

fn exec_show(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Show { relation } = stmt else {
        unreachable!("dispatched by kind")
    };
    let rel = world.relation(&relation)?;
    Ok(Response::Table(render_table(rel)))
}

fn exec_show_domain(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::ShowDomain { name } = stmt else {
        unreachable!("dispatched by kind")
    };
    let g = world.domain(&name)?;
    Ok(Response::Dot(hrdm_hierarchy::dot::to_dot(g, &name)))
}

fn exec_count(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Count { relation, by } = stmt else {
        unreachable!("dispatched by kind")
    };
    let rel = world.relation(&relation)?;
    match by {
        None => {
            let n = hrdm_core::ops::cardinality(rel);
            Ok(Response::Ok(format!(
                "{relation} has {n} atom(s) in its extension"
            )))
        }
        Some(attr) => {
            let rows = hrdm_core::ops::group_count_by_name(rel, &attr)?;
            let mut out = format!("{relation} grouped by {attr}:\n");
            for (name, count) in rows {
                out.push_str(&format!("    {name}: {count}\n"));
            }
            Ok(Response::Table(out))
        }
    }
}

fn exec_save(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Save { path } = stmt else {
        unreachable!("dispatched by kind")
    };
    world.to_image().save(&path)?;
    Ok(Response::Ok(format!("session saved to {path}")))
}

fn exec_explain(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Explain { derivation } = stmt else {
        unreachable!("dispatched by kind")
    };
    let plan = world.plan_of(&derivation)?;
    Ok(Response::Plan(plan.explain()))
}

fn exec_trace(world: &World, stmt: Statement) -> Result<Response> {
    let Statement::Trace { derivation } = stmt else {
        unreachable!("dispatched by kind")
    };
    let plan = world.plan_of(&derivation)?;
    let (optimized, rewrites) = plan.optimize();
    let executed = optimized.execute()?;
    let mut out = executed.trace.render();
    if rewrites.is_empty() {
        out.push_str("no rewrites applied\n");
    } else {
        out.push_str("rewrites applied:\n");
        for (k, rw) in rewrites.iter().enumerate() {
            out.push_str(&format!("  {}. {} — {}\n", k + 1, rw.rule, rw.detail));
        }
    }
    out.push_str(&format!(
        "result: {} stored tuple(s), {} canonicalized away\n",
        executed.relation.len(),
        executed.canonicalized_away
    ));
    Ok(Response::Trace(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StatementKind;

    /// The dispatch table's effect classes must agree with the
    /// [`StatementKind::is_read_only`] classification the engine (and
    /// the server's admission logic) relies on.
    #[test]
    fn dispatch_table_matches_read_write_classification() {
        use StatementKind::*;
        let kinds = [
            CreateDomain,
            CreateClass,
            CreateInstance,
            Prefer,
            CreateRelation,
            Assert,
            Retract,
            Holds,
            Holds3,
            Why,
            Check,
            Show,
            ShowDomain,
            Consolidate,
            Explicate,
            SetPreemption,
            Count,
            Save,
            Load,
            Open,
            Checkpoint,
            Let,
            Explain,
            Trace,
            DropDomain,
            DropRelation,
            RenameRelation,
        ];
        assert_eq!(kinds.len(), STATEMENT_KINDS);
        for (i, kind) in kinds.into_iter().enumerate() {
            assert_eq!(kind as usize, i, "discriminants are table indexes");
            let is_read = matches!(DISPATCH[i], Handler::Read(_));
            assert_eq!(
                is_read,
                kind.is_read_only(),
                "{kind:?} handler class disagrees with its classification"
            );
        }
    }

    #[test]
    fn reads_do_not_advance_the_epoch_and_writes_do() {
        let engine = Engine::new();
        assert_eq!(engine.epoch(), 0);
        engine.execute("CREATE DOMAIN D;").unwrap();
        assert_eq!(engine.epoch(), 1);
        engine
            .execute("CREATE CLASS A UNDER D; CREATE RELATION R (V: D);")
            .unwrap();
        assert_eq!(engine.epoch(), 3);
        engine.execute("SHOW R; CHECK R; SHOW DOMAIN D;").unwrap();
        assert_eq!(engine.epoch(), 3, "reads publish nothing");
    }

    #[test]
    fn failed_writes_publish_nothing() {
        let engine = Engine::new();
        engine.execute("CREATE DOMAIN D;").unwrap();
        let epoch = engine.epoch();
        assert!(engine.execute("CREATE DOMAIN D;").is_err());
        assert_eq!(engine.epoch(), epoch, "duplicate DDL left no trace");
        // A half-failing script keeps the statements before the failure.
        let r = engine.execute("CREATE CLASS A UNDER D; CREATE CLASS A UNDER D;");
        assert!(r.is_err());
        assert_eq!(engine.epoch(), epoch + 1);
        assert!(engine.snapshot().domain("D").unwrap().node("A").is_ok());
    }

    #[test]
    fn old_snapshots_stay_valid_while_writes_continue() {
        let engine = Engine::new();
        engine
            .execute(
                "CREATE DOMAIN D; CREATE CLASS A UNDER D;\
                 CREATE RELATION R (V: D); ASSERT R (ALL A);",
            )
            .unwrap();
        let before = engine.snapshot();
        engine
            .execute("CREATE INSTANCE x OF A; ASSERT NOT R (x);")
            .unwrap();
        let after = engine.snapshot();
        assert_eq!(before.relation("R").unwrap().len(), 1);
        assert_eq!(after.relation("R").unwrap().len(), 2);
        assert!(after.epoch() > before.epoch());
    }

    #[test]
    fn engine_handles_share_state() {
        let a = Engine::new();
        let b = a.clone();
        a.execute("CREATE DOMAIN D;").unwrap();
        assert_eq!(b.epoch(), 1);
        assert!(b.snapshot().domain("D").is_ok());
    }

    /// A pinned [`ReadView`] serves read-only scripts byte-identically
    /// to [`Engine::execute`] at the same epoch, refuses scripts with
    /// writes, and stays byte-stable while writes continue publishing.
    #[test]
    fn read_views_pin_one_snapshot_for_many_read_scripts() {
        let engine = Engine::new();
        engine
            .execute(
                "CREATE DOMAIN D; CREATE CLASS A UNDER D; \
                 CREATE RELATION R (V: D); ASSERT R (ALL A);",
            )
            .unwrap();
        let view = engine.read_view();
        assert_eq!(view.epoch(), engine.epoch());
        let render =
            |rs: Vec<Response>| -> Vec<String> { rs.iter().map(ToString::to_string).collect() };
        for script in ["SHOW R;", "CHECK R; COUNT R;", "HOLDS R (ALL A);"] {
            let via_view = render(view.try_execute(script).expect("read-only").unwrap());
            let via_engine = render(engine.execute(script).unwrap());
            assert_eq!(via_view, via_engine, "{script}");
        }
        // Mutating statements anywhere in the script refuse the view.
        assert!(view.try_execute("CREATE CLASS B UNDER D;").is_none());
        assert!(view.try_execute("SHOW R; ASSERT R (ALL A);").is_none());
        // Parse errors are served from the view without engine access.
        assert!(view.try_execute("EXPLODE").unwrap().is_err());
        // The view is immune to later writes; a fresh view sees them.
        let before = render(view.try_execute("COUNT R;").unwrap().unwrap());
        engine
            .execute("CREATE INSTANCE x OF A; ASSERT NOT R (x);")
            .unwrap();
        assert_eq!(
            render(view.try_execute("COUNT R;").unwrap().unwrap()),
            before,
            "pinned views are byte-stable across writes"
        );
        assert_ne!(
            render(engine.read_view().try_execute("SHOW R;").unwrap().unwrap()),
            render(view.try_execute("SHOW R;").unwrap().unwrap()),
        );
        // The queue-depth signal reads zero when no writer is queued.
        assert_eq!(engine.write_queue_depth(), 0);
    }

    /// The write-contention telemetry moves under concurrent writers:
    /// `engine.write_contended` counts acquisitions that found the
    /// writer mutex occupied, `engine.write_wait` samples every lock
    /// wait, and the `engine.write_queue_depth` gauge reports observed
    /// depth. Contention is inherently timing-dependent, so the test
    /// retries rounds of parallel writers until the counter moves
    /// (with a generous deadline) instead of asserting on one race.
    #[cfg(feature = "obs")]
    #[test]
    fn write_contention_telemetry_moves_under_concurrent_writers() {
        let wobs = write_obs();
        let wait_before = wobs.wait.count();
        let contended_before = wobs.contended.get();
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        let mut round = 0u32;
        while wobs.contended.get() == contended_before {
            assert!(
                Instant::now() < deadline,
                "no contended write-lock acquisition after {round} rounds"
            );
            let engine = Engine::new();
            engine.execute("CREATE DOMAIN D;").unwrap();
            std::thread::scope(|s| {
                for t in 0..4 {
                    let engine = engine.clone();
                    s.spawn(move || {
                        for i in 0..50 {
                            engine
                                .execute(&format!("CREATE CLASS C_{round}_{t}_{i} UNDER D;"))
                                .unwrap();
                        }
                    });
                }
            });
            assert_eq!(engine.epoch(), 1 + 4 * 50, "every write published");
            round += 1;
        }
        assert!(
            wobs.wait.count() >= wait_before + 200,
            "every write-lock wait is sampled"
        );
        // The depth gauge was last set by some writer that held the
        // lock; whatever it saw, at least itself was queued.
        assert!(wobs.queue_depth.get() >= 1);
        // The lag gauge was set alongside it and is bounded by the
        // writes a round publishes.
        assert!(wobs.epoch_lag.get() <= 4 * 50);
    }
}
