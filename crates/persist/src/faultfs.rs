//! Deterministic write-fault injection for crash testing.
//!
//! [`FaultFs`] wraps any [`Write`] and misbehaves at exactly the Nth
//! `write` call — the three classic torn-write shapes:
//!
//! * [`Fault::Drop`] — the Nth write (and everything after) never
//!   reaches the inner writer: a crash *before* the write hit disk.
//! * [`Fault::Truncate`] — only a prefix of the Nth write lands, then
//!   the stream goes dead: a torn sector at the moment of the crash.
//! * [`Fault::BitFlip`] — the Nth write lands with one bit flipped and
//!   the stream *continues*: silent media corruption that only the
//!   CRC can catch.
//!
//! Everything is counted, nothing is random: the same `(trigger,
//! fault)` pair replays the same byte stream every run, which is what
//! lets `crash_recovery.rs` sweep every kill point exhaustively.

use std::io::{Result as IoResult, Write};

/// The misbehavior to inject at the trigger point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Swallow the Nth write and all writes after it.
    Drop,
    /// Let only the first `k` bytes of the Nth write land, then swallow
    /// everything (a torn final write).
    Truncate(usize),
    /// Flip the given bit (index into the Nth write's payload,
    /// `bit / 8` capped to the write's length) and keep going.
    BitFlip(usize),
}

/// A counting, fault-injecting [`Write`] wrapper.
pub struct FaultFs<W> {
    inner: W,
    fault: Option<(u64, Fault)>,
    writes: u64,
    tripped: bool,
    dead: bool,
}

impl<W: Write> FaultFs<W> {
    /// Pass-through wrapper that only counts writes — run the workload
    /// once with this to learn how many kill points there are.
    pub fn counting(inner: W) -> FaultFs<W> {
        FaultFs {
            inner,
            fault: None,
            writes: 0,
            tripped: false,
            dead: false,
        }
    }

    /// Inject `fault` at the `trigger`-th write call (0-based).
    pub fn with_fault(inner: W, trigger: u64, fault: Fault) -> FaultFs<W> {
        FaultFs {
            fault: Some((trigger, fault)),
            ..FaultFs::counting(inner)
        }
    }

    /// Number of `write` calls observed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Did the configured fault fire?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultFs<W> {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        let n = self.writes;
        self.writes += 1;
        if self.dead {
            // The simulated machine is off: acknowledge and discard.
            return Ok(buf.len());
        }
        match self.fault {
            Some((trigger, fault)) if n == trigger => {
                self.tripped = true;
                match fault {
                    Fault::Drop => {
                        self.dead = true;
                        Ok(buf.len())
                    }
                    Fault::Truncate(k) => {
                        let k = k.min(buf.len());
                        self.inner.write_all(&buf[..k])?;
                        self.dead = true;
                        Ok(buf.len())
                    }
                    Fault::BitFlip(bit) => {
                        let mut copy = buf.to_vec();
                        if !copy.is_empty() {
                            let at = (bit / 8) % copy.len();
                            copy[at] ^= 1 << (bit % 8);
                        }
                        self.inner.write_all(&copy)?;
                        Ok(buf.len())
                    }
                }
            }
            _ => {
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> IoResult<()> {
        if self.dead {
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(fault: Option<(u64, Fault)>) -> (Vec<u8>, u64, bool) {
        let mut f = match fault {
            Some((t, fault)) => FaultFs::with_fault(Vec::new(), t, fault),
            None => FaultFs::counting(Vec::new()),
        };
        for chunk in [&b"aaaa"[..], &b"bbbb"[..], &b"cccc"[..]] {
            f.write_all(chunk).unwrap();
        }
        f.flush().unwrap();
        let writes = f.writes();
        let tripped = f.tripped();
        (f.into_inner(), writes, tripped)
    }

    #[test]
    fn counting_passes_through() {
        let (bytes, writes, tripped) = run(None);
        assert_eq!(bytes, b"aaaabbbbcccc");
        assert_eq!(writes, 3);
        assert!(!tripped);
    }

    #[test]
    fn drop_kills_the_stream_from_the_trigger() {
        let (bytes, writes, tripped) = run(Some((1, Fault::Drop)));
        assert_eq!(bytes, b"aaaa", "write 1 and later are swallowed");
        assert_eq!(writes, 3, "the workload itself never notices");
        assert!(tripped);
    }

    #[test]
    fn truncate_tears_the_nth_write() {
        let (bytes, _, tripped) = run(Some((1, Fault::Truncate(2))));
        assert_eq!(bytes, b"aaaabb", "two bytes of write 1 land");
        assert!(tripped);
        // Truncating to more than the write's length is a full write.
        let (bytes, _, _) = run(Some((2, Fault::Truncate(99))));
        assert_eq!(bytes, b"aaaabbbbcccc");
    }

    #[test]
    fn bitflip_corrupts_and_continues() {
        let (bytes, _, tripped) = run(Some((1, Fault::BitFlip(0))));
        assert_eq!(bytes, b"aaaa\x63bbbcccc", "bit 0 of write 1 flipped");
        assert!(tripped);
    }

    #[test]
    fn trigger_past_the_end_never_fires() {
        let (bytes, _, tripped) = run(Some((17, Fault::Drop)));
        assert_eq!(bytes, b"aaaabbbbcccc");
        assert!(!tripped);
    }
}
