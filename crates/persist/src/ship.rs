//! WAL shipping: tail a live store directory and stream its committed
//! history to a read replica.
//!
//! A [`WalTailer`] attaches to the same directory a primary journals
//! into (see [`crate::store`]) and, on every [`poll`](WalTailer::poll),
//! reports what is newly durable as [`ShipEvent`]s:
//!
//! * [`ShipEvent::Rollover`] — a new generation appeared (first attach,
//!   or the primary took a checkpoint). Carries the checkpoint
//!   [`Image`]; the replica replaces its state with it wholesale.
//! * [`ShipEvent::Mutation`] — one committed WAL record past what was
//!   already delivered, numbered by its LSN (mutations applied since
//!   the store was born).
//!
//! The tailer is strictly **read-only** and crash-tolerant by the same
//! argument as recovery: every delivered record was CRC-verified, a
//! torn or corrupt tail is a clean stop (the next poll re-reads the
//! file and picks up whatever the primary has completed since), and a
//! vanished generation (checkpointed away mid-poll) resolves as a
//! rollover to the newer one. Polling therefore always yields a
//! *prefix* of the primary's committed history, delivered exactly once
//! across the tailer's lifetime.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use hrdm_core::mutation::CatalogMutation;

use crate::error::{PersistError, Result};
use crate::image::Image;
use crate::store::{checkpoint_path, load_checkpoint, wal_path};
use crate::wal::{WalReader, WalRecord};

/// One unit of shipped history.
pub enum ShipEvent {
    /// A new generation: the replica must replace its state with this
    /// checkpoint image (which captures the first `lsn` mutations).
    Rollover {
        /// LSN of the checkpoint the new generation starts from.
        lsn: u64,
        /// The checkpoint image.
        image: Image,
    },
    /// One committed mutation, the `lsn`-th applied since the store was
    /// born (1-based; follows the generation's checkpoint LSN).
    Mutation {
        /// This mutation's LSN.
        lsn: u64,
        /// The mutation itself.
        mutation: CatalogMutation,
    },
}

/// Newest checkpoint LSN in `dir` whose image verifies, skipping
/// corrupt ones exactly like recovery does.
fn newest_intact_checkpoint(dir: &Path) -> Result<Option<(u64, Image)>> {
    if !dir.is_dir() {
        return Ok(None);
    }
    let mut lsns = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".ckpt"))
        {
            if let Ok(lsn) = u64::from_str_radix(hex, 16) {
                lsns.push(lsn);
            }
        }
    }
    lsns.sort_unstable();
    for lsn in lsns.into_iter().rev() {
        match load_checkpoint(&checkpoint_path(dir, lsn)) {
            Ok((file_lsn, image)) if file_lsn == lsn => return Ok(Some((lsn, image))),
            Ok(_) | Err(_) => continue, // skipped, like recovery
        }
    }
    Ok(None)
}

/// A read-only tailer over a store directory's live generation.
pub struct WalTailer {
    dir: PathBuf,
    /// Checkpoint LSN of the generation being tailed; `None` until the
    /// first generation is observed.
    generation: Option<u64>,
    /// Mutation records already delivered from the current generation's
    /// WAL (the leading checkpoint record is not counted).
    delivered: u64,
}

impl WalTailer {
    /// Attach to a store directory. The directory need not exist yet —
    /// the first [`poll`](WalTailer::poll) after the primary `OPEN`s it
    /// reports the initial generation as a rollover.
    pub fn attach(dir: impl Into<PathBuf>) -> WalTailer {
        WalTailer {
            dir: dir.into(),
            generation: None,
            delivered: 0,
        }
    }

    /// The store directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN of the last event delivered (checkpoint LSN + mutations
    /// delivered on top); 0 before the first generation is observed.
    pub fn shipped_lsn(&self) -> u64 {
        self.generation.unwrap_or(0) + self.delivered
    }

    /// Collect everything newly committed since the last poll.
    ///
    /// Returns an empty vector when nothing changed. A torn WAL tail is
    /// not an error — delivery stops at the last intact record and the
    /// next poll continues from there. IO failures (other than files
    /// legitimately missing mid-rollover) propagate.
    pub fn poll(&mut self) -> Result<Vec<ShipEvent>> {
        let _g = hrdm_obs::span!("ship.poll", dir = self.dir.display());
        let mut events = Vec::new();

        // 1. Generation check: first attach, or the primary rolled over.
        match newest_intact_checkpoint(&self.dir)? {
            None => return Ok(events), // store not born yet
            Some((lsn, image)) => {
                if self.generation != Some(lsn) {
                    self.generation = Some(lsn);
                    self.delivered = 0;
                    events.push(ShipEvent::Rollover { lsn, image });
                    hrdm_obs::metrics::counter("ship.rollovers").incr();
                }
            }
        }
        let generation = self.generation.expect("set above");

        // 2. Tail the generation's WAL past what was already delivered.
        //    The file may not exist yet (checkpoint written, WAL not):
        //    that's just "nothing to ship".
        let path = wal_path(&self.dir, generation);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(events),
            Err(e) => return Err(e.into()),
        };
        let mut reader = match WalReader::new(BufReader::new(file)) {
            Ok(r) => r,
            Err(PersistError::Io(e)) => return Err(PersistError::Io(e)),
            Err(_) => return Ok(events), // torn header: nothing durable yet
        };
        let mut seen = 0u64;
        loop {
            match reader.next() {
                Ok(None) => break,
                Ok(Some(WalRecord::Checkpoint { lsn })) => {
                    if lsn != generation {
                        return Err(PersistError::Corrupt(format!(
                            "wal names checkpoint {lsn}, expected {generation}"
                        )));
                    }
                }
                Ok(Some(WalRecord::Mutation(mutation))) => {
                    seen += 1;
                    if seen > self.delivered {
                        self.delivered = seen;
                        events.push(ShipEvent::Mutation {
                            lsn: generation + seen,
                            mutation,
                        });
                        hrdm_obs::metrics::counter("ship.mutations").incr();
                    }
                }
                Err(PersistError::Io(e)) => return Err(PersistError::Io(e)),
                Err(_) => break, // torn tail: clean stop, next poll retries
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DurableCatalog;
    use hrdm_core::prelude::Truth;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hrdm_ship_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mutations() -> Vec<CatalogMutation> {
        use CatalogMutation::*;
        vec![
            CreateDomain {
                name: "Animal".into(),
            },
            AddClass {
                domain: "Animal".into(),
                name: "Bird".into(),
                parents: vec!["Animal".into()],
            },
            CreateRelation {
                name: "Flies".into(),
                attributes: vec![("Creature".into(), "Animal".into())],
            },
            Assert {
                relation: "Flies".into(),
                values: vec!["Bird".into()],
                truth: Truth::Positive,
            },
        ]
    }

    #[test]
    fn ships_a_live_store_in_order() {
        let dir = temp_dir("order");
        let mut tailer = WalTailer::attach(&dir);
        assert!(tailer.poll().unwrap().is_empty(), "store not born yet");

        let mut store = DurableCatalog::open(&dir).unwrap();
        let events = tailer.poll().unwrap();
        assert!(
            matches!(events.as_slice(), [ShipEvent::Rollover { lsn: 0, .. }]),
            "first generation arrives as a rollover"
        );

        for (i, m) in mutations().into_iter().enumerate() {
            store.mutate(m.clone()).unwrap();
            let events = tailer.poll().unwrap();
            match events.as_slice() {
                [ShipEvent::Mutation { lsn, mutation }] => {
                    assert_eq!(*lsn, i as u64 + 1);
                    assert_eq!(*mutation, m);
                }
                other => panic!("expected one mutation, got {} events", other.len()),
            }
        }
        assert_eq!(tailer.shipped_lsn(), mutations().len() as u64);
        assert!(tailer.poll().unwrap().is_empty(), "exactly-once delivery");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_arrives_as_rollover_without_replay() {
        let dir = temp_dir("rollover");
        let mut store = DurableCatalog::open(&dir).unwrap();
        let mut tailer = WalTailer::attach(&dir);
        for m in mutations() {
            store.mutate(m).unwrap();
        }
        let _ = tailer.poll().unwrap(); // drain: rollover(0) + 4 mutations
        let lsn = store.checkpoint().unwrap();
        let mut events = tailer.poll().unwrap();
        assert_eq!(events.len(), 1);
        match events.pop().unwrap() {
            ShipEvent::Rollover { lsn: got, image } => {
                assert_eq!(got, lsn);
                assert_eq!(
                    image.into_catalog().render_stable(),
                    store.catalog().render_stable(),
                    "rollover image equals the primary state"
                );
            }
            ShipEvent::Mutation { .. } => panic!("expected a rollover"),
        }
        assert!(tailer.poll().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn late_attach_catches_up_from_the_checkpoint() {
        let dir = temp_dir("late");
        let mut store = DurableCatalog::open(&dir).unwrap();
        for m in mutations() {
            store.mutate(m).unwrap();
        }
        let lsn = store.checkpoint().unwrap();
        store
            .mutate(CatalogMutation::CreateDomain {
                name: "Tool".into(),
            })
            .unwrap();

        let mut tailer = WalTailer::attach(&dir);
        let events = tailer.poll().unwrap();
        assert_eq!(events.len(), 2, "rollover + one post-checkpoint mutation");
        assert!(matches!(&events[0], ShipEvent::Rollover { lsn: got, .. } if *got == lsn));
        assert!(matches!(
            &events[1],
            ShipEvent::Mutation { lsn: got, mutation: CatalogMutation::CreateDomain { name } }
                if *got == lsn + 1 && name == "Tool"
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
