//! The `HRDM1` image: a whole catalog in one byte stream.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "HRDM1\0"
//! version u32 (= 1)
//! domains u32 count, then per domain:
//!   name, node-count u32,
//!   per node (in id order, root first): name, kind u8 (0=domain 1=class 2=instance)
//!   edge-count u32, per edge: from u32, to u32, kind u8 (0=subset 1=preference)
//! relations u32 count, then per relation:
//!   name, preemption u8 (0=off-path 1=on-path 2=none), arity u32,
//!   per attribute: attr-name, domain-index u32,
//!   tuple-count u32, per tuple: truth u8 (0=negative 1=positive), node u32 × arity
//! ```

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use hrdm_core::prelude::*;
use hrdm_hierarchy::{EdgeKind, HierarchyGraph, NodeId, NodeKind};

use crate::codec::{read_str, read_u32, read_u8, write_str, write_u32, write_u8};
use crate::error::{PersistError, Result};

const MAGIC: &[u8; 6] = b"HRDM1\0";
const VERSION: u32 = 1;

/// Upper bound on any decoded element count. Counts are untrusted input;
/// a corrupt length must produce [`PersistError::Corrupt`], not an
/// attempted multi-gigabyte allocation (found by fuzz_corruption).
const COUNT_CAP: usize = 16 << 20;

fn checked_count(n: u32, what: &str) -> Result<usize> {
    let n = n as usize;
    if n > COUNT_CAP {
        Err(PersistError::Corrupt(format!(
            "{what} count {n} exceeds sanity cap"
        )))
    } else {
        Ok(n)
    }
}

/// An in-memory catalog image: named shared domains plus named
/// relations over them.
#[derive(Default)]
pub struct Image {
    domains: Vec<(String, Arc<HierarchyGraph>)>,
    relations: Vec<(String, HRelation)>,
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Image({} domains: {:?}; {} relations: {:?})",
            self.domains.len(),
            self.domains.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            self.relations.len(),
            self.relations.iter().map(|(n, _)| n).collect::<Vec<_>>()
        )
    }
}

impl Image {
    /// An empty image.
    pub fn new() -> Image {
        Image::default()
    }

    /// Register a domain (its `Arc` identity is what relations must
    /// share).
    pub fn add_domain(&mut self, name: impl Into<String>, graph: Arc<HierarchyGraph>) {
        self.domains.push((name.into(), graph));
    }

    /// Register a relation. Its attribute domains must have been added
    /// (checked at encode time).
    pub fn add_relation(&mut self, name: impl Into<String>, relation: HRelation) {
        self.relations.push((name.into(), relation));
    }

    /// Build an image from a [`Catalog`], sharing its domain handles.
    pub fn from_catalog(catalog: &Catalog) -> Image {
        let mut image = Image::new();
        for name in catalog.domain_names() {
            image.add_domain(name, catalog.domain(name).expect("listed").clone());
        }
        for name in catalog.relation_names() {
            image.add_relation(name, catalog.relation(name).expect("listed").clone());
        }
        image
    }

    /// Convert back into a [`Catalog`].
    pub fn into_catalog(self) -> Catalog {
        let mut catalog = Catalog::new();
        for (name, graph) in self.domains {
            // Re-wrap: Catalog interns its own Arc; relations keep theirs
            // (they were rebuilt against these same Arcs at decode time).
            catalog.add_domain_arc(name, graph);
        }
        for (name, relation) in self.relations {
            catalog.add_relation(name, relation);
        }
        catalog
    }

    /// Look up a restored relation.
    pub fn relation(&self, name: &str) -> Result<&HRelation> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .ok_or_else(|| PersistError::NotFound(name.to_string()))
    }

    /// Look up a restored domain.
    pub fn domain(&self, name: &str) -> Result<&Arc<HierarchyGraph>> {
        self.domains
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, g)| g)
            .ok_or_else(|| PersistError::NotFound(name.to_string()))
    }

    /// Domain names in insertion order.
    pub fn domain_names(&self) -> impl Iterator<Item = &str> {
        self.domains.iter().map(|(n, _)| n.as_str())
    }

    /// Relation names in insertion order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|(n, _)| n.as_str())
    }

    fn domain_index(&self, graph: &Arc<HierarchyGraph>) -> Result<u32> {
        self.domains
            .iter()
            .position(|(_, g)| Arc::ptr_eq(g, graph))
            .map(|i| i as u32)
            .ok_or_else(|| {
                PersistError::Rebuild("relation references a domain not added to the image".into())
            })
    }

    /// Encode to a writer.
    pub fn write(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;

        write_u32(w, self.domains.len() as u32)?;
        for (name, g) in &self.domains {
            write_str(w, name)?;
            write_u32(w, g.len() as u32)?;
            for id in g.node_ids() {
                write_str(w, g.name(id).as_str())?;
                let kind = match g.kind(id) {
                    NodeKind::Domain => 0u8,
                    NodeKind::Class => 1,
                    NodeKind::Instance => 2,
                };
                write_u8(w, kind)?;
            }
            let edges: Vec<(NodeId, NodeId, EdgeKind)> = g
                .node_ids()
                .flat_map(|from| {
                    g.children_with_kind(from)
                        .iter()
                        .map(move |&(to, k)| (from, to, k))
                })
                .collect();
            write_u32(w, edges.len() as u32)?;
            for (from, to, kind) in edges {
                write_u32(w, from.index() as u32)?;
                write_u32(w, to.index() as u32)?;
                write_u8(w, if kind == EdgeKind::Subset { 0 } else { 1 })?;
            }
        }

        write_u32(w, self.relations.len() as u32)?;
        for (name, rel) in &self.relations {
            write_str(w, name)?;
            let p = match rel.preemption() {
                Preemption::OffPath => 0u8,
                Preemption::OnPath => 1,
                Preemption::NoPreemption => 2,
            };
            write_u8(w, p)?;
            let schema = rel.schema();
            write_u32(w, schema.arity() as u32)?;
            for attr in schema.attributes() {
                write_str(w, attr.name())?;
                write_u32(w, self.domain_index(attr.domain())?)?;
            }
            write_u32(w, rel.len() as u32)?;
            for (item, truth) in rel.iter() {
                write_u8(w, if truth == Truth::Positive { 1 } else { 0 })?;
                for &node in item.components() {
                    write_u32(w, node.index() as u32)?;
                }
            }
        }
        Ok(())
    }

    /// Decode from a reader.
    pub fn read(r: &mut impl Read) -> Result<Image> {
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)
            .map_err(|_| PersistError::BadMagic)?;
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }

        let domain_count = checked_count(read_u32(r)?, "domain")?;
        let mut domains: Vec<(String, Arc<HierarchyGraph>)> = Vec::new();
        for _ in 0..domain_count {
            let dom_name = read_str(r)?;
            let node_count = checked_count(read_u32(r)?, "node")?;
            if node_count == 0 {
                return Err(PersistError::Corrupt("domain with zero nodes".into()));
            }
            // Nodes arrive in id order; the graph assigns ids densely in
            // insertion order, so ids round-trip. Nodes are created
            // parentless via a placeholder edge pass afterwards — but the
            // constructor API requires parents, so decode edges first.
            let mut names = Vec::new();
            let mut kinds = Vec::new();
            for _ in 0..node_count {
                names.push(read_str(r)?);
                kinds.push(read_u8(r)?);
            }
            let edge_count = checked_count(read_u32(r)?, "edge")?;
            let mut edges = Vec::new();
            for _ in 0..edge_count {
                let from = read_u32(r)? as usize;
                let to = read_u32(r)? as usize;
                let kind = read_u8(r)?;
                if from >= node_count || to >= node_count {
                    return Err(PersistError::Corrupt(format!(
                        "edge ({from}, {to}) out of range"
                    )));
                }
                edges.push((from, to, kind));
            }
            let graph = rebuild_graph(&names, &kinds, &edges)?;
            domains.push((dom_name, Arc::new(graph)));
        }

        let relation_count = checked_count(read_u32(r)?, "relation")?;
        let mut relations = Vec::new();
        for _ in 0..relation_count {
            let rel_name = read_str(r)?;
            let preemption = match read_u8(r)? {
                0 => Preemption::OffPath,
                1 => Preemption::OnPath,
                2 => Preemption::NoPreemption,
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown preemption tag {other}"
                    )))
                }
            };
            let arity = checked_count(read_u32(r)?, "attribute")?;
            let mut attrs = Vec::new();
            for _ in 0..arity {
                let attr_name = read_str(r)?;
                let dom_idx = read_u32(r)? as usize;
                let (_, graph) = domains.get(dom_idx).ok_or_else(|| {
                    PersistError::Corrupt(format!("domain index {dom_idx} out of range"))
                })?;
                attrs.push(Attribute::new(attr_name, graph.clone()));
            }
            let schema = Arc::new(Schema::new(attrs));
            let mut relation = HRelation::with_preemption(schema.clone(), preemption);
            let tuple_count = checked_count(read_u32(r)?, "tuple")?;
            for _ in 0..tuple_count {
                let truth = match read_u8(r)? {
                    0 => Truth::Negative,
                    1 => Truth::Positive,
                    other => {
                        return Err(PersistError::Corrupt(format!("unknown truth tag {other}")))
                    }
                };
                let mut components = Vec::with_capacity(schema.arity());
                for _ in 0..schema.arity() {
                    components.push(NodeId::from_index(read_u32(r)? as usize));
                }
                let item = Item::new(components);
                relation
                    .insert(Tuple::new(item, truth))
                    .map_err(|e| PersistError::Corrupt(format!("bad tuple: {e}")))?;
            }
            relations.push((rel_name, relation));
        }

        Ok(Image { domains, relations })
    }

    /// Encode to an owned buffer.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.write(&mut buf)?;
        Ok(buf)
    }

    /// Decode from a buffer.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Image> {
        Image::read(&mut bytes)
    }

    /// Save to a file (buffered).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write(&mut file)?;
        use std::io::Write as _;
        file.flush()?;
        Ok(())
    }

    /// Load from a file (buffered).
    pub fn load(path: impl AsRef<Path>) -> Result<Image> {
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        Image::read(&mut file)
    }
}

/// Rebuild a graph from decoded parts. The public constructors demand a
/// parent at node-creation time, so nodes are added under their first
/// subset parent (found from the edge list), then the remaining edges
/// are inserted.
fn rebuild_graph(
    names: &[String],
    kinds: &[u8],
    edges: &[(usize, usize, u8)],
) -> Result<HierarchyGraph> {
    if kinds[0] != 0 {
        return Err(PersistError::Corrupt(
            "node 0 must be the domain root".into(),
        ));
    }
    let mut first_parent: BTreeMap<usize, usize> = BTreeMap::new();
    for &(from, to, kind) in edges {
        if kind == 0 {
            first_parent.entry(to).or_insert(from);
        }
    }
    let mut g = HierarchyGraph::new(names[0].as_str());
    for (i, name) in names.iter().enumerate().skip(1) {
        let &parent = first_parent
            .get(&i)
            .ok_or_else(|| PersistError::Corrupt(format!("node {i} has no subset parent")))?;
        if parent >= i {
            return Err(PersistError::Corrupt(format!(
                "node {i} created before its parent {parent}"
            )));
        }
        let parent = NodeId::from_index(parent);
        let result = match kinds[i] {
            1 => g.add_class(name.as_str(), parent),
            2 => g.add_instance(name.as_str(), parent),
            other => return Err(PersistError::Corrupt(format!("unknown node kind {other}"))),
        };
        result.map_err(|e| PersistError::Rebuild(e.to_string()))?;
    }
    for &(from, to, kind) in edges {
        if kind == 0 && first_parent.get(&to) == Some(&from) {
            continue; // already created with this edge
        }
        let from = NodeId::from_index(from);
        let to = NodeId::from_index(to);
        let result = match kind {
            0 => g.add_edge(from, to),
            1 => g.add_preference_edge(from, to),
            other => return Err(PersistError::Corrupt(format!("unknown edge kind {other}"))),
        };
        result.map_err(|e| PersistError::Rebuild(e.to_string()))?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_world() -> Image {
        let mut g = HierarchyGraph::new("Animal");
        let bird = g.add_class("Bird", g.root()).unwrap();
        let penguin = g.add_class("Penguin", bird).unwrap();
        let gala = g.add_class("Galapagos Penguin", penguin).unwrap();
        let afp = g.add_class("Amazing Flying Penguin", penguin).unwrap();
        g.add_instance_multi("Patricia", &[gala, afp]).unwrap();
        g.add_instance("Tweety", bird).unwrap();
        let animal = Arc::new(g);

        let mut c = HierarchyGraph::new("Color");
        c.add_instance("Grey", c.root()).unwrap();
        let color = Arc::new(c);

        let schema = Arc::new(Schema::single("Creature", animal.clone()));
        let mut flies = HRelation::new(schema);
        flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
        flies.assert_fact(&["Penguin"], Truth::Negative).unwrap();
        flies
            .assert_fact(&["Amazing Flying Penguin"], Truth::Positive)
            .unwrap();

        let schema2 = Arc::new(Schema::new(vec![
            Attribute::new("Animal", animal.clone()),
            Attribute::new("Color", color.clone()),
        ]));
        let mut colored = HRelation::with_preemption(schema2, Preemption::OnPath);
        colored
            .assert_fact(&["Bird", "Grey"], Truth::Positive)
            .unwrap();

        let mut image = Image::new();
        image.add_domain("Animal", animal);
        image.add_domain("Color", color);
        image.add_relation("Flies", flies);
        image.add_relation("Colored", colored);
        image
    }

    #[test]
    fn round_trip_preserves_bindings() {
        let image = sample_world();
        let bytes = image.to_bytes().unwrap();
        let restored = Image::from_bytes(&bytes).unwrap();
        let flies = restored.relation("Flies").unwrap();
        assert!(flies.holds(&flies.item(&["Tweety"]).unwrap()));
        assert!(flies.holds(&flies.item(&["Patricia"]).unwrap()));
        assert_eq!(flies.len(), 3);
        // Preemption mode survives.
        let colored = restored.relation("Colored").unwrap();
        assert_eq!(colored.preemption(), Preemption::OnPath);
    }

    #[test]
    fn restored_relations_share_domain_arcs() {
        let image = sample_world();
        let restored = Image::from_bytes(&image.to_bytes().unwrap()).unwrap();
        let flies = restored.relation("Flies").unwrap();
        let colored = restored.relation("Colored").unwrap();
        assert!(Arc::ptr_eq(
            flies.schema().attribute(0).domain(),
            colored.schema().attribute(0).domain()
        ));
        // …which means joins still work after a reload.
        let joined = hrdm_core::ops::join(
            &hrdm_core::ops::rename(flies, "Creature", "Animal").unwrap(),
            colored,
        );
        assert!(joined.is_ok());
    }

    #[test]
    fn preference_edges_round_trip() {
        let mut g = HierarchyGraph::new("D");
        let a = g.add_class("A", g.root()).unwrap();
        let b = g.add_class("B", g.root()).unwrap();
        hrdm_hierarchy::preference::prefer(&mut g, a, b).unwrap();
        let mut image = Image::new();
        image.add_domain("D", Arc::new(g));
        let restored = Image::from_bytes(&image.to_bytes().unwrap()).unwrap();
        let g2 = restored.domain("D").unwrap();
        assert!(hrdm_hierarchy::preference::dominates(g2, a, b));
        assert!(!g2.is_descendant(b, a), "preference is still not subset");
    }

    #[test]
    fn file_save_and_load() {
        let image = sample_world();
        let path =
            std::env::temp_dir().join(format!("hrdm_image_test_{}.hrdm", std::process::id()));
        image.save(&path).unwrap();
        let restored = Image::load(&path).unwrap();
        assert_eq!(restored.relation_names().count(), 2);
        assert_eq!(restored.domain_names().count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(matches!(
            Image::from_bytes(b"NOTHRDM"),
            Err(PersistError::BadMagic)
        ));
        let mut bytes = sample_world().to_bytes().unwrap();
        // Flip the version.
        bytes[6] = 9;
        assert!(matches!(
            Image::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion(_))
        ));
        // Truncate the stream.
        let bytes = sample_world().to_bytes().unwrap();
        assert!(Image::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn relation_over_unregistered_domain_rejected_at_encode() {
        let mut g = HierarchyGraph::new("D");
        g.add_class("A", g.root()).unwrap();
        let dom = Arc::new(g);
        let schema = Arc::new(Schema::single("V", dom));
        let rel = HRelation::new(schema);
        let mut image = Image::new();
        image.add_relation("R", rel); // forgot add_domain
        assert!(matches!(image.to_bytes(), Err(PersistError::Rebuild(_))));
    }

    #[test]
    fn not_found_lookups() {
        let image = Image::new();
        assert!(matches!(
            image.relation("R"),
            Err(PersistError::NotFound(_))
        ));
        assert!(matches!(image.domain("D"), Err(PersistError::NotFound(_))));
    }
}
