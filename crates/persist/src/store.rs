//! The durable store: checkpoints + write-ahead log + recovery.
//!
//! A store directory holds at most one *live* generation:
//!
//! ```text
//! checkpoint-<lsn:016x>.ckpt   HRDM1 image as of LSN <lsn>
//! wal-<lsn:016x>.log           mutations <lsn>+1, <lsn>+2, …
//! ```
//!
//! The LSN is the count of mutations applied since the store was born,
//! so `state(lsn) = replay(first lsn mutations)` and a checkpoint file
//! *names* the prefix it captures. [`recover`] loads the newest intact
//! checkpoint, replays its WAL tail, and stops cleanly at the first
//! torn or corrupt record — yielding exactly a prefix of the committed
//! history. Taking a checkpoint writes the new image tmp-file-then-
//! rename, starts a fresh WAL bound to it, and only then deletes the
//! older generation, so a crash at *any* point leaves at least one
//! recoverable generation on disk.
//!
//! Recovery invariants (tested by `crash_recovery.rs`):
//!
//! 1. **Prefix** — the recovered catalog equals (byte-for-byte under
//!    [`Catalog::render_stable`]) the live catalog after some prefix of
//!    the mutation history.
//! 2. **Durability floor** — every mutation whose fsync was
//!    acknowledged is in the recovered prefix.
//! 3. **Idempotence** — recovery is read-only: recovering twice from
//!    the same directory yields identical catalogs and reports.

use std::fs::{self, File};
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};

use hrdm_core::mutation::{CatalogMutation, MutationSink};
use hrdm_core::prelude::Catalog;

use crate::codec::{crc32, read_u32, read_u64, read_varint, write_u32, write_u64, write_varint};
use crate::error::{PersistError, Result};
use crate::image::Image;
use crate::wal::{WalFile, WalReader, WalRecord};

/// Checkpoint file magic.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"HRDMCKP1";

/// Checkpoint image payloads larger than this are a corrupt length
/// prefix (matches the image format's own sanity caps).
const CHECKPOINT_CAP: u64 = 1 << 30;

/// Path of the checkpoint image capturing the first `lsn` mutations.
pub fn checkpoint_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("checkpoint-{lsn:016x}.ckpt"))
}

/// Path of the WAL extending the checkpoint at `lsn`.
pub fn wal_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("wal-{lsn:016x}.log"))
}

/// Write a checkpoint image for LSN `lsn`: magic, LSN, varint length,
/// CRC-32, `HRDM1` payload — built in a `.tmp` file, fsynced, then
/// atomically renamed into place.
pub fn write_checkpoint(dir: &Path, lsn: u64, image: &Image) -> Result<PathBuf> {
    let _g = hrdm_obs::span!("persist.checkpoint", lsn = lsn);
    fs::create_dir_all(dir)?;
    let payload = image.to_bytes()?;
    let final_path = checkpoint_path(dir, lsn);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(CHECKPOINT_MAGIC)?;
        write_u64(&mut f, lsn)?;
        write_varint(&mut f, payload.len() as u64)?;
        write_u32(&mut f, crc32(&payload))?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    hrdm_obs::metrics::counter("persist.checkpoints").incr();
    Ok(final_path)
}

/// Load and verify one checkpoint file, returning its LSN and image.
pub fn load_checkpoint(path: &Path) -> Result<(u64, Image)> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    std::io::Read::read_exact(&mut r, &mut magic).map_err(|_| PersistError::BadMagic)?;
    if &magic != CHECKPOINT_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let lsn = read_u64(&mut r)?;
    let len = read_varint(&mut r)?;
    if len > CHECKPOINT_CAP {
        return Err(PersistError::Corrupt(format!(
            "checkpoint image length {len} exceeds cap"
        )));
    }
    let expected_crc = read_u32(&mut r)?;
    let mut payload = vec![0u8; len as usize];
    std::io::Read::read_exact(&mut r, &mut payload)
        .map_err(|_| PersistError::Corrupt("torn checkpoint payload".into()))?;
    if crc32(&payload) != expected_crc {
        return Err(PersistError::Corrupt("checkpoint checksum mismatch".into()));
    }
    let image = Image::from_bytes(&payload)?;
    Ok((lsn, image))
}

/// What recovery found and did — the stable part is golden-tested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the checkpoint image the recovered state starts from.
    pub checkpoint_lsn: u64,
    /// WAL mutation records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Bytes of torn/corrupt WAL tail discarded.
    pub truncated_bytes: u64,
    /// Checkpoint files skipped because they failed verification.
    pub checkpoints_skipped: u64,
}

impl RecoveryReport {
    /// LSN of the recovered state (count of mutations it contains).
    pub fn next_lsn(&self) -> u64 {
        self.checkpoint_lsn + self.records_replayed
    }

    /// Deterministic rendering of the stable fields.
    pub fn render_stable(&self) -> String {
        format!(
            "checkpoint lsn      {}\nrecords replayed    {}\nbytes truncated     {}\ncheckpoints skipped {}\nrecovered lsn       {}\n",
            self.checkpoint_lsn,
            self.records_replayed,
            self.truncated_bytes,
            self.checkpoints_skipped,
            self.next_lsn()
        )
    }
}

/// A recovered catalog plus the report describing how it was rebuilt.
pub struct Recovered {
    /// The rebuilt catalog (no journal attached yet).
    pub catalog: Catalog,
    /// What recovery found on disk.
    pub report: RecoveryReport,
}

fn checkpoint_lsns(dir: &Path) -> Result<Vec<u64>> {
    let mut lsns = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".ckpt"))
        {
            if let Ok(lsn) = u64::from_str_radix(hex, 16) {
                lsns.push(lsn);
            }
        }
    }
    lsns.sort_unstable();
    lsns.reverse();
    Ok(lsns)
}

/// Rebuild a catalog from a store directory: newest intact checkpoint,
/// plus as much of its WAL as is intact.
///
/// Read-only and idempotent — it never writes to `dir`, so recovering
/// after a failed recovery sees the identical state. A missing
/// directory is an empty store (LSN 0), not an error.
pub fn recover(dir: &Path) -> Result<Recovered> {
    let _g = hrdm_obs::span!("recover.replay", dir = dir.display());

    // 1. Newest checkpoint that verifies; corrupt ones are skipped so a
    //    crash mid-rename (or a damaged newest image) falls back to the
    //    previous generation.
    let mut checkpoints_skipped = 0u64;
    let mut base: Option<(u64, Image)> = None;
    if dir.is_dir() {
        for lsn in checkpoint_lsns(dir)? {
            match load_checkpoint(&checkpoint_path(dir, lsn)) {
                Ok((file_lsn, image)) if file_lsn == lsn => {
                    base = Some((lsn, image));
                    break;
                }
                Ok(_) | Err(_) => checkpoints_skipped += 1,
            }
        }
    }
    let (checkpoint_lsn, mut catalog) = match base {
        Some((lsn, image)) => (lsn, image.into_catalog()),
        None => (0, Catalog::new()),
    };

    // 2. Replay the WAL bound to that checkpoint, stopping cleanly at
    //    the first record that is torn, corrupt, or inapplicable.
    let mut records_replayed = 0u64;
    let mut truncated_bytes = 0u64;
    let path = wal_path(dir, checkpoint_lsn);
    if path.is_file() {
        let file_len = fs::metadata(&path)?.len();
        match WalReader::new(BufReader::new(File::open(&path)?)) {
            Err(PersistError::Io(e)) => return Err(PersistError::Io(e)),
            Err(PersistError::UnsupportedVersion(v)) => {
                return Err(PersistError::UnsupportedVersion(v))
            }
            Err(_) => {
                // Torn header: the whole file is discarded tail.
                truncated_bytes = file_len;
            }
            Ok(mut reader) => loop {
                let committed = reader.good_pos();
                match reader.next() {
                    Ok(None) => break,
                    Ok(Some(WalRecord::Checkpoint { lsn })) => {
                        if lsn != checkpoint_lsn {
                            return Err(PersistError::Corrupt(format!(
                                "wal names checkpoint {lsn}, expected {checkpoint_lsn}"
                            )));
                        }
                    }
                    Ok(Some(WalRecord::Mutation(m))) => match catalog.apply_mutation(&m) {
                        Ok(()) => records_replayed += 1,
                        Err(e) => {
                            // Intact frame, inapplicable content: same
                            // clean stop, but the record is charged to
                            // the discarded tail.
                            let _ = e;
                            truncated_bytes = file_len - committed;
                            break;
                        }
                    },
                    Err(PersistError::Io(e)) => return Err(PersistError::Io(e)),
                    Err(_) => {
                        truncated_bytes = file_len - reader.good_pos();
                        break;
                    }
                }
            },
        }
    }

    hrdm_obs::metrics::counter("recover.records_replayed").add(records_replayed);
    hrdm_obs::metrics::counter("recover.truncated_bytes").add(truncated_bytes);
    hrdm_obs::metrics::counter("recover.runs").incr();

    Ok(Recovered {
        catalog,
        report: RecoveryReport {
            checkpoint_lsn,
            records_replayed,
            truncated_bytes,
            checkpoints_skipped,
        },
    })
}

/// An open journal: the current WAL generation plus the machinery to
/// roll it over at a checkpoint.
pub struct Journal {
    dir: PathBuf,
    wal: WalFile,
    checkpoint_lsn: u64,
    next_lsn: u64,
    group: usize,
}

impl Journal {
    /// Start a fresh generation at `lsn`: write the checkpoint image,
    /// open a new WAL bound to it, then garbage-collect older
    /// generations. `group` is the group-commit width (fsync every
    /// `group` appends; 1 = every append).
    pub fn begin(dir: &Path, lsn: u64, image: &Image, group: usize) -> Result<Journal> {
        write_checkpoint(dir, lsn, image)?;
        let wal = WalFile::create(wal_path(dir, lsn), lsn, group)?;
        let journal = Journal {
            dir: dir.to_path_buf(),
            wal,
            checkpoint_lsn: lsn,
            next_lsn: lsn,
            group,
        };
        journal.collect_garbage()?;
        Ok(journal)
    }

    /// Delete generations older than the current one (and stray tmp
    /// files). Only called after the new generation is durable.
    fn collect_garbage(&self) -> Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = name.ends_with(".tmp")
                || name
                    .strip_prefix("checkpoint-")
                    .and_then(|s| s.strip_suffix(".ckpt"))
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                    .is_some_and(|lsn| lsn < self.checkpoint_lsn)
                || name
                    .strip_prefix("wal-")
                    .and_then(|s| s.strip_suffix(".log"))
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                    .is_some_and(|lsn| lsn < self.checkpoint_lsn);
            if stale {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN of the current checkpoint.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn
    }

    /// LSN the next recorded mutation will get (= mutations recorded so
    /// far, across all generations).
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append one mutation to the WAL (group-commit fsync policy
    /// applies).
    pub fn record(&mut self, m: &CatalogMutation) -> Result<()> {
        self.wal.append(m)?;
        self.next_lsn += 1;
        Ok(())
    }

    /// Flush and fsync any buffered records.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Take a checkpoint of `image` (which must reflect every recorded
    /// mutation): rolls the journal over to a fresh generation and
    /// truncates the old log. Returns the new checkpoint LSN.
    pub fn checkpoint(&mut self, image: &Image) -> Result<u64> {
        self.wal.sync()?;
        let lsn = self.next_lsn;
        *self = Journal::begin(&self.dir, lsn, image, self.group)?;
        Ok(lsn)
    }
}

/// Forwards successful catalog mutations into a shared journal.
///
/// The sink must not fail (the mutation is already applied), so append
/// errors are parked and surfaced by [`DurableCatalog::mutate`]'s
/// post-check.
struct JournalSink {
    journal: std::sync::Arc<std::sync::Mutex<Journal>>,
    error: std::sync::Arc<std::sync::Mutex<Option<PersistError>>>,
}

impl MutationSink for JournalSink {
    fn on_mutation(&mut self, mutation: &CatalogMutation) {
        let mut journal = self.journal.lock().expect("journal lock");
        if let Err(e) = journal.record(mutation) {
            *self.error.lock().expect("error lock") = Some(e);
        }
    }
}

/// A [`Catalog`] whose every mutation is journaled to a store
/// directory — open it again after a crash and [`recover`] rebuilds
/// the same state.
pub struct DurableCatalog {
    catalog: Catalog,
    journal: std::sync::Arc<std::sync::Mutex<Journal>>,
    sink_error: std::sync::Arc<std::sync::Mutex<Option<PersistError>>>,
    report: RecoveryReport,
}

impl DurableCatalog {
    /// Open (or create) a store with synchronous durability
    /// (fsync per mutation).
    pub fn open(dir: &Path) -> Result<DurableCatalog> {
        DurableCatalog::open_with_group(dir, 1)
    }

    /// Open (or create) a store with group-commit width `group`.
    ///
    /// Recovery runs first; the recovered state is then immediately
    /// checkpointed so the store always restarts on a fresh generation
    /// (the torn tail of the previous one is garbage-collected, not
    /// edited in place).
    pub fn open_with_group(dir: &Path, group: usize) -> Result<DurableCatalog> {
        let Recovered {
            mut catalog,
            report,
        } = recover(dir)?;
        let journal = Journal::begin(
            dir,
            report.next_lsn(),
            &Image::from_catalog(&catalog),
            group,
        )?;
        let journal = std::sync::Arc::new(std::sync::Mutex::new(journal));
        let sink_error = std::sync::Arc::new(std::sync::Mutex::new(None));
        catalog.set_mutation_sink(Some(Box::new(JournalSink {
            journal: journal.clone(),
            error: sink_error.clone(),
        })));
        Ok(DurableCatalog {
            catalog,
            journal,
            sink_error,
            report,
        })
    }

    /// The recovery report from opening this store.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Read access to the underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// LSN of the next mutation (= mutations applied over the store's
    /// lifetime).
    pub fn lsn(&self) -> u64 {
        self.journal.lock().expect("journal lock").next_lsn()
    }

    /// Apply a mutation and journal it. An error from the journal
    /// (disk full, …) is surfaced here even though the in-memory
    /// change already happened — the caller must treat the store as
    /// poisoned beyond that point.
    pub fn mutate(&mut self, m: CatalogMutation) -> Result<()> {
        self.catalog
            .mutate(m)
            .map_err(|e| PersistError::Rebuild(e.to_string()))?;
        if let Some(e) = self.sink_error.lock().expect("error lock").take() {
            return Err(e);
        }
        Ok(())
    }

    /// Fsync any buffered WAL records.
    pub fn sync(&mut self) -> Result<()> {
        self.journal.lock().expect("journal lock").sync()
    }

    /// Checkpoint the current state and truncate the WAL. Returns the
    /// new checkpoint LSN.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let image = Image::from_catalog(&self.catalog);
        self.journal
            .lock()
            .expect("journal lock")
            .checkpoint(&image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::prelude::Truth;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hrdm_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn script() -> Vec<CatalogMutation> {
        use CatalogMutation::*;
        vec![
            CreateDomain {
                name: "Animal".into(),
            },
            AddClass {
                domain: "Animal".into(),
                name: "Bird".into(),
                parents: vec!["Animal".into()],
            },
            AddInstance {
                domain: "Animal".into(),
                name: "Tweety".into(),
                parents: vec!["Bird".into()],
            },
            CreateRelation {
                name: "Flies".into(),
                attributes: vec![("Creature".into(), "Animal".into())],
            },
            Assert {
                relation: "Flies".into(),
                values: vec!["Bird".into()],
                truth: Truth::Positive,
            },
        ]
    }

    #[test]
    fn empty_directory_recovers_to_empty_catalog() {
        let dir = temp_dir("empty");
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.checkpoint_lsn, 0);
        assert_eq!(rec.report.next_lsn(), 0);
        assert_eq!(rec.catalog.render_stable(), "");
        // A directory that doesn't exist at all behaves the same.
        let rec = recover(&dir.join("missing")).unwrap();
        assert_eq!(rec.report.next_lsn(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = temp_dir("reopen");
        let mut live = Catalog::new();
        {
            let mut store = DurableCatalog::open(&dir).unwrap();
            for m in script() {
                store.mutate(m.clone()).unwrap();
                live.mutate(m).unwrap();
            }
            assert_eq!(store.lsn(), script().len() as u64);
        } // dropped without checkpoint: WAL replay carries everything
        let store = DurableCatalog::open(&dir).unwrap();
        assert_eq!(
            store.catalog().render_stable(),
            live.render_stable(),
            "recovered state must equal the live catalog"
        );
        assert_eq!(
            store.recovery_report().records_replayed,
            script().len() as u64
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_log_and_survives() {
        let dir = temp_dir("ckpt");
        let mut store = DurableCatalog::open(&dir).unwrap();
        for m in script() {
            store.mutate(m).unwrap();
        }
        let lsn = store.checkpoint().unwrap();
        assert_eq!(lsn, script().len() as u64);
        // Old generation is gone, exactly one checkpoint + wal remain.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "one checkpoint + one wal: {names:?}");
        let expected = store.catalog().render_stable();
        drop(store);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.checkpoint_lsn, lsn);
        assert_eq!(rec.report.records_replayed, 0);
        assert_eq!(rec.catalog.render_stable(), expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_idempotent_and_read_only() {
        let dir = temp_dir("idem");
        {
            let mut store = DurableCatalog::open(&dir).unwrap();
            for m in script() {
                store.mutate(m).unwrap();
            }
        }
        let a = recover(&dir).unwrap();
        let b = recover(&dir).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.catalog.render_stable(), b.catalog.render_stable());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let mut store = DurableCatalog::open(&dir).unwrap();
        for m in script() {
            store.mutate(m).unwrap();
        }
        let good = store.checkpoint().unwrap();
        let expected = store.catalog().render_stable();
        drop(store);
        // Forge a newer checkpoint that fails verification.
        fs::write(checkpoint_path(&dir, good + 7), b"HRDMCKP1 garbage").unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.checkpoint_lsn, good);
        assert_eq!(rec.report.checkpoints_skipped, 1);
        assert_eq!(rec.catalog.render_stable(), expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_mutations_are_not_journaled() {
        let dir = temp_dir("failed");
        let mut store = DurableCatalog::open(&dir).unwrap();
        for m in script() {
            store.mutate(m).unwrap();
        }
        let before = store.lsn();
        assert!(store
            .mutate(CatalogMutation::CreateDomain {
                name: "Animal".into(), // duplicate
            })
            .is_err());
        assert_eq!(store.lsn(), before, "failed mutation must not advance LSN");
        drop(store);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.next_lsn(), before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_renders_stably() {
        let report = RecoveryReport {
            checkpoint_lsn: 3,
            records_replayed: 2,
            truncated_bytes: 17,
            checkpoints_skipped: 1,
        };
        let rendered = report.render_stable();
        assert!(rendered.contains("checkpoint lsn      3"));
        assert!(rendered.contains("records replayed    2"));
        assert!(rendered.contains("bytes truncated     17"));
        assert!(rendered.contains("recovered lsn       5"));
        assert_eq!(report.next_lsn(), 5);
    }
}
