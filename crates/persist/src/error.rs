//! Error type for the persistence layer.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T, E = PersistError> = std::result::Result<T, E>;

/// Errors raised while encoding or decoding an image.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not an HRDM image (bad magic bytes).
    BadMagic,
    /// The image declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The byte stream ended or contradicted itself mid-structure.
    Corrupt(String),
    /// Rebuilding in-memory structures from decoded data failed (name
    /// collisions, dangling ids, …).
    Rebuild(String),
    /// A requested object is not in the image.
    NotFound(String),
}

impl PersistError {
    /// Stable machine-readable error-kind code (reused by the unified
    /// `hrdm::Error` surface and the `hrdm-server` wire protocol's
    /// `ERR` replies; existing codes must never change meaning).
    pub fn kind(&self) -> &'static str {
        match self {
            PersistError::Io(_) => "io",
            PersistError::BadMagic => "bad-magic",
            PersistError::UnsupportedVersion(_) => "unsupported-version",
            PersistError::Corrupt(_) => "corrupt",
            PersistError::Rebuild(_) => "rebuild",
            PersistError::NotFound(_) => "not-found",
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not an HRDM image (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported image version {v}")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt image: {msg}"),
            PersistError::Rebuild(msg) => write!(f, "cannot rebuild from image: {msg}"),
            PersistError::NotFound(name) => write!(f, "no object named {name:?} in image"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl PartialEq for PersistError {
    fn eq(&self, other: &PersistError) -> bool {
        match (self, other) {
            (PersistError::BadMagic, PersistError::BadMagic) => true,
            (PersistError::UnsupportedVersion(a), PersistError::UnsupportedVersion(b)) => a == b,
            (PersistError::Corrupt(a), PersistError::Corrupt(b)) => a == b,
            (PersistError::Rebuild(a), PersistError::Rebuild(b)) => a == b,
            (PersistError::NotFound(a), PersistError::NotFound(b)) => a == b,
            (PersistError::Io(a), PersistError::Io(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(PersistError::Corrupt("short read".into())
            .to_string()
            .contains("short read"));
    }

    #[test]
    fn io_conversion_chains_source() {
        let e: PersistError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
