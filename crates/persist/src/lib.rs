#![warn(missing_docs)]

//! Persistence for hierarchical relational catalogs: snapshot images
//! plus crash-safe durability.
//!
//! The paper's model is a *data model*; a system built on it needs its
//! state — domain hierarchies and hierarchical relations — to survive
//! restarts. This crate defines a self-contained binary image format
//! (`HRDM1`) and reader/writer for a whole world:
//!
//! * every domain graph, with node names, kinds, and both edge kinds
//!   (subset and Appendix preference edges), in id order so `NodeId`s
//!   round-trip verbatim;
//! * every relation, with its attribute names, per-attribute domain
//!   references (by index into the image's domain table, so relations
//!   over the same domain share one `Arc` after loading — join
//!   compatibility survives persistence), preemption mode, and tuples.
//!
//! The hierarchical representation is what gets persisted — the whole
//! point of the paper is that this is the *compact* encoding (B1); a
//! flat engine would persist the explicated extension instead.
//!
//! ```
//! use hrdm_persist::Image;
//! use hrdm_core::prelude::*;
//! use std::sync::Arc;
//!
//! let mut g = hrdm_hierarchy::HierarchyGraph::new("Animal");
//! let bird = g.add_class("Bird", g.root()).unwrap();
//! g.add_instance("Tweety", bird).unwrap();
//! let dom = Arc::new(g);
//! let schema = Arc::new(Schema::single("Creature", dom.clone()));
//! let mut flies = HRelation::new(schema);
//! flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
//!
//! let mut image = Image::new();
//! image.add_domain("Animal", dom);
//! image.add_relation("Flies", flies);
//! let bytes = image.to_bytes().unwrap();
//! let restored = Image::from_bytes(&bytes).unwrap();
//! let flies = restored.relation("Flies").unwrap();
//! assert!(flies.holds(&flies.item(&["Tweety"]).unwrap()));
//! ```

//! On top of the image sits the durability subsystem ([`wal`],
//! [`store`]): an append-only write-ahead log of logical
//! [`CatalogMutation`](hrdm_core::mutation::CatalogMutation) records
//! (length-prefixed, CRC-32 framed), periodic checkpoints that write a
//! fresh `HRDM1` image and truncate the log, and a [`recover`] path
//! that loads the newest intact checkpoint, replays the WAL tail, and
//! stops cleanly at the first torn record. [`faultfs`] provides the
//! deterministic write-fault injection the crash-recovery test harness
//! sweeps kill points with.

pub mod codec;
pub mod error;
pub mod faultfs;
pub mod image;
pub mod ship;
pub mod store;
pub mod wal;

pub use error::{PersistError, Result};
pub use faultfs::{Fault, FaultFs};
pub use image::Image;
pub use ship::{ShipEvent, WalTailer};
pub use store::{recover, DurableCatalog, Journal, Recovered, RecoveryReport};
pub use wal::{WalFile, WalReader, WalRecord};
