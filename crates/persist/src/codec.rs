//! Primitive encoders/decoders: little-endian integers, LEB128
//! varints, length-prefixed UTF-8 strings, and CRC-32 framing over
//! `std::io` streams.

use std::io::{Read, Write};

use crate::error::{PersistError, Result};

/// Maximum length accepted for any decoded string or varint-framed
/// payload (16 MiB). Lengths are untrusted input; anything above the
/// cap is [`PersistError::Corrupt`], not an attempted allocation.
pub const LEN_CAP: usize = 16 << 20;

/// Write a `u32` little-endian.
pub fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Read a `u32` little-endian.
pub fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for u32".into()))?;
    Ok(u32::from_le_bytes(buf))
}

/// Write a single byte.
pub fn write_u8(w: &mut impl Write, v: u8) -> Result<()> {
    w.write_all(&[v])?;
    Ok(())
}

/// Read a single byte.
pub fn read_u8(r: &mut impl Read) -> Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for u8".into()))?;
    Ok(buf[0])
}

/// Write a `u64` little-endian.
pub fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Read a `u64` little-endian.
pub fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for u64".into()))?;
    Ok(u64::from_le_bytes(buf))
}

/// Write a `u64` as a LEB128 varint (7 bits per byte, high bit =
/// continuation). Small values — the common case for WAL record
/// lengths — cost one byte.
pub fn write_varint(w: &mut impl Write, mut v: u64) -> Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Read a LEB128 varint. At most ten bytes (`ceil(64/7)`); an
/// eleventh continuation byte, or a tenth byte with bits beyond the
/// 64th, is [`PersistError::Corrupt`].
pub fn read_varint(r: &mut impl Read) -> Result<u64> {
    let mut v = 0u64;
    for k in 0..10 {
        let byte = read_u8(r).map_err(|_| PersistError::Corrupt("short read for varint".into()))?;
        let payload = (byte & 0x7F) as u64;
        if k == 9 && payload > 1 {
            return Err(PersistError::Corrupt("varint overflows 64 bits".into()));
        }
        v |= payload << (7 * k);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(PersistError::Corrupt("varint longer than 10 bytes".into()))
}

/// CRC-32 (ISO-HDLC / IEEE 802.3, the zlib polynomial) of `bytes` —
/// the frame checksum the WAL uses to detect torn and bit-flipped
/// records. Table-driven, byte at a time; built once per process.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        std::array::from_fn(|i| {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            c
        })
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Read a length-prefixed UTF-8 string (capped at [`LEN_CAP`] to keep
/// a corrupt length from allocating the moon).
pub fn read_str(r: &mut impl Read) -> Result<String> {
    let len = read_u32(r)? as usize;
    if len > LEN_CAP {
        return Err(PersistError::Corrupt(format!(
            "string length {len} exceeds sanity cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for string body".into()))?;
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("invalid UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encode with `write_str` and decode back, asserting both halves
    /// on the `Result` rather than unwrapping blindly.
    fn round_trip_str(s: &str) -> String {
        let mut buf = Vec::new();
        assert!(
            matches!(write_str(&mut buf, s), Ok(())),
            "encode of {s:?} must succeed"
        );
        match read_str(&mut &buf[..]) {
            Ok(decoded) => decoded,
            Err(e) => panic!("decode of {s:?} failed: {e}"),
        }
    }

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            buf.clear();
            assert!(matches!(write_u32(&mut buf, v), Ok(())));
            assert!(matches!(read_u32(&mut &buf[..]), Ok(got) if got == v));
        }
    }

    #[test]
    fn u64_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, u32::MAX as u64 + 1, u64::MAX] {
            buf.clear();
            assert!(matches!(write_u64(&mut buf, v), Ok(())));
            assert!(matches!(read_u64(&mut &buf[..]), Ok(got) if got == v));
        }
        assert!(matches!(
            read_u64(&mut &[1u8, 2, 3][..]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn u8_round_trip() {
        let mut buf = Vec::new();
        assert!(matches!(write_u8(&mut buf, 7), Ok(())));
        assert!(matches!(read_u8(&mut &buf[..]), Ok(7)));
    }

    #[test]
    fn strings_round_trip() {
        assert_eq!(round_trip_str(""), "");
        assert_eq!(round_trip_str("Bird"), "Bird");
        assert_eq!(
            round_trip_str("Amazing Flying Penguin ∀"),
            "Amazing Flying Penguin ∀"
        );
    }

    #[test]
    fn max_length_string_boundary() {
        // A string exactly at LEN_CAP round-trips; one byte over the
        // cap is rejected at decode time as Corrupt, not allocated.
        let max = "x".repeat(LEN_CAP);
        assert_eq!(round_trip_str(&max).len(), LEN_CAP);
        let mut buf = Vec::new();
        assert!(matches!(write_u32(&mut buf, LEN_CAP as u32 + 1), Ok(())));
        buf.resize(buf.len() + 8, b'x'); // body irrelevant: length gate fires first
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(msg)) if msg.contains("sanity cap")
        ));
    }

    #[test]
    fn varint_round_trip_and_boundaries() {
        let mut buf = Vec::new();
        // Every 7-bit boundary, plus the extremes.
        let mut cases = vec![0u64, 1, u64::MAX];
        for shift in 1..10 {
            let edge = 1u64 << (7 * shift);
            cases.extend([edge - 1, edge]);
        }
        for v in cases {
            buf.clear();
            assert!(matches!(write_varint(&mut buf, v), Ok(())));
            assert!(
                matches!(read_varint(&mut &buf[..]), Ok(got) if got == v),
                "varint {v} must round-trip"
            );
        }
        // u64::MAX is the 10-byte ceiling.
        buf.clear();
        assert!(matches!(write_varint(&mut buf, u64::MAX), Ok(())));
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_overflow_and_truncation_rejected() {
        // Ten continuation bytes and an eleventh byte: too long.
        let long = [0x80u8; 10];
        assert!(matches!(
            read_varint(&mut &long[..]),
            Err(PersistError::Corrupt(_))
        ));
        // Tenth byte carrying bits beyond the 64th: overflow.
        let mut over = vec![0xFFu8; 9];
        over.push(0x02);
        assert!(matches!(
            read_varint(&mut &over[..]),
            Err(PersistError::Corrupt(msg)) if msg.contains("overflows")
        ));
        // A dangling continuation bit with no next byte: short read.
        assert!(matches!(
            read_varint(&mut &[0x80u8][..]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Any single-bit flip changes the checksum.
        let base = crc32(b"HRDM");
        let mut bytes = b"HRDM".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }

    #[test]
    fn short_reads_are_corrupt_not_panics() {
        assert!(matches!(
            read_u32(&mut &[1u8, 2][..]),
            Err(PersistError::Corrupt(_))
        ));
        // Length says 10 but only 2 bytes follow.
        let mut buf = Vec::new();
        assert!(matches!(write_u32(&mut buf, 10), Ok(())));
        buf.extend_from_slice(b"ab");
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(msg)) if msg.contains("string body")
        ));
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = Vec::new();
        assert!(matches!(write_u32(&mut buf, u32::MAX), Ok(())));
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(msg)) if msg.contains("sanity cap")
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        assert!(matches!(write_u32(&mut buf, 2), Ok(())));
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(msg)) if msg.contains("UTF-8")
        ));
    }
}
