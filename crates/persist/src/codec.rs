//! Primitive encoders/decoders: little-endian integers and
//! length-prefixed UTF-8 strings over `std::io` streams.

use std::io::{Read, Write};

use crate::error::{PersistError, Result};

/// Write a `u32` little-endian.
pub fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Read a `u32` little-endian.
pub fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for u32".into()))?;
    Ok(u32::from_le_bytes(buf))
}

/// Write a single byte.
pub fn write_u8(w: &mut impl Write, v: u8) -> Result<()> {
    w.write_all(&[v])?;
    Ok(())
}

/// Read a single byte.
pub fn read_u8(r: &mut impl Read) -> Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for u8".into()))?;
    Ok(buf[0])
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Read a length-prefixed UTF-8 string (capped at 16 MiB to keep a
/// corrupt length from allocating the moon).
pub fn read_str(r: &mut impl Read) -> Result<String> {
    let len = read_u32(r)? as usize;
    if len > 16 << 20 {
        return Err(PersistError::Corrupt(format!(
            "string length {len} exceeds sanity cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("short read for string body".into()))?;
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("invalid UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_str(s: &str) -> String {
        let mut buf = Vec::new();
        write_str(&mut buf, s).unwrap();
        read_str(&mut &buf[..]).unwrap()
    }

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            buf.clear();
            write_u32(&mut buf, v).unwrap();
            assert_eq!(read_u32(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn u8_round_trip() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        assert_eq!(read_u8(&mut &buf[..]).unwrap(), 7);
    }

    #[test]
    fn strings_round_trip() {
        assert_eq!(round_trip_str(""), "");
        assert_eq!(round_trip_str("Bird"), "Bird");
        assert_eq!(
            round_trip_str("Amazing Flying Penguin ∀"),
            "Amazing Flying Penguin ∀"
        );
    }

    #[test]
    fn short_reads_are_corrupt_not_panics() {
        assert!(matches!(
            read_u32(&mut &[1u8, 2][..]),
            Err(PersistError::Corrupt(_))
        ));
        // Length says 10 but only 2 bytes follow.
        let mut buf = Vec::new();
        write_u32(&mut buf, 10).unwrap();
        buf.extend_from_slice(b"ab");
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_str(&mut &buf[..]),
            Err(PersistError::Corrupt(_))
        ));
    }
}
