//! The write-ahead log: an append-only stream of logical catalog
//! mutations, length-prefixed and CRC-32 framed.
//!
//! # On-disk format
//!
//! ```text
//! magic    "HRDMWAL1"
//! version  u32 (= 1)
//! records  …, each framed as:
//!   len    varint (payload bytes, capped at 1 MiB)
//!   crc    u32 little-endian, CRC-32 (IEEE) of the payload
//!   payload len bytes, tag u8 + codec-primitive fields
//! ```
//!
//! The **first** record of every log is a [`WalRecord::Checkpoint`]
//! naming the LSN of the checkpoint image the log extends; mutation
//! records follow, one per applied [`CatalogMutation`], implicitly
//! numbered `lsn + 1, lsn + 2, …`. A second checkpoint record in the
//! same stream is [`PersistError::Corrupt`] — checkpoints truncate the
//! log and start a new file, they never appear mid-stream.
//!
//! # Torn tails
//!
//! [`WalReader::next`] is *strict*: a truncated frame, a CRC mismatch,
//! an oversized length prefix, an unknown tag, or trailing payload
//! bytes all surface as [`PersistError::Corrupt`], never a panic and
//! never a partially decoded record. The recovery layer
//! ([`crate::store::recover`]) is what converts a corrupt *tail* into a
//! clean stop — every record before it was CRC-verified, so replay
//! yields exactly a prefix of the history.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use hrdm_core::mutation::CatalogMutation;
use hrdm_core::preemption::Preemption;
use hrdm_core::truth::Truth;

use crate::codec::{
    crc32, read_str, read_u32, read_u64, read_u8, write_str, write_u32, write_u64, write_u8,
    write_varint,
};
use crate::error::{PersistError, Result};

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 8] = b"HRDMWAL1";
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Upper bound on one record's payload. Catalog mutations are names
/// and small lists; anything larger is a corrupt length prefix.
pub const RECORD_CAP: usize = 1 << 20;

/// One record in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Log header record: this log extends the checkpoint at `lsn`.
    Checkpoint {
        /// LSN of the checkpoint image this log follows.
        lsn: u64,
    },
    /// One applied catalog mutation.
    Mutation(CatalogMutation),
}

fn truth_tag(t: Truth) -> u8 {
    match t {
        Truth::Negative => 0,
        Truth::Positive => 1,
    }
}

fn truth_from(tag: u8) -> Result<Truth> {
    match tag {
        0 => Ok(Truth::Negative),
        1 => Ok(Truth::Positive),
        other => Err(PersistError::Corrupt(format!("unknown truth tag {other}"))),
    }
}

fn preemption_tag(p: Preemption) -> u8 {
    match p {
        Preemption::OffPath => 0,
        Preemption::OnPath => 1,
        Preemption::NoPreemption => 2,
    }
}

fn preemption_from(tag: u8) -> Result<Preemption> {
    match tag {
        0 => Ok(Preemption::OffPath),
        1 => Ok(Preemption::OnPath),
        2 => Ok(Preemption::NoPreemption),
        other => Err(PersistError::Corrupt(format!(
            "unknown preemption tag {other}"
        ))),
    }
}

fn write_names(w: &mut impl Write, names: &[String]) -> Result<()> {
    write_u32(w, names.len() as u32)?;
    for n in names {
        write_str(w, n)?;
    }
    Ok(())
}

fn read_names(r: &mut impl Read) -> Result<Vec<String>> {
    let n = read_u32(r)? as usize;
    if n > RECORD_CAP {
        return Err(PersistError::Corrupt(format!(
            "name count {n} exceeds record cap"
        )));
    }
    (0..n).map(|_| read_str(r)).collect()
}

/// Encode a record's payload (tag + fields, no framing).
pub fn encode_payload(record: &WalRecord) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    let w = &mut buf;
    match record {
        WalRecord::Checkpoint { lsn } => {
            write_u8(w, 0)?;
            write_u64(w, *lsn)?;
        }
        WalRecord::Mutation(m) => match m {
            CatalogMutation::CreateDomain { name } => {
                write_u8(w, 1)?;
                write_str(w, name)?;
            }
            CatalogMutation::DropDomain { name } => {
                write_u8(w, 2)?;
                write_str(w, name)?;
            }
            CatalogMutation::AddClass {
                domain,
                name,
                parents,
            } => {
                write_u8(w, 3)?;
                write_str(w, domain)?;
                write_str(w, name)?;
                write_names(w, parents)?;
            }
            CatalogMutation::AddInstance {
                domain,
                name,
                parents,
            } => {
                write_u8(w, 4)?;
                write_str(w, domain)?;
                write_str(w, name)?;
                write_names(w, parents)?;
            }
            CatalogMutation::Prefer {
                domain,
                stronger,
                weaker,
            } => {
                write_u8(w, 5)?;
                write_str(w, domain)?;
                write_str(w, stronger)?;
                write_str(w, weaker)?;
            }
            CatalogMutation::CreateRelation { name, attributes } => {
                write_u8(w, 6)?;
                write_str(w, name)?;
                write_u32(w, attributes.len() as u32)?;
                for (attr, dom) in attributes {
                    write_str(w, attr)?;
                    write_str(w, dom)?;
                }
            }
            CatalogMutation::DropRelation { name } => {
                write_u8(w, 7)?;
                write_str(w, name)?;
            }
            CatalogMutation::Assert {
                relation,
                values,
                truth,
            } => {
                write_u8(w, 8)?;
                write_str(w, relation)?;
                write_u8(w, truth_tag(*truth))?;
                write_names(w, values)?;
            }
            CatalogMutation::Retract { relation, values } => {
                write_u8(w, 9)?;
                write_str(w, relation)?;
                write_names(w, values)?;
            }
            CatalogMutation::SetPreemption { relation, mode } => {
                write_u8(w, 10)?;
                write_str(w, relation)?;
                write_u8(w, preemption_tag(*mode))?;
            }
        },
    }
    Ok(buf)
}

/// Decode a record payload. Trailing bytes after the decoded fields
/// are [`PersistError::Corrupt`]: a frame carries exactly one record.
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut r = payload;
    let record = match read_u8(&mut r)? {
        0 => WalRecord::Checkpoint {
            lsn: read_u64(&mut r)?,
        },
        1 => WalRecord::Mutation(CatalogMutation::CreateDomain {
            name: read_str(&mut r)?,
        }),
        2 => WalRecord::Mutation(CatalogMutation::DropDomain {
            name: read_str(&mut r)?,
        }),
        3 => WalRecord::Mutation(CatalogMutation::AddClass {
            domain: read_str(&mut r)?,
            name: read_str(&mut r)?,
            parents: read_names(&mut r)?,
        }),
        4 => WalRecord::Mutation(CatalogMutation::AddInstance {
            domain: read_str(&mut r)?,
            name: read_str(&mut r)?,
            parents: read_names(&mut r)?,
        }),
        5 => WalRecord::Mutation(CatalogMutation::Prefer {
            domain: read_str(&mut r)?,
            stronger: read_str(&mut r)?,
            weaker: read_str(&mut r)?,
        }),
        6 => {
            let name = read_str(&mut r)?;
            let n = read_u32(&mut r)? as usize;
            if n > RECORD_CAP {
                return Err(PersistError::Corrupt(format!(
                    "attribute count {n} exceeds record cap"
                )));
            }
            let attributes = (0..n)
                .map(|_| Ok((read_str(&mut r)?, read_str(&mut r)?)))
                .collect::<Result<Vec<_>>>()?;
            WalRecord::Mutation(CatalogMutation::CreateRelation { name, attributes })
        }
        7 => WalRecord::Mutation(CatalogMutation::DropRelation {
            name: read_str(&mut r)?,
        }),
        8 => {
            let relation = read_str(&mut r)?;
            let truth = truth_from(read_u8(&mut r)?)?;
            let values = read_names(&mut r)?;
            WalRecord::Mutation(CatalogMutation::Assert {
                relation,
                values,
                truth,
            })
        }
        9 => WalRecord::Mutation(CatalogMutation::Retract {
            relation: read_str(&mut r)?,
            values: read_names(&mut r)?,
        }),
        10 => WalRecord::Mutation(CatalogMutation::SetPreemption {
            relation: read_str(&mut r)?,
            mode: preemption_from(read_u8(&mut r)?)?,
        }),
        other => {
            return Err(PersistError::Corrupt(format!(
                "unknown WAL record tag {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing byte(s) in record payload",
            r.len()
        )));
    }
    Ok(record)
}

/// Write the WAL file header (magic + version).
pub fn write_header(w: &mut impl Write) -> Result<()> {
    w.write_all(WAL_MAGIC)?;
    write_u32(w, WAL_VERSION)?;
    Ok(())
}

/// Read and validate the WAL file header.
pub fn read_header(r: &mut impl Read) -> Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| PersistError::BadMagic)?;
    if &magic != WAL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(r)?;
    if version != WAL_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Frame and write one record: varint length, CRC-32, payload.
pub fn write_record(w: &mut impl Write, record: &WalRecord) -> Result<()> {
    let payload = encode_payload(record)?;
    write_varint(w, payload.len() as u64)?;
    write_u32(w, crc32(&payload))?;
    w.write_all(&payload)?;
    Ok(())
}

/// A counting reader so the WAL reader can report exact byte offsets
/// (how much of a torn tail gets discarded).
struct Counted<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> Read for Counted<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos += n as u64;
        Ok(n)
    }
}

/// Strict streaming reader over a WAL byte stream.
///
/// `next()` returns `Ok(Some(record))` per intact record, `Ok(None)`
/// at a clean end-of-log (EOF exactly on a frame boundary), and
/// [`PersistError::Corrupt`] for anything else — including a
/// duplicate checkpoint record or a log whose first record is not a
/// checkpoint.
pub struct WalReader<R> {
    r: Counted<R>,
    /// Byte offset just past the last successfully decoded record.
    good_pos: u64,
    seen_checkpoint: bool,
    poisoned: bool,
}

impl<R: Read> WalReader<R> {
    /// Wrap a reader positioned at the start of a WAL stream; reads
    /// and validates the header immediately.
    pub fn new(inner: R) -> Result<WalReader<R>> {
        let mut r = Counted { inner, pos: 0 };
        read_header(&mut r)?;
        let good_pos = r.pos;
        Ok(WalReader {
            r,
            good_pos,
            seen_checkpoint: false,
            poisoned: false,
        })
    }

    /// Byte offset just past the last intact record (or the header).
    pub fn good_pos(&self) -> u64 {
        self.good_pos
    }

    /// Read the next record. After the first error the reader is
    /// poisoned: further calls return `Ok(None)` (a torn tail has no
    /// decodable continuation).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WalRecord>> {
        if self.poisoned {
            return Ok(None);
        }
        match self.read_one() {
            Ok(Some(record)) => {
                self.good_pos = self.r.pos;
                Ok(Some(record))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn read_one(&mut self) -> Result<Option<WalRecord>> {
        // Distinguish clean EOF (no bytes at all) from a torn frame.
        let mut first = [0u8; 1];
        match self.r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(e.into()),
        }
        // Finish the varint whose first byte we just consumed.
        let len = if first[0] & 0x80 == 0 {
            first[0] as u64
        } else {
            let mut v = (first[0] & 0x7F) as u64;
            let mut shift = 7u32;
            loop {
                let byte = read_u8(&mut self.r)
                    .map_err(|_| PersistError::Corrupt("torn varint length prefix".into()))?;
                if shift >= 63 && byte > 1 {
                    return Err(PersistError::Corrupt("varint overflows 64 bits".into()));
                }
                v |= ((byte & 0x7F) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
                if shift > 63 {
                    return Err(PersistError::Corrupt("varint longer than 10 bytes".into()));
                }
            }
            v
        };
        if len as usize > RECORD_CAP {
            return Err(PersistError::Corrupt(format!(
                "record length {len} exceeds cap {RECORD_CAP}"
            )));
        }
        let expected_crc = read_u32(&mut self.r)
            .map_err(|_| PersistError::Corrupt("torn record checksum".into()))?;
        let mut payload = vec![0u8; len as usize];
        self.r
            .read_exact(&mut payload)
            .map_err(|_| PersistError::Corrupt("torn record payload".into()))?;
        if crc32(&payload) != expected_crc {
            return Err(PersistError::Corrupt("record checksum mismatch".into()));
        }
        let record = decode_payload(&payload)?;
        match (&record, self.seen_checkpoint) {
            (WalRecord::Checkpoint { .. }, true) => {
                return Err(PersistError::Corrupt(
                    "duplicate checkpoint record mid-log".into(),
                ))
            }
            (WalRecord::Checkpoint { .. }, false) => self.seen_checkpoint = true,
            (WalRecord::Mutation(_), false) => {
                return Err(PersistError::Corrupt(
                    "log does not start with a checkpoint record".into(),
                ))
            }
            (WalRecord::Mutation(_), true) => {}
        }
        Ok(Some(record))
    }
}

/// An open, appendable WAL file with group-commit fsync batching.
///
/// `append` buffers the framed record and fsyncs once every `group`
/// appends (`group == 1` is synchronous durability; larger groups
/// amortize the fsync across a batch, the classic group-commit
/// trade: at most `group - 1` acknowledged records can be lost to a
/// crash).
pub struct WalFile {
    w: BufWriter<File>,
    path: PathBuf,
    group: usize,
    pending: usize,
    appended: u64,
}

impl WalFile {
    /// Create (truncate) a WAL at `path`, writing the header and the
    /// binding checkpoint record, then fsyncing.
    pub fn create(path: impl Into<PathBuf>, checkpoint_lsn: u64, group: usize) -> Result<WalFile> {
        let path = path.into();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut wal = WalFile {
            w: BufWriter::new(file),
            path,
            group: group.max(1),
            pending: 0,
            appended: 0,
        };
        write_header(&mut wal.w)?;
        write_record(
            &mut wal.w,
            &WalRecord::Checkpoint {
                lsn: checkpoint_lsn,
            },
        )?;
        wal.sync()?;
        Ok(wal)
    }

    /// The file this WAL writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Mutation records appended so far (excludes the checkpoint
    /// record).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records buffered since the last fsync.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Append one mutation record; fsyncs when the group fills.
    pub fn append(&mut self, m: &CatalogMutation) -> Result<()> {
        let _g = hrdm_obs::span!("wal.append", kind = m.kind());
        write_record(&mut self.w, &WalRecord::Mutation(m.clone()))?;
        hrdm_obs::metrics::counter("wal.appends").incr();
        self.appended += 1;
        self.pending += 1;
        if self.pending >= self.group {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush buffered records and fsync the file.
    pub fn sync(&mut self) -> Result<()> {
        let _g = hrdm_obs::span!("wal.fsync", pending = self.pending);
        self.w.flush()?;
        self.w.get_ref().sync_data()?;
        hrdm_obs::metrics::counter("wal.fsyncs").incr();
        self.pending = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mutations() -> Vec<CatalogMutation> {
        vec![
            CatalogMutation::CreateDomain {
                name: "Animal".into(),
            },
            CatalogMutation::AddClass {
                domain: "Animal".into(),
                name: "Bird".into(),
                parents: vec!["Animal".into()],
            },
            CatalogMutation::AddInstance {
                domain: "Animal".into(),
                name: "Tweety".into(),
                parents: vec!["Bird".into()],
            },
            CatalogMutation::Prefer {
                domain: "Animal".into(),
                stronger: "Bird".into(),
                weaker: "Animal".into(),
            },
            CatalogMutation::CreateRelation {
                name: "Flies".into(),
                attributes: vec![("Creature".into(), "Animal".into())],
            },
            CatalogMutation::Assert {
                relation: "Flies".into(),
                values: vec!["Bird".into()],
                truth: Truth::Positive,
            },
            CatalogMutation::Assert {
                relation: "Flies".into(),
                values: vec!["Tweety".into()],
                truth: Truth::Negative,
            },
            CatalogMutation::Retract {
                relation: "Flies".into(),
                values: vec!["Tweety".into()],
            },
            CatalogMutation::SetPreemption {
                relation: "Flies".into(),
                mode: Preemption::NoPreemption,
            },
            CatalogMutation::DropRelation {
                name: "Flies".into(),
            },
            CatalogMutation::DropDomain {
                name: "Animal".into(),
            },
        ]
    }

    fn sample_log() -> Vec<u8> {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        write_record(&mut buf, &WalRecord::Checkpoint { lsn: 7 }).unwrap();
        for m in sample_mutations() {
            write_record(&mut buf, &WalRecord::Mutation(m)).unwrap();
        }
        buf
    }

    #[test]
    fn every_mutation_kind_round_trips() {
        for m in sample_mutations() {
            let payload = encode_payload(&WalRecord::Mutation(m.clone())).unwrap();
            assert_eq!(
                decode_payload(&payload).unwrap(),
                WalRecord::Mutation(m.clone()),
                "{m} must round-trip"
            );
        }
        let payload = encode_payload(&WalRecord::Checkpoint { lsn: u64::MAX }).unwrap();
        assert_eq!(
            decode_payload(&payload).unwrap(),
            WalRecord::Checkpoint { lsn: u64::MAX }
        );
    }

    #[test]
    fn log_reads_back_in_order() {
        let bytes = sample_log();
        let mut reader = WalReader::new(&bytes[..]).unwrap();
        assert_eq!(
            reader.next().unwrap(),
            Some(WalRecord::Checkpoint { lsn: 7 })
        );
        let mut got = Vec::new();
        while let Some(WalRecord::Mutation(m)) = reader.next().unwrap() {
            got.push(m);
        }
        assert_eq!(got, sample_mutations());
        assert_eq!(reader.good_pos(), bytes.len() as u64);
        // Clean EOF is repeatable.
        assert_eq!(reader.next().unwrap(), None);
    }

    #[test]
    fn truncated_tail_is_corrupt_then_poisoned() {
        let bytes = sample_log();
        let cut = bytes.len() - 3;
        let mut reader = WalReader::new(&bytes[..cut]).unwrap();
        let mut intact = 0usize;
        let err = loop {
            match reader.next() {
                Ok(Some(_)) => intact += 1,
                Ok(None) => panic!("a torn final record must error, not EOF"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, PersistError::Corrupt(_)));
        assert_eq!(intact, 1 + sample_mutations().len() - 1);
        // Poisoned: the tail has no decodable continuation.
        assert_eq!(reader.next().unwrap(), None);
        assert!(reader.good_pos() < cut as u64);
    }

    #[test]
    fn flipped_crc_is_corrupt() {
        let mut bytes = sample_log();
        // The checkpoint record's CRC sits right after the header +
        // 1-byte varint length.
        let crc_at = WAL_MAGIC.len() + 4 + 1;
        bytes[crc_at] ^= 0x40;
        let mut reader = WalReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            reader.next(),
            Err(PersistError::Corrupt(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn oversized_length_prefix_is_corrupt() {
        let mut bytes = Vec::new();
        write_header(&mut bytes).unwrap();
        write_varint(&mut bytes, RECORD_CAP as u64 + 1).unwrap();
        write_u32(&mut bytes, 0).unwrap();
        let mut reader = WalReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            reader.next(),
            Err(PersistError::Corrupt(msg)) if msg.contains("cap")
        ));
    }

    #[test]
    fn duplicate_checkpoint_record_is_corrupt() {
        let mut bytes = Vec::new();
        write_header(&mut bytes).unwrap();
        write_record(&mut bytes, &WalRecord::Checkpoint { lsn: 0 }).unwrap();
        write_record(&mut bytes, &WalRecord::Checkpoint { lsn: 1 }).unwrap();
        let mut reader = WalReader::new(&bytes[..]).unwrap();
        assert!(reader.next().unwrap().is_some());
        assert!(matches!(
            reader.next(),
            Err(PersistError::Corrupt(msg)) if msg.contains("duplicate checkpoint")
        ));
    }

    #[test]
    fn missing_leading_checkpoint_is_corrupt() {
        let mut bytes = Vec::new();
        write_header(&mut bytes).unwrap();
        write_record(
            &mut bytes,
            &WalRecord::Mutation(CatalogMutation::CreateDomain { name: "D".into() }),
        )
        .unwrap();
        let mut reader = WalReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            reader.next(),
            Err(PersistError::Corrupt(msg)) if msg.contains("start with a checkpoint")
        ));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            WalReader::new(&b"NOTAWAL!"[..]),
            Err(PersistError::BadMagic)
        ));
        let mut bytes = WAL_MAGIC.to_vec();
        write_u32(&mut bytes, 9).unwrap();
        assert!(matches!(
            WalReader::new(&bytes[..]),
            Err(PersistError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut payload = encode_payload(&WalRecord::Checkpoint { lsn: 3 }).unwrap();
        payload.push(0xAB);
        assert!(matches!(
            decode_payload(&payload),
            Err(PersistError::Corrupt(msg)) if msg.contains("trailing")
        ));
    }

    #[test]
    fn wal_file_appends_and_group_commits() {
        let dir = std::env::temp_dir().join(format!("hrdm_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-test.log");
        let mut wal = WalFile::create(&path, 0, 4).unwrap();
        for m in &sample_mutations()[..3] {
            wal.append(m).unwrap();
        }
        assert_eq!(wal.appended(), 3);
        assert_eq!(wal.pending(), 3, "group of 4 not yet full");
        wal.append(&sample_mutations()[3]).unwrap();
        assert_eq!(wal.pending(), 0, "group commit fired");
        wal.sync().unwrap();
        drop(wal);

        let file = std::fs::File::open(&path).unwrap();
        let mut reader = WalReader::new(std::io::BufReader::new(file)).unwrap();
        let mut n = 0;
        while reader.next().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 1 + 4, "checkpoint + four mutations");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
