//! Deterministic fault-injection crash-recovery harness.
//!
//! A seeded generator produces a mutation script (≥ 200 operations,
//! every mutation kind) that is guaranteed to apply cleanly. The
//! harness then:
//!
//! 1. applies the script to a live catalog, snapshotting
//!    `render_stable()` after every prefix — the reference states;
//! 2. builds the exact WAL byte stream the journal would write;
//! 3. kills the stream at every possible offset (every byte in
//!    release builds, record boundaries ± a few bytes in debug
//!    builds, where the full sweep is too slow), recovers from the
//!    truncated log, and asserts the recovered catalog is
//!    **byte-identical** to the reference prefix the report claims —
//!    with the exact `records_replayed` / `truncated_bytes`
//!    accounting the cut point implies;
//! 4. repeats the sweep with single-bit flips and with `FaultFs`
//!    dropping/tearing/corrupting the Nth write call.
//!
//! The invariant throughout: **recovery always yields a prefix** of
//! the mutation history — never an error, never a panic, never a
//! state that mixes records from both sides of the kill point.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use hrdm_core::mutation::CatalogMutation;
use hrdm_core::prelude::{Catalog, Preemption, Truth};
use hrdm_persist::store::wal_path;
use hrdm_persist::wal::{write_header, write_record};
use hrdm_persist::{recover, DurableCatalog, Fault, FaultFs, WalRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SCRIPT_LEN: usize = 220;
const SEED: u64 = 0x5EED_CAFE;

/// Generator state mirroring what the catalog will accept, so every
/// generated mutation is guaranteed to apply.
#[derive(Default)]
struct Model {
    counter: usize,
    /// Live domains: name → (parent candidates, all nodes, root classes).
    domains: BTreeMap<String, DomainModel>,
    /// Live relations: name → per-column value candidates + stored rows.
    relations: BTreeMap<String, RelModel>,
}

struct DomainModel {
    /// Valid parents for new nodes: the root plus every class.
    parents: Vec<String>,
    /// Every node name (item-value candidates at relation creation).
    nodes: Vec<String>,
    /// Classes directly under the root, in creation order — preference
    /// edges only go from a later root class to an earlier one, which
    /// keeps the preference graph acyclic by construction.
    root_classes: Vec<String>,
    prefs: std::collections::BTreeSet<(String, String)>,
}

struct RelModel {
    /// Snapshot of each column's domain nodes at creation time (a
    /// conservative candidate set — the schema re-shares later node
    /// additions, but creation-time nodes are always resolvable).
    columns: Vec<Vec<String>>,
    /// Domains the schema references (blocks `DropDomain` on them).
    domains_used: Vec<String>,
    stored: BTreeMap<Vec<String>, Truth>,
}

impl Model {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
        &items[rng.gen_range(0..items.len())]
    }

    fn gen_one(&mut self, rng: &mut SmallRng) -> CatalogMutation {
        for _ in 0..64 {
            let roll = rng.gen_range(0u32..100);
            let m = match roll {
                0..=4 => self.gen_create_domain(),
                5..=29 => self.gen_add_class(rng),
                30..=44 => self.gen_add_instance(rng),
                45..=52 => self.gen_prefer(rng),
                53..=62 => self.gen_create_relation(rng),
                63..=87 => self.gen_assert(rng),
                88..=92 => self.gen_retract(rng),
                93..=96 => self.gen_set_preemption(rng),
                97..=98 => self.gen_drop_relation(rng),
                _ => self.gen_drop_domain(rng),
            };
            if let Some(m) = m {
                return m;
            }
        }
        // Always satisfiable fallback.
        self.gen_create_domain()
            .expect("create-domain always applies")
    }

    fn gen_create_domain(&mut self) -> Option<CatalogMutation> {
        let name = self.fresh("D");
        self.domains.insert(
            name.clone(),
            DomainModel {
                parents: vec![name.clone()],
                nodes: vec![name.clone()],
                root_classes: Vec::new(),
                prefs: Default::default(),
            },
        );
        Some(CatalogMutation::CreateDomain { name })
    }

    fn pick_domain(&self, rng: &mut SmallRng) -> Option<String> {
        if self.domains.is_empty() {
            return None;
        }
        let names: Vec<&String> = self.domains.keys().collect();
        Some((*Self::pick(rng, &names)).clone())
    }

    fn gen_add_class(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let domain = self.pick_domain(rng)?;
        let name = self.fresh("C");
        let dm = self.domains.get_mut(&domain).unwrap();
        let mut parents = vec![Self::pick(rng, &dm.parents).clone()];
        if dm.parents.len() >= 2 && rng.gen_bool(0.2) {
            let second = Self::pick(rng, &dm.parents).clone();
            if second != parents[0] {
                parents.push(second);
            }
        }
        if parents == [domain.clone()] {
            dm.root_classes.push(name.clone());
        }
        dm.parents.push(name.clone());
        dm.nodes.push(name.clone());
        Some(CatalogMutation::AddClass {
            domain,
            name,
            parents,
        })
    }

    fn gen_add_instance(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let domain = self.pick_domain(rng)?;
        let name = self.fresh("I");
        let dm = self.domains.get_mut(&domain).unwrap();
        let parents = vec![Self::pick(rng, &dm.parents).clone()];
        dm.nodes.push(name.clone());
        Some(CatalogMutation::AddInstance {
            domain,
            name,
            parents,
        })
    }

    fn gen_prefer(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let domain = self.pick_domain(rng)?;
        let dm = self.domains.get_mut(&domain).unwrap();
        if dm.root_classes.len() < 2 {
            return None;
        }
        let wi = rng.gen_range(1..dm.root_classes.len());
        let si = rng.gen_range(0..wi);
        let stronger = dm.root_classes[si].clone();
        let weaker = dm.root_classes[wi].clone();
        let pair = (stronger.clone(), weaker.clone());
        if !dm.prefs.insert(pair) {
            return None;
        }
        Some(CatalogMutation::Prefer {
            domain,
            stronger,
            weaker,
        })
    }

    fn gen_create_relation(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let arity = if rng.gen_bool(0.3) { 2 } else { 1 };
        let mut attributes = Vec::new();
        let mut columns = Vec::new();
        for k in 0..arity {
            let domain = self.pick_domain(rng)?;
            let dm = &self.domains[&domain];
            columns.push(dm.nodes.clone());
            attributes.push((format!("a{k}"), domain));
        }
        let name = self.fresh("R");
        self.relations.insert(
            name.clone(),
            RelModel {
                columns,
                domains_used: attributes.iter().map(|(_, d)| d.clone()).collect(),
                stored: BTreeMap::new(),
            },
        );
        Some(CatalogMutation::CreateRelation { name, attributes })
    }

    fn pick_relation(&self, rng: &mut SmallRng) -> Option<String> {
        if self.relations.is_empty() {
            return None;
        }
        let names: Vec<&String> = self.relations.keys().collect();
        Some((*Self::pick(rng, &names)).clone())
    }

    fn gen_assert(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let relation = self.pick_relation(rng)?;
        let rm = self.relations.get_mut(&relation).unwrap();
        let truth = if rng.gen_bool(0.3) {
            Truth::Negative
        } else {
            Truth::Positive
        };
        for _ in 0..8 {
            let values: Vec<String> = rm
                .columns
                .iter()
                .map(|col| Self::pick(rng, col).clone())
                .collect();
            if !rm.stored.contains_key(&values) {
                rm.stored.insert(values.clone(), truth);
                return Some(CatalogMutation::Assert {
                    relation,
                    values,
                    truth,
                });
            }
        }
        None
    }

    fn gen_retract(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let relation = self.pick_relation(rng)?;
        let rm = self.relations.get_mut(&relation).unwrap();
        if rm.stored.is_empty() {
            return None;
        }
        let keys: Vec<Vec<String>> = rm.stored.keys().cloned().collect();
        let values = Self::pick(rng, &keys).clone();
        rm.stored.remove(&values);
        Some(CatalogMutation::Retract { relation, values })
    }

    fn gen_set_preemption(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        let relation = self.pick_relation(rng)?;
        let mode = *Self::pick(
            rng,
            &[
                Preemption::OffPath,
                Preemption::OnPath,
                Preemption::NoPreemption,
            ],
        );
        Some(CatalogMutation::SetPreemption { relation, mode })
    }

    fn gen_drop_relation(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        if self.relations.len() < 4 {
            return None;
        }
        let name = self.pick_relation(rng)?;
        self.relations.remove(&name);
        Some(CatalogMutation::DropRelation { name })
    }

    fn gen_drop_domain(&mut self, rng: &mut SmallRng) -> Option<CatalogMutation> {
        if self.domains.len() < 4 {
            return None;
        }
        // Referential integrity: a domain with relations over it
        // cannot be dropped.
        let referenced: std::collections::BTreeSet<&String> = self
            .relations
            .values()
            .flat_map(|r| r.domains_used.iter())
            .collect();
        let free: Vec<String> = self
            .domains
            .keys()
            .filter(|d| !referenced.contains(d))
            .cloned()
            .collect();
        if free.is_empty() {
            return None;
        }
        let name = Self::pick(rng, &free).clone();
        self.domains.remove(&name);
        Some(CatalogMutation::DropDomain { name })
    }
}

fn gen_script(seed: u64, n: usize) -> Vec<CatalogMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model = Model::default();
    (0..n).map(|_| model.gen_one(&mut rng)).collect()
}

/// `render_stable()` after each prefix of the script: `refs[k]` is the
/// state with exactly the first `k` mutations applied.
fn reference_prefixes(script: &[CatalogMutation]) -> Vec<String> {
    let mut catalog = Catalog::new();
    let mut refs = vec![catalog.render_stable()];
    for m in script {
        catalog
            .mutate(m.clone())
            .unwrap_or_else(|e| panic!("generated mutation must apply: {m}: {e}"));
        refs.push(catalog.render_stable());
    }
    refs
}

/// The WAL byte stream for the script, plus the frame boundaries:
/// `boundaries[0]` = end of header, `boundaries[1]` = end of the
/// checkpoint record, `boundaries[k + 1]` = end of mutation `k`.
fn wal_stream(script: &[CatalogMutation]) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = Vec::new();
    write_header(&mut bytes).unwrap();
    let mut boundaries = vec![bytes.len() as u64];
    write_record(&mut bytes, &WalRecord::Checkpoint { lsn: 0 }).unwrap();
    boundaries.push(bytes.len() as u64);
    for m in script {
        write_record(&mut bytes, &WalRecord::Mutation(m.clone())).unwrap();
        boundaries.push(bytes.len() as u64);
    }
    (bytes, boundaries)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hrdm_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write `stream` as the (lone) WAL of an empty store and recover.
fn recover_stream(dir: &Path, stream: &[u8]) -> hrdm_persist::Recovered {
    std::fs::write(wal_path(dir, 0), stream).unwrap();
    recover(dir).unwrap_or_else(|e| panic!("recovery must not fail: {e}"))
}

/// The kill points to sweep: every byte offset in release builds; in
/// debug builds (10–20× slower per replay) the interesting offsets —
/// every frame boundary and its neighborhood.
fn kill_points(total: usize, boundaries: &[u64]) -> Vec<usize> {
    if !cfg!(debug_assertions) {
        return (0..=total).collect();
    }
    let mut cuts: Vec<usize> = Vec::new();
    for &b in boundaries {
        for d in -2i64..=2 {
            let c = b as i64 + d;
            if (0..=total as i64).contains(&c) {
                cuts.push(c as usize);
            }
        }
    }
    cuts.push(total);
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[test]
fn every_kill_point_recovers_a_prefix() {
    let script = gen_script(SEED, SCRIPT_LEN);
    assert!(script.len() >= 200);
    let refs = reference_prefixes(&script);
    let (bytes, boundaries) = wal_stream(&script);
    let dir = temp_dir("killpoints");

    for cut in kill_points(bytes.len(), &boundaries) {
        let rec = recover_stream(&dir, &bytes[..cut]);
        // Exact accounting implied by the cut point: the last frame
        // boundary at or before the cut is where replay stops, and
        // everything after it is discarded tail.
        let (last_idx, last_good) = boundaries
            .iter()
            .enumerate()
            .take_while(|&(_, &b)| b <= cut as u64)
            .last()
            .map(|(i, &b)| (i as i64, b))
            .unwrap_or((-1, 0));
        let expect_replayed = (last_idx - 1).max(0) as u64;
        let expect_truncated = cut as u64 - last_good;
        assert_eq!(
            rec.report.records_replayed, expect_replayed,
            "cut at byte {cut}: wrong replay count"
        );
        assert_eq!(
            rec.report.truncated_bytes, expect_truncated,
            "cut at byte {cut}: wrong truncation accounting"
        );
        assert_eq!(
            rec.catalog.render_stable(),
            refs[expect_replayed as usize],
            "cut at byte {cut}: recovered state is not the claimed prefix"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_bit_flip_recovers_a_prefix() {
    let script = gen_script(SEED, SCRIPT_LEN);
    let refs = reference_prefixes(&script);
    let (bytes, _) = wal_stream(&script);
    let dir = temp_dir("bitflips");

    let step = if cfg!(debug_assertions) { 17 } else { 1 };
    let mut flipped = bytes.clone();
    for at in (0..bytes.len()).step_by(step) {
        let bit = 1u8 << (at % 8);
        flipped[at] ^= bit;
        std::fs::write(wal_path(&dir, 0), &flipped).unwrap();
        match recover(&dir) {
            Ok(rec) => {
                let claimed = rec.report.records_replayed as usize;
                assert_eq!(
                    rec.catalog.render_stable(),
                    refs[claimed],
                    "flip at byte {at}: recovered state is not the claimed prefix"
                );
                assert!(claimed <= script.len());
            }
            // A flip inside the 4 version bytes is a format-level
            // incompatibility, reported as such rather than replayed.
            Err(hrdm_persist::PersistError::UnsupportedVersion(_)) => {
                assert!(
                    (8..12).contains(&at),
                    "flip at byte {at}: bad version error"
                );
            }
            Err(e) => panic!("flip at byte {at}: recovery failed: {e}"),
        }
        flipped[at] ^= bit; // restore
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Replay the WAL-writing workload through a [`FaultFs`], return the
/// bytes that "reached disk".
fn stream_through(script: &[CatalogMutation], fault: Option<(u64, Fault)>) -> Vec<u8> {
    let mut w = match fault {
        Some((t, f)) => FaultFs::with_fault(Vec::new(), t, f),
        None => FaultFs::counting(Vec::new()),
    };
    write_header(&mut w).unwrap();
    write_record(&mut w, &WalRecord::Checkpoint { lsn: 0 }).unwrap();
    for m in script {
        write_record(&mut w, &WalRecord::Mutation(m.clone())).unwrap();
    }
    w.flush().unwrap();
    w.into_inner()
}

#[test]
fn faultfs_drop_truncate_bitflip_all_recover_prefixes() {
    let script = gen_script(SEED, SCRIPT_LEN);
    let refs = reference_prefixes(&script);
    let dir = temp_dir("faultfs");

    // Counting pass: how many write calls does the workload make?
    let mut counter = FaultFs::counting(Vec::new());
    write_header(&mut counter).unwrap();
    write_record(&mut counter, &WalRecord::Checkpoint { lsn: 0 }).unwrap();
    for m in &script {
        write_record(&mut counter, &WalRecord::Mutation(m.clone())).unwrap();
    }
    let total_writes = counter.writes();
    assert!(total_writes > script.len() as u64, "multiple writes/record");

    let step = if cfg!(debug_assertions) { 13 } else { 1 };
    for trigger in (0..total_writes).step_by(step) {
        for fault in [Fault::Drop, Fault::Truncate(1), Fault::BitFlip(5)] {
            let stream = stream_through(&script, Some((trigger, fault)));
            std::fs::write(wal_path(&dir, 0), &stream).unwrap();
            match recover(&dir) {
                Ok(rec) => {
                    let claimed = rec.report.records_replayed as usize;
                    assert_eq!(
                        rec.catalog.render_stable(),
                        refs[claimed],
                        "fault {fault:?} at write {trigger}: not the claimed prefix"
                    );
                }
                Err(hrdm_persist::PersistError::UnsupportedVersion(_)) => {
                    // BitFlip landing in the header's version word.
                    assert!(matches!(fault, Fault::BitFlip(_)) && trigger <= 1);
                }
                Err(e) => panic!("fault {fault:?} at write {trigger}: {e}"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_catalog_end_to_end_with_crash_snapshots() {
    let script = gen_script(SEED ^ 0xF00D, SCRIPT_LEN);
    let refs = reference_prefixes(&script);
    let dir = temp_dir("endtoend");

    // Group commit: fsync every 8 mutations. Snapshot the directory
    // mid-flight (a crash at that instant) and verify the durability
    // floor: everything up to the last sync must recover.
    let mut store = DurableCatalog::open_with_group(&dir, 8).unwrap();
    let synced_at = 150usize;
    for (i, m) in script.iter().enumerate() {
        store.mutate(m.clone()).unwrap();
        if i + 1 == synced_at {
            store.sync().unwrap();
            // "Crash": copy the store directory as it is on disk.
            let snap = temp_dir("endtoend_snap");
            for entry in std::fs::read_dir(&dir).unwrap() {
                let entry = entry.unwrap();
                std::fs::copy(entry.path(), snap.join(entry.file_name())).unwrap();
            }
            let rec = recover(&snap).unwrap();
            let got = rec.report.next_lsn() as usize;
            assert!(
                got >= synced_at,
                "durability floor violated: synced {synced_at}, recovered {got}"
            );
            assert_eq!(rec.catalog.render_stable(), refs[got]);
            std::fs::remove_dir_all(&snap).unwrap();
        }
    }
    assert_eq!(store.lsn(), script.len() as u64);
    assert_eq!(store.catalog().render_stable(), refs[script.len()]);

    // Checkpoint, keep mutating, reopen: state must match the final
    // reference exactly (checkpoint image + WAL tail).
    drop(store);
    let mut store = DurableCatalog::open(&dir).unwrap();
    assert_eq!(
        store.recovery_report().records_replayed,
        script.len() as u64
    );
    assert_eq!(store.catalog().render_stable(), refs[script.len()]);
    store.checkpoint().unwrap();
    drop(store);
    let store = DurableCatalog::open(&dir).unwrap();
    assert_eq!(store.recovery_report().checkpoint_lsn, script.len() as u64);
    assert_eq!(store.recovery_report().records_replayed, 0);
    assert_eq!(store.catalog().render_stable(), refs[script.len()]);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(feature = "obs")]
#[test]
fn recovery_emits_spans_and_counters() {
    use hrdm_obs::{metrics, trace};

    let script = gen_script(SEED ^ 0x0B5, 40);
    let (bytes, _) = wal_stream(&script);
    let dir = temp_dir("obs");
    // Torn tail: cut the last record in half so truncation is nonzero.
    let cut = bytes.len() - 5;
    std::fs::write(wal_path(&dir, 0), &bytes[..cut]).unwrap();

    let replayed_before = metrics::counter("recover.records_replayed").get();
    let truncated_before = metrics::counter("recover.truncated_bytes").get();
    let (rec, captured) = trace::capture("recovery-test", || recover(&dir).unwrap());

    let span = captured
        .find("recover.replay")
        .expect("recover.replay span must appear in the trace");
    assert_eq!(span.field("dir"), Some(dir.display().to_string().as_str()));
    assert!(rec.report.records_replayed > 0);
    assert!(rec.report.truncated_bytes > 0);
    assert_eq!(
        metrics::counter("recover.records_replayed").get() - replayed_before,
        rec.report.records_replayed
    );
    assert_eq!(
        metrics::counter("recover.truncated_bytes").get() - truncated_before,
        rec.report.truncated_bytes
    );

    // The journaling side: appends and fsyncs are counted and spanned.
    let appends_before = metrics::counter("wal.appends").get();
    let fsyncs_before = metrics::counter("wal.fsyncs").get();
    let checkpoints_before = metrics::counter("persist.checkpoints").get();
    let (_, captured) = trace::capture("journal-test", || {
        let mut store = DurableCatalog::open(&dir).unwrap();
        store
            .mutate(CatalogMutation::CreateDomain {
                name: "ObsDomain".into(),
            })
            .unwrap();
        store.checkpoint().unwrap();
    });
    assert!(captured.find("wal.append").is_some());
    assert!(captured.find("wal.fsync").is_some());
    assert!(captured.find("persist.checkpoint").is_some());
    assert_eq!(metrics::counter("wal.appends").get() - appends_before, 1);
    assert!(metrics::counter("wal.fsyncs").get() > fsyncs_before);
    assert!(metrics::counter("persist.checkpoints").get() >= checkpoints_before + 2);

    std::fs::remove_dir_all(&dir).unwrap();
}
