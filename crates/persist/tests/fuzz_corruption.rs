//! Failure injection: decoding corrupted or truncated images must
//! return errors, never panic, and never fabricate a world that the
//! writer did not produce (when it does decode, the result must be
//! internally valid).

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_core::prelude::*;
use hrdm_hierarchy::HierarchyGraph;
use hrdm_persist::Image;

fn sample_bytes() -> Vec<u8> {
    let mut g = HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).unwrap();
    let penguin = g.add_class("Penguin", bird).unwrap();
    g.add_instance("Tweety", bird).unwrap();
    g.add_instance("Paul", penguin).unwrap();
    let dom = Arc::new(g);
    let schema = Arc::new(Schema::single("Creature", dom.clone()));
    let mut flies = HRelation::new(schema);
    flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
    flies.assert_fact(&["Penguin"], Truth::Negative).unwrap();
    let mut image = Image::new();
    image.add_domain("Animal", dom);
    image.add_relation("Flies", flies);
    image.to_bytes().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_never_panics(cut in 0usize..1000) {
        let bytes = sample_bytes();
        let cut = cut.min(bytes.len());
        let _ = Image::from_bytes(&bytes[..cut]); // must not panic
        if cut < bytes.len() {
            prop_assert!(Image::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn single_byte_flips_never_panic(pos in 0usize..1000, xor in 1u8..=255) {
        let mut bytes = sample_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Either a decode error, or a decodable image whose graphs are
        // still structurally valid (the flip hit a name byte or a truth
        // tag without breaking framing).
        if let Ok(image) = Image::from_bytes(&bytes) {
            for name in image.domain_names().map(String::from).collect::<Vec<_>>() {
                let g = image.domain(&name).unwrap();
                // Re-validate structural invariants.
                let violations = hrdm_hierarchy::validate::validate(g);
                prop_assert!(
                    violations
                        .iter()
                        .all(|v| !matches!(v, hrdm_hierarchy::validate::Violation::Cycle(_))),
                    "decoded graph has a cycle"
                );
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Image::from_bytes(&bytes); // must not panic
    }

    #[test]
    fn garbage_with_valid_magic_never_panics(
        tail in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        let mut bytes = b"HRDM1\0\x01\x00\x00\x00".to_vec();
        bytes.extend(tail);
        let _ = Image::from_bytes(&bytes); // must not panic
    }
}
