//! Failure injection: decoding corrupted or truncated images and WAL
//! streams must return errors, never panic, and never fabricate a
//! world that the writer did not produce (when it does decode, the
//! result must be internally valid).

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_core::mutation::CatalogMutation;
use hrdm_core::prelude::*;
use hrdm_hierarchy::HierarchyGraph;
use hrdm_persist::wal::{write_header, write_record, RECORD_CAP};
use hrdm_persist::{Image, PersistError, WalReader, WalRecord};

fn sample_bytes() -> Vec<u8> {
    let mut g = HierarchyGraph::new("Animal");
    let bird = g.add_class("Bird", g.root()).unwrap();
    let penguin = g.add_class("Penguin", bird).unwrap();
    g.add_instance("Tweety", bird).unwrap();
    g.add_instance("Paul", penguin).unwrap();
    let dom = Arc::new(g);
    let schema = Arc::new(Schema::single("Creature", dom.clone()));
    let mut flies = HRelation::new(schema);
    flies.assert_fact(&["Bird"], Truth::Positive).unwrap();
    flies.assert_fact(&["Penguin"], Truth::Negative).unwrap();
    let mut image = Image::new();
    image.add_domain("Animal", dom);
    image.add_relation("Flies", flies);
    image.to_bytes().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_never_panics(cut in 0usize..1000) {
        let bytes = sample_bytes();
        let cut = cut.min(bytes.len());
        let _ = Image::from_bytes(&bytes[..cut]); // must not panic
        if cut < bytes.len() {
            prop_assert!(Image::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn single_byte_flips_never_panic(pos in 0usize..1000, xor in 1u8..=255) {
        let mut bytes = sample_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Either a decode error, or a decodable image whose graphs are
        // still structurally valid (the flip hit a name byte or a truth
        // tag without breaking framing).
        if let Ok(image) = Image::from_bytes(&bytes) {
            for name in image.domain_names().map(String::from).collect::<Vec<_>>() {
                let g = image.domain(&name).unwrap();
                // Re-validate structural invariants.
                let violations = hrdm_hierarchy::validate::validate(g);
                prop_assert!(
                    violations
                        .iter()
                        .all(|v| !matches!(v, hrdm_hierarchy::validate::Violation::Cycle(_))),
                    "decoded graph has a cycle"
                );
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Image::from_bytes(&bytes); // must not panic
    }

    #[test]
    fn garbage_with_valid_magic_never_panics(
        tail in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        let mut bytes = b"HRDM1\0\x01\x00\x00\x00".to_vec();
        bytes.extend(tail);
        let _ = Image::from_bytes(&bytes); // must not panic
    }
}

// ---------------------------------------------------------------------
// WAL framing: the strict reader must answer every corruption with
// `PersistError::Corrupt` (or a header error), never a panic and never
// an `Io` error dressed up as data.

fn sample_wal_mutations() -> Vec<CatalogMutation> {
    vec![
        CatalogMutation::CreateDomain {
            name: "Animal".into(),
        },
        CatalogMutation::AddClass {
            domain: "Animal".into(),
            name: "Bird".into(),
            parents: vec!["Animal".into()],
        },
        CatalogMutation::CreateRelation {
            name: "Flies".into(),
            attributes: vec![("Creature".into(), "Animal".into())],
        },
        CatalogMutation::Assert {
            relation: "Flies".into(),
            values: vec!["Bird".into()],
            truth: Truth::Positive,
        },
        CatalogMutation::Retract {
            relation: "Flies".into(),
            values: vec!["Bird".into()],
        },
    ]
}

/// A well-formed WAL stream plus the end offset of every frame.
fn sample_wal() -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    write_header(&mut bytes).unwrap();
    let mut boundaries = vec![bytes.len()];
    write_record(&mut bytes, &WalRecord::Checkpoint { lsn: 5 }).unwrap();
    boundaries.push(bytes.len());
    for m in sample_wal_mutations() {
        write_record(&mut bytes, &WalRecord::Mutation(m)).unwrap();
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Drain a WAL byte stream through the strict reader.
fn read_all(bytes: &[u8]) -> Result<Vec<WalRecord>, PersistError> {
    let mut reader = WalReader::new(bytes)?;
    let mut out = Vec::new();
    while let Some(record) = reader.next()? {
        out.push(record);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wal_truncated_tail_is_corrupt(cut in 0usize..1000) {
        let (bytes, boundaries) = sample_wal();
        let cut = cut.min(bytes.len());
        match read_all(&bytes[..cut]) {
            // EOF exactly on a frame boundary is a clean (shorter) log.
            Ok(records) => {
                let idx = boundaries.iter().position(|&b| b == cut);
                prop_assert!(idx.is_some(), "cut {cut} decoded but is mid-frame");
                prop_assert_eq!(records.len(), idx.unwrap());
            }
            // Anywhere else the tail is torn.
            Err(PersistError::Corrupt(_)) | Err(PersistError::BadMagic) => {
                prop_assert!(!boundaries.contains(&cut));
            }
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    #[test]
    fn wal_bit_flips_are_corrupt_never_panic(pos in 0usize..1000, xor in 1u8..=255) {
        let (mut bytes, _) = sample_wal();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        match read_all(&bytes) {
            // CRC-32 catches every single-byte corruption inside a
            // payload; flips in framing fields surface as Corrupt or a
            // header error. An `Io` error would mean the reader leaked
            // an internal failure.
            Err(PersistError::Io(e)) => prop_assert!(false, "io error leaked: {e}"),
            Err(_) => {}
            // A flip that still decodes must have hit a frame we then
            // stopped before (impossible here: all bytes are framed).
            Ok(_) => prop_assert!(false, "single-byte flip at {pos} went undetected"),
        }
    }

    #[test]
    fn wal_oversized_length_prefix_is_corrupt(oversize in 1u64..1_000_000) {
        let mut bytes = Vec::new();
        write_header(&mut bytes).unwrap();
        // A frame claiming a payload beyond RECORD_CAP must be rejected
        // before any allocation of that size.
        let mut v = RECORD_CAP as u64 + oversize;
        while v >= 0x80 {
            bytes.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        bytes.push(v as u8);
        bytes.extend_from_slice(&[0u8; 4]); // crc placeholder
        let err = read_all(&bytes).unwrap_err();
        prop_assert!(
            matches!(err, PersistError::Corrupt(ref msg) if msg.contains("cap")),
            "expected length-cap rejection, got {err}"
        );
    }

    #[test]
    fn wal_duplicate_checkpoint_is_corrupt(lsn in any::<u64>(), at in 0usize..6) {
        let mut bytes = Vec::new();
        write_header(&mut bytes).unwrap();
        write_record(&mut bytes, &WalRecord::Checkpoint { lsn }).unwrap();
        let muts = sample_wal_mutations();
        let at = at.min(muts.len());
        for m in &muts[..at] {
            write_record(&mut bytes, &WalRecord::Mutation(m.clone())).unwrap();
        }
        // A second checkpoint record — wherever it lands — is corrupt:
        // checkpoints truncate the log, they never appear mid-stream.
        write_record(&mut bytes, &WalRecord::Checkpoint { lsn: lsn ^ 1 }).unwrap();
        for m in &muts[at..] {
            write_record(&mut bytes, &WalRecord::Mutation(m.clone())).unwrap();
        }
        let err = read_all(&bytes).unwrap_err();
        prop_assert!(
            matches!(err, PersistError::Corrupt(ref msg) if msg.contains("duplicate checkpoint")),
            "expected duplicate-checkpoint rejection, got {err}"
        );
    }

    #[test]
    fn wal_garbage_after_header_never_panics(
        tail in prop::collection::vec(any::<u8>(), 0..300)
    ) {
        let mut bytes = Vec::new();
        write_header(&mut bytes).unwrap();
        bytes.extend(tail);
        // Anything but a leaked Io error is fine, as long as it didn't panic.
        if let Err(PersistError::Io(e)) = read_all(&bytes) {
            prop_assert!(false, "io error leaked: {e}");
        }
    }

    #[test]
    fn wal_random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = read_all(&bytes); // must not panic
    }
}
