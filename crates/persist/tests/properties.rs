//! Property tests: any world survives an encode/decode round trip with
//! its flat model intact.

use std::sync::Arc;

use proptest::prelude::*;

use hrdm_core::flat::flatten;
use hrdm_core::prelude::*;
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};
use hrdm_persist::Image;

fn arb_world() -> impl Strategy<Value = Image> {
    (any::<u64>(), 1usize..6, any::<u64>(), 0u8..3).prop_map(|(gseed, ntuples, tseed, pre)| {
        let layers = 1 + (gseed % 3) as usize;
        let width = 2 + (gseed / 3 % 3) as usize;
        let g = Arc::new(layered_dag(layers, width, 2, gseed));
        let preemption = match pre {
            0 => Preemption::OffPath,
            1 => Preemption::OnPath,
            _ => Preemption::NoPreemption,
        };
        let schema = Arc::new(Schema::single("V", g.clone()));
        let mut r = HRelation::with_preemption(schema, preemption);
        for (k, node) in sample_nodes(&g, ntuples, tseed).into_iter().enumerate() {
            let truth = if (tseed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        let mut image = Image::new();
        image.add_domain("D", g);
        image.add_relation("R", r);
        image
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_preserves_everything(image in arb_world()) {
        let bytes = image.to_bytes().unwrap();
        let restored = Image::from_bytes(&bytes).unwrap();
        let before = image.relation("R").unwrap();
        let after = restored.relation("R").unwrap();
        prop_assert_eq!(before.len(), after.len());
        prop_assert_eq!(before.preemption(), after.preemption());
        // Same stored tuples.
        let a: Vec<_> = before.iter().map(|(i, t)| (i.clone(), t)).collect();
        let b: Vec<_> = after.iter().map(|(i, t)| (i.clone(), t)).collect();
        prop_assert_eq!(a, b);
        // Same graph structure.
        let g1 = image.domain("D").unwrap();
        let g2 = restored.domain("D").unwrap();
        prop_assert_eq!(g1.len(), g2.len());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        for id in g1.node_ids() {
            prop_assert_eq!(g1.name(id).as_str(), g2.name(id).as_str());
            let mut c1: Vec<_> = g1.children(id).collect();
            let mut c2: Vec<_> = g2.children(id).collect();
            c1.sort_unstable();
            c2.sort_unstable();
            prop_assert_eq!(c1, c2);
        }
    }

    #[test]
    fn round_trip_preserves_flat_model(image in arb_world()) {
        let restored = Image::from_bytes(&image.to_bytes().unwrap()).unwrap();
        let before = flatten(image.relation("R").unwrap());
        let after = flatten(restored.relation("R").unwrap());
        prop_assert_eq!(before.atoms(), after.atoms());
    }

    #[test]
    fn double_round_trip_is_stable(image in arb_world()) {
        let once = Image::from_bytes(&image.to_bytes().unwrap()).unwrap();
        let bytes1 = once.to_bytes().unwrap();
        let twice = Image::from_bytes(&bytes1).unwrap();
        prop_assert_eq!(bytes1, twice.to_bytes().unwrap());
    }
}
