//! Property tests: any world survives an encode/decode round trip with
//! its flat model intact, and any mutation history survives a
//! checkpoint + WAL replay byte-for-byte.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hrdm_core::flat::flatten;
use hrdm_core::mutation::CatalogMutation;
use hrdm_core::prelude::*;
use hrdm_hierarchy::gen::{layered_dag, sample_nodes};
use hrdm_persist::{recover, DurableCatalog, Image};

fn arb_world() -> impl Strategy<Value = Image> {
    (any::<u64>(), 1usize..6, any::<u64>(), 0u8..3).prop_map(|(gseed, ntuples, tseed, pre)| {
        let layers = 1 + (gseed % 3) as usize;
        let width = 2 + (gseed / 3 % 3) as usize;
        let g = Arc::new(layered_dag(layers, width, 2, gseed));
        let preemption = match pre {
            0 => Preemption::OffPath,
            1 => Preemption::OnPath,
            _ => Preemption::NoPreemption,
        };
        let schema = Arc::new(Schema::single("V", g.clone()));
        let mut r = HRelation::with_preemption(schema, preemption);
        for (k, node) in sample_nodes(&g, ntuples, tseed).into_iter().enumerate() {
            let truth = if (tseed >> k) & 1 == 1 {
                Truth::Positive
            } else {
                Truth::Negative
            };
            let _ = r.insert(Tuple::new(Item::new(vec![node]), truth));
        }
        let mut image = Image::new();
        image.add_domain("D", g);
        image.add_relation("R", r);
        image
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_preserves_everything(image in arb_world()) {
        let bytes = image.to_bytes().unwrap();
        let restored = Image::from_bytes(&bytes).unwrap();
        let before = image.relation("R").unwrap();
        let after = restored.relation("R").unwrap();
        prop_assert_eq!(before.len(), after.len());
        prop_assert_eq!(before.preemption(), after.preemption());
        // Same stored tuples.
        let a: Vec<_> = before.iter().map(|(i, t)| (i.clone(), t)).collect();
        let b: Vec<_> = after.iter().map(|(i, t)| (i.clone(), t)).collect();
        prop_assert_eq!(a, b);
        // Same graph structure.
        let g1 = image.domain("D").unwrap();
        let g2 = restored.domain("D").unwrap();
        prop_assert_eq!(g1.len(), g2.len());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        for id in g1.node_ids() {
            prop_assert_eq!(g1.name(id).as_str(), g2.name(id).as_str());
            let mut c1: Vec<_> = g1.children(id).collect();
            let mut c2: Vec<_> = g2.children(id).collect();
            c1.sort_unstable();
            c2.sort_unstable();
            prop_assert_eq!(c1, c2);
        }
    }

    #[test]
    fn round_trip_preserves_flat_model(image in arb_world()) {
        let restored = Image::from_bytes(&image.to_bytes().unwrap()).unwrap();
        let before = flatten(image.relation("R").unwrap());
        let after = flatten(restored.relation("R").unwrap());
        prop_assert_eq!(before.atoms(), after.atoms());
    }

    #[test]
    fn double_round_trip_is_stable(image in arb_world()) {
        let once = Image::from_bytes(&image.to_bytes().unwrap()).unwrap();
        let bytes1 = once.to_bytes().unwrap();
        let twice = Image::from_bytes(&bytes1).unwrap();
        prop_assert_eq!(bytes1, twice.to_bytes().unwrap());
    }
}

// ---------------------------------------------------------------------
// Durability: checkpoint + WAL replay must rebuild the live in-memory
// catalog byte-for-byte, and recovery must be idempotent (read-only).

fn temp_store_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hrdm-properties-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic, always-valid mutation script: one domain growing a
/// random class DAG, one relation over it, and fresh assertions only
/// (each class asserted at most once, so no contradictions arise).
/// Classes added *after* the relation exist exercise the catalog's
/// domain re-sharing path under journaling.
fn durable_script(seed: u64, n: usize) -> Vec<CatalogMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut script = vec![
        CatalogMutation::CreateDomain { name: "D".into() },
        CatalogMutation::CreateRelation {
            name: "R".into(),
            attributes: vec![("V".into(), "D".into())],
        },
    ];
    let mut classes = vec!["D".to_string()];
    let mut unasserted: Vec<String> = Vec::new();
    let mut next_class = 0usize;
    while script.len() < n + 2 {
        if unasserted.is_empty() || rng.gen_bool(0.5) {
            let parent = classes[rng.gen_range(0..classes.len())].clone();
            let name = format!("C{next_class}");
            next_class += 1;
            script.push(CatalogMutation::AddClass {
                domain: "D".into(),
                name: name.clone(),
                parents: vec![parent],
            });
            classes.push(name.clone());
            unasserted.push(name);
        } else {
            let value = unasserted.swap_remove(rng.gen_range(0..unasserted.len()));
            let truth = if rng.gen_bool(0.7) {
                Truth::Positive
            } else {
                Truth::Negative
            };
            script.push(CatalogMutation::Assert {
                relation: "R".into(),
                values: vec![value],
                truth,
            });
        }
    }
    script
}

proptest! {
    // Each case touches the filesystem (checkpoint + WAL + fsyncs), so
    // keep the count modest; the crash_recovery harness covers volume.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn checkpoint_plus_replay_equals_live_catalog(
        seed in any::<u64>(),
        n in 4usize..32,
        split_pct in 0u64..100,
    ) {
        let script = durable_script(seed, n);
        // Checkpoint somewhere mid-script so recovery exercises both an
        // image load and a WAL replay tail.
        let split = 2 + (script.len() - 2) * split_pct as usize / 100;
        let dir = temp_store_dir();
        let mut dc = DurableCatalog::open_with_group(&dir, 8).unwrap();
        for m in &script[..split] {
            dc.mutate(m.clone()).unwrap();
        }
        dc.checkpoint().unwrap();
        for m in &script[split..] {
            dc.mutate(m.clone()).unwrap();
        }
        dc.sync().unwrap();
        let live_render = dc.catalog().render_stable();
        let live_bytes = Image::from_catalog(dc.catalog()).to_bytes().unwrap();
        let live_lsn = dc.lsn();
        drop(dc);

        let first = recover(&dir).unwrap();
        prop_assert_eq!(first.report.next_lsn(), live_lsn);
        prop_assert_eq!(first.report.truncated_bytes, 0);
        prop_assert_eq!(first.catalog.render_stable(), live_render.clone());
        prop_assert_eq!(
            Image::from_catalog(&first.catalog).to_bytes().unwrap(),
            live_bytes
        );

        // Recovery is read-only: a second pass sees the identical world
        // and produces the identical report.
        let second = recover(&dir).unwrap();
        prop_assert_eq!(second.catalog.render_stable(), live_render);
        prop_assert_eq!(second.report.render_stable(), first.report.render_stable());
        std::fs::remove_dir_all(&dir).ok();
    }
}
