//! A wire-level sharded coordinator: the same statement routing as the
//! in-process `ShardedEngine`, but speaking `HRDM/1` to remote shard
//! servers **through the same trait** ([`ExecutorHandle`]) it
//! implements itself.
//!
//! Each shard is one [`Client`] connection to an `hrdm-server` event
//! loop serving that shard's engine (see `ShardedEngine::shards` for
//! the single-process wiring, or point each connection at a separate
//! process). Routing mirrors the in-process coordinator: relations
//! hash-partition by name ([`default_shard`]), domain DDL broadcasts to
//! every shard (domain hierarchies are replicated, keeping the
//! partition domain-subtree aware), and `LET` colocates with its
//! sources. Ordering needs no epoch floors here: all statements for a
//! shard flow down **one** connection, and the server executes a
//! connection's requests in order — so a read that follows a write
//! through this router always observes it.
//!
//! Two whole-catalog operations the in-process coordinator supports by
//! reaching into engine internals are reported as `"unsupported"` over
//! the wire: cross-shard `RENAME RELATION` (the replay would need a
//! machine-readable tuple export verb) and `DROP DOMAIN`'s in-use guard
//! is enforced from the router's own placement records rather than shard
//! snapshots (identical outcomes for catalogs administered through the
//! router).

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::Mutex;

use hrdm::hql::ast::{Derivation, Statement};
use hrdm::hql::shard::{default_shard, derivation_sources, statement_relation};
use hrdm::hql::{ExecError, ExecResult, ExecutorHandle};

use crate::proto::Client;

/// Placement records: where each relation lives and which domains its
/// signature references (the `DROP DOMAIN` guard).
#[derive(Default)]
struct Routes {
    placement: BTreeMap<String, usize>,
    domains_of: BTreeMap<String, BTreeSet<String>>,
}

/// A coordinator over N remote shard servers, itself an
/// [`ExecutorHandle`].
pub struct WireRouter {
    shards: Vec<Client>,
    routes: Mutex<Routes>,
}

impl WireRouter {
    /// Connect one `HRDM/1` client per shard address, in shard order.
    pub fn connect<A: std::net::ToSocketAddrs>(addrs: &[A]) -> io::Result<WireRouter> {
        let shards = addrs
            .iter()
            .map(Client::connect)
            .collect::<io::Result<Vec<_>>>()?;
        Ok(WireRouter::over(shards))
    }

    /// Build a router over already-connected clients (shard order).
    pub fn over(shards: Vec<Client>) -> WireRouter {
        assert!(!shards.is_empty(), "a router needs at least one shard");
        WireRouter {
            shards,
            routes: Mutex::new(Routes::default()),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard currently owning `relation`.
    pub fn owner_of(&self, relation: &str) -> usize {
        let routes = self.routes.lock().expect("routes lock poisoned");
        routes
            .placement
            .get(relation)
            .copied()
            .unwrap_or_else(|| default_shard(relation, self.shards.len()))
    }

    /// Run one rendered statement on shard `k`, returning its single
    /// rendered response.
    fn exec_on(&self, k: usize, stmt: &Statement) -> ExecResult<String> {
        let mut out = self.shards[k].execute(&stmt.to_string())?;
        out.pop()
            .ok_or_else(|| ExecError::new("protocol", "empty response body from shard"))
    }

    /// Broadcast a domain-scoped statement: shard 0 decides (all shards
    /// hold identical domain state), the rest must agree.
    fn broadcast(&self, stmt: &Statement) -> ExecResult<String> {
        let response = self.exec_on(0, stmt)?;
        for k in 1..self.shards.len() {
            self.exec_on(k, stmt).map_err(|e| {
                ExecError::new(
                    "execution",
                    format!("shard {k} diverged on broadcast of `{stmt}`: {e}"),
                )
            })?;
        }
        Ok(response)
    }

    /// The single shard holding all of a derivation's sources.
    fn single_shard_of(&self, derivation: &Derivation) -> ExecResult<usize> {
        let mut sources = BTreeSet::new();
        derivation_sources(derivation, &mut sources);
        let shards: BTreeSet<usize> = sources.iter().map(|s| self.owner_of(s)).collect();
        match shards.len() {
            0 => Err(ExecError::new("unsupported", "derivation has no sources")),
            1 => Ok(shards.into_iter().next().expect("len checked")),
            _ => Err(ExecError::new(
                "unsupported",
                format!("derivation spans shards {shards:?}; colocate its sources"),
            )),
        }
    }

    fn run_one(&self, stmt: &Statement) -> ExecResult<String> {
        match stmt {
            Statement::CreateDomain { .. }
            | Statement::CreateClass { .. }
            | Statement::CreateInstance { .. }
            | Statement::Prefer { .. } => self.broadcast(stmt),
            Statement::DropDomain { name } => {
                {
                    let routes = self.routes.lock().expect("routes lock poisoned");
                    if let Some((relation, _)) = routes
                        .domains_of
                        .iter()
                        .find(|(_, domains)| domains.contains(name))
                    {
                        return Err(ExecError::new(
                            "in-use",
                            format!("domain {name:?} is referenced by relation {relation:?}"),
                        ));
                    }
                }
                self.broadcast(stmt)
            }
            Statement::CreateRelation { name, attributes } => {
                let k = default_shard(name, self.shards.len());
                let response = self.exec_on(k, stmt)?;
                let mut routes = self.routes.lock().expect("routes lock poisoned");
                routes.placement.insert(name.clone(), k);
                routes.domains_of.insert(
                    name.clone(),
                    attributes.iter().map(|(_, d)| d.clone()).collect(),
                );
                Ok(response)
            }
            Statement::DropRelation { name } => {
                let response = self.exec_on(self.owner_of(name), stmt)?;
                let mut routes = self.routes.lock().expect("routes lock poisoned");
                routes.placement.remove(name);
                routes.domains_of.remove(name);
                Ok(response)
            }
            Statement::RenameRelation { from, to } => {
                let src = self.owner_of(from);
                let dst = default_shard(to, self.shards.len());
                if src != dst {
                    return Err(ExecError::new(
                        "unsupported",
                        format!(
                            "renaming {from:?} to {to:?} would move it from shard {src} to \
                             {dst}; cross-shard renames need the in-process coordinator"
                        ),
                    ));
                }
                let response = self.exec_on(src, stmt)?;
                let mut routes = self.routes.lock().expect("routes lock poisoned");
                routes.placement.remove(from);
                routes.placement.insert(to.clone(), src);
                if let Some(domains) = routes.domains_of.remove(from) {
                    routes.domains_of.insert(to.clone(), domains);
                }
                Ok(response)
            }
            Statement::Let { name, derivation } => {
                let k = self.single_shard_of(derivation)?;
                let response = self.exec_on(k, stmt)?;
                let mut routes = self.routes.lock().expect("routes lock poisoned");
                routes.placement.insert(name.clone(), k);
                // The view's signature domains are the union of its
                // sources' — what the DROP DOMAIN guard needs.
                let mut sources = BTreeSet::new();
                derivation_sources(derivation, &mut sources);
                let domains: BTreeSet<String> = sources
                    .iter()
                    .filter_map(|s| routes.domains_of.get(s))
                    .flatten()
                    .cloned()
                    .collect();
                routes.domains_of.insert(name.clone(), domains);
                Ok(response)
            }
            Statement::Save { .. }
            | Statement::Load { .. }
            | Statement::Open { .. }
            | Statement::Checkpoint => Err(ExecError::new(
                "unsupported",
                "whole-catalog persistence statements do not route through a sharded \
                 coordinator",
            )),
            Statement::ShowDomain { .. } => self.exec_on(0, stmt),
            Statement::Explain { derivation } | Statement::Trace { derivation } => {
                self.exec_on(self.single_shard_of(derivation)?, stmt)
            }
            other => {
                let relation = statement_relation(other)
                    .expect("all remaining statements are relation-scoped");
                self.exec_on(self.owner_of(relation), other)
            }
        }
    }
}

impl ExecutorHandle for WireRouter {
    fn execute(&self, script: &str) -> ExecResult<Vec<String>> {
        let statements = hrdm::hql::parser::parse(script)
            .map_err(|e| ExecError::new(e.kind(), e.to_string()))?;
        let mut out = Vec::with_capacity(statements.len());
        for stmt in &statements {
            out.push(self.run_one(stmt)?);
        }
        Ok(out)
    }

    fn execute_read(&self, script: &str, min_epoch: u64) -> ExecResult<Vec<String>> {
        let statements = hrdm::hql::parser::parse(script)
            .map_err(|e| ExecError::new(e.kind(), e.to_string()))?;
        if !statements.iter().all(Statement::is_read_only) {
            return Err(ExecError::new(
                "unsupported",
                "script contains a mutating statement; route it through execute",
            ));
        }
        if self.last_epoch()? < min_epoch {
            return Err(ExecError::new(
                "stale",
                format!("router is below the requested epoch floor {min_epoch}"),
            ));
        }
        let mut out = Vec::with_capacity(statements.len());
        for stmt in &statements {
            out.push(self.run_one(stmt)?);
        }
        Ok(out)
    }

    fn last_epoch(&self) -> ExecResult<u64> {
        let mut total = 0u64;
        for shard in &self.shards {
            total += shard.last_epoch()?;
        }
        Ok(total)
    }

    fn probe(&self) -> ExecResult<String> {
        let mut out = format!(
            "epoch: {}\nshards: {}",
            self.last_epoch()?,
            self.shards.len()
        );
        for (k, shard) in self.shards.iter().enumerate() {
            out.push_str(&format!("\nshard-{k}-epoch: {}", shard.last_epoch()?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_routing_stays_consistent_with_the_engine_coordinator() {
        // The wire router and the in-process coordinator must agree on
        // placement, or a statement routed through one would miss data
        // written through the other.
        for n in 1..6 {
            for name in ["Flies", "Sizes", "Colors", "Loved"] {
                assert_eq!(
                    default_shard(name, n),
                    hrdm::hql::default_shard(name, n),
                    "one hash function, re-exported"
                );
            }
        }
    }
}
