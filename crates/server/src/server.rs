//! The concurrent TCP server over a shared [`Engine`].
//!
//! One thread accepts connections (bounded by
//! [`ServerConfig::max_connections`] — excess connections get a `BUSY`
//! reply instead of queueing unboundedly); each admitted connection
//! gets its own thread. Statement execution inherits the engine's
//! concurrency contract: read-only statements evaluate against an
//! epoch-stamped snapshot with no lock held, mutating statements
//! serialize through the engine's single writer and journal through
//! the WAL of the `OPEN`ed store. Every reply a client sees is
//! therefore byte-identical to executing the same statements against
//! some serial prefix of the write history.
//!
//! # Telemetry
//!
//! Every request is instrumented into the `hrdm-obs` registry: a
//! per-verb latency histogram (`server.latency.<verb>`, p50/p95/p99),
//! bytes-in/out counters and a frame-size histogram, and counters for
//! admission (`server.busy`), timeouts, and protocol errors, plus
//! `server.active_connections` / `server.epoch` gauges. The registry
//! is readable over the wire via the `METRICS` verb; requests slower
//! than [`ServerConfig::slowlog_threshold`] are additionally captured
//! into the process-global slow-query log (`hrdm_obs::slowlog`) with
//! their rendered trace trees, served by the `SLOWLOG` verb. Without
//! the `obs` feature both verbs answer a stable `ERR unsupported` and
//! the instrumentation compiles out.
//!
//! Shutdown is graceful: the flag flips, a self-connection wakes the
//! accept loop, and every connection thread is joined before
//! [`ServerHandle::wait`]/[`ServerHandle::shutdown`] return.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hrdm::prelude::Engine;
use hrdm_obs::metrics::{self, Counter, Gauge, Histogram};
use hrdm_obs::trace::fmt_ns;

use crate::proto::{read_frame, write_frame, MetricsFormat, Reply, Request, PROTOCOL_VERSION};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Admission cap: connections past this count receive `BUSY`.
    pub max_connections: usize,
    /// Per-connection read timeout; an idle connection is sent
    /// `ERR timeout` and closed.
    pub read_timeout: Duration,
    /// `QUERY`/`TRACE` requests at least this slow are captured into
    /// the process-global slow-query log with their rendered trace
    /// trees (`Duration::ZERO` captures every request). Only servers
    /// built with the `obs` feature capture anything.
    pub slowlog_threshold: Duration,
    /// Bound on resident slow-log entries; the log keeps the N
    /// *slowest* requests, not the N most recent.
    pub slowlog_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            slowlog_threshold: Duration::from_millis(100),
            slowlog_capacity: hrdm_obs::slowlog::DEFAULT_CAPACITY,
        }
    }
}

/// Per-server counters, readable at any time and rendered by `STATS`.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (admitted or not).
    pub accepted: AtomicU64,
    /// Connections turned away with `BUSY`.
    pub busy_rejected: AtomicU64,
    /// `QUERY`/`TRACE` requests executed successfully.
    pub queries: AtomicU64,
    /// Requests answered with an `ERR` reply.
    pub errors: AtomicU64,
    /// Connections closed by the read timeout.
    pub timeouts: AtomicU64,
    /// Malformed frames / unknown verbs / handshake violations.
    pub protocol_errors: AtomicU64,
    /// Request bytes read off the wire (frame headers included).
    pub bytes_in: AtomicU64,
    /// Reply bytes written to the wire (frame headers included).
    pub bytes_out: AtomicU64,
}

/// Registry-backed server metrics, resolved once per process. The same
/// series back every server instance (like the engine's own metrics),
/// so `metrics::reset_all` / the bench fixtures reset them all at once.
struct ServerObs {
    accept: Counter,
    busy: Counter,
    requests: Counter,
    query: Counter,
    query_error: Counter,
    timeout: Counter,
    protocol_error: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    frame_bytes: Histogram,
    slow_recorded: Counter,
    active: Gauge,
    epoch: Gauge,
    lat_hello: Histogram,
    lat_query: Histogram,
    lat_trace: Histogram,
    lat_stats: Histogram,
    lat_metrics: Histogram,
    lat_slowlog: Histogram,
    lat_quit: Histogram,
    lat_shutdown: Histogram,
}

fn server_obs() -> &'static ServerObs {
    static OBS: OnceLock<ServerObs> = OnceLock::new();
    OBS.get_or_init(|| ServerObs {
        accept: metrics::counter("server.accept"),
        busy: metrics::counter("server.busy"),
        requests: metrics::counter("server.requests"),
        query: metrics::counter("server.query"),
        query_error: metrics::counter("server.query_error"),
        timeout: metrics::counter("server.timeout"),
        protocol_error: metrics::counter("server.protocol_error"),
        bytes_in: metrics::counter("server.bytes_in"),
        bytes_out: metrics::counter("server.bytes_out"),
        frame_bytes: metrics::histogram("server.frame_bytes"),
        slow_recorded: metrics::counter("server.slowlog.recorded"),
        active: metrics::gauge("server.active_connections"),
        epoch: metrics::gauge("server.epoch"),
        lat_hello: metrics::histogram("server.latency.hello"),
        lat_query: metrics::histogram("server.latency.query"),
        lat_trace: metrics::histogram("server.latency.trace"),
        lat_stats: metrics::histogram("server.latency.stats"),
        lat_metrics: metrics::histogram("server.latency.metrics"),
        lat_slowlog: metrics::histogram("server.latency.slowlog"),
        lat_quit: metrics::histogram("server.latency.quit"),
        lat_shutdown: metrics::histogram("server.latency.shutdown"),
    })
}

impl ServerObs {
    fn latency_of(&self, request: &Request) -> &Histogram {
        match request {
            Request::Hello => &self.lat_hello,
            Request::Query(_) => &self.lat_query,
            Request::Trace(_) => &self.lat_trace,
            Request::Stats => &self.lat_stats,
            Request::Metrics(_) => &self.lat_metrics,
            Request::Slowlog(_) => &self.lat_slowlog,
            Request::Quit => &self.lat_quit,
            Request::Shutdown => &self.lat_shutdown,
        }
    }
}

struct Shared {
    engine: Engine,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: AtomicUsize,
    stats: ServerStats,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// The server factory; see [`Server::start`].
pub struct Server;

/// A running server: its bound address, counters, and shutdown control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, start the accept loop, and return immediately.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        hrdm_obs::slowlog::set_capacity(config.slowlog_capacity);
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            stats: ServerStats::default(),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("hrdm-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Has a shutdown been requested (via [`ServerHandle::shutdown`] or
    /// the `SHUTDOWN` verb)?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful shutdown and wait for every thread to finish.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        self.join();
    }

    /// Block until the server shuts down (e.g. a client sends
    /// `SHUTDOWN`), then join every thread.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.conns.lock().expect("conns lock poisoned"));
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            trigger_shutdown(&self.shared);
        }
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop out of its blocking accept().
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        server_obs().accept.incr();
        // Admission control: reply BUSY instead of queueing unboundedly.
        // Drain the client's opening frame before replying so closing
        // the socket doesn't RST away the BUSY reply, and do it off the
        // accept thread so a silent client can't stall admission.
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.stats.busy_rejected.fetch_add(1, Ordering::Relaxed);
            server_obs().busy.incr();
            let busy_shared = shared.clone();
            let reject = std::thread::Builder::new()
                .name("hrdm-busy".into())
                .spawn(move || {
                    let mut stream = stream;
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
                    let _ = read_frame(&mut stream);
                    let _ = reply_to(
                        &mut stream,
                        &busy_shared,
                        &Reply::Busy("server at connection capacity; retry later".into()),
                    );
                });
            if let Ok(h) = reject {
                shared.conns.lock().expect("conns lock poisoned").push(h);
            }
            continue;
        }
        let now_active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        server_obs().active.set(now_active as u64);
        let conn_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("hrdm-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                let left = conn_shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                server_obs().active.set(left as u64);
            });
        match handle {
            Ok(h) => shared.conns.lock().expect("conns lock poisoned").push(h),
            Err(_) => {
                let left = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                server_obs().active.set(left as u64);
            }
        }
    }
}

/// Render and write one reply, accounting the bytes that left the wire
/// (4-byte frame header included).
fn reply_to(stream: &mut TcpStream, shared: &Shared, reply: &Reply) -> io::Result<()> {
    let payload = reply.render();
    shared
        .stats
        .bytes_out
        .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
    server_obs().bytes_out.add(4 + payload.len() as u64);
    write_frame(stream, &payload)
}

/// What the connection loop does after a reply is written.
enum After {
    Continue,
    Close,
    Shutdown,
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    // Replies are two small writes (length header, then payload);
    // without TCP_NODELAY, Nagle holds the payload until the client
    // ACKs the header — tens of milliseconds per request.
    let _ = stream.set_nodelay(true);
    let obs = server_obs();
    let mut greeted = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                let wire_len = 4 + frame.len() as u64;
                shared.stats.bytes_in.fetch_add(wire_len, Ordering::Relaxed);
                obs.bytes_in.add(wire_len);
                obs.frame_bytes.observe_ns(frame.len() as u64);
                frame
            }
            Ok(None) => break, // clean EOF
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                obs.timeout.incr();
                let _ = reply_to(
                    &mut stream,
                    shared,
                    &Reply::Err {
                        kind: "timeout".into(),
                        message: format!(
                            "no request within {:?}; closing",
                            shared.config.read_timeout
                        ),
                    },
                );
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                obs.protocol_error.incr();
                let _ = reply_to(
                    &mut stream,
                    shared,
                    &Reply::Err {
                        kind: "protocol".into(),
                        message: e.to_string(),
                    },
                );
                break;
            }
            Err(_) => break,
        };
        let request = match Request::parse(&frame) {
            Ok(r) => r,
            Err(msg) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                obs.protocol_error.incr();
                let _ = reply_to(
                    &mut stream,
                    shared,
                    &Reply::Err {
                        kind: "protocol".into(),
                        message: msg,
                    },
                );
                continue;
            }
        };
        if !greeted && !matches!(request, Request::Hello) {
            // HELLO must come first; anything else is a protocol error
            // that closes the connection.
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            obs.protocol_error.incr();
            let _ = reply_to(
                &mut stream,
                shared,
                &Reply::Err {
                    kind: "protocol".into(),
                    message: "expected HELLO as the first request".into(),
                },
            );
            break;
        }
        let started = Instant::now();
        let (reply, after) = match request {
            Request::Hello => {
                greeted = true;
                (Reply::Ok(vec![PROTOCOL_VERSION.into()]), After::Continue)
            }
            Request::Query(ref script) => (run_script(shared, script, false), After::Continue),
            Request::Trace(ref script) => (run_script(shared, script, true), After::Continue),
            Request::Stats => (Reply::Ok(vec![render_stats(shared)]), After::Continue),
            Request::Metrics(format) => (run_metrics(format), After::Continue),
            Request::Slowlog(limit) => (run_slowlog(limit), After::Continue),
            Request::Quit => (Reply::Ok(vec!["bye".into()]), After::Close),
            Request::Shutdown => (Reply::Ok(vec!["shutting down".into()]), After::Shutdown),
        };
        obs.requests.incr();
        obs.latency_of(&request)
            .observe_ns(started.elapsed().as_nanos() as u64);
        obs.epoch.set(shared.engine.epoch());
        let _ = reply_to(&mut stream, shared, &reply);
        match after {
            After::Continue => {}
            After::Close => break,
            After::Shutdown => {
                trigger_shutdown(shared);
                break;
            }
        }
        let _ = stream.flush();
    }
}

/// Execute a script, recording query counters and — when the request
/// lands at or beyond the slow-log threshold — its rendered trace tree
/// into the process-global slow-query log. With `traced` the trace is
/// also appended to the reply (the `TRACE` verb contract).
fn run_script(shared: &Shared, script: &str, traced: bool) -> Reply {
    let obs = server_obs();
    let started = Instant::now();
    // Capture spans whenever the trace can be consumed: always for
    // TRACE, and for QUERY when an obs build may feed the slow log.
    let capture = traced || cfg!(feature = "obs");
    let (result, trace) = if capture {
        hrdm_obs::trace::capture("server.query", || shared.engine.execute(script))
    } else {
        (shared.engine.execute(script), hrdm_obs::QueryTrace::empty())
    };
    let wall = started.elapsed();
    if cfg!(feature = "obs") && wall >= shared.config.slowlog_threshold {
        let verb = if traced { "TRACE" } else { "QUERY" };
        if hrdm_obs::slowlog::record(
            verb,
            script,
            wall.as_nanos() as u64,
            shared.engine.epoch(),
            trace.render(),
        ) {
            obs.slow_recorded.incr();
        }
    }
    match result {
        Ok(responses) => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            obs.query.incr();
            let mut parts: Vec<String> = responses.iter().map(ToString::to_string).collect();
            if traced {
                parts.push(trace.render());
            }
            Reply::Ok(parts)
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            obs.query_error.incr();
            Reply::Err {
                kind: e.kind().to_string(),
                message: e.to_string(),
            }
        }
    }
}

fn unsupported(verb: &str) -> Reply {
    Reply::Err {
        kind: "unsupported".into(),
        message: format!("{verb} requires a server built with the obs feature"),
    }
}

fn run_metrics(format: MetricsFormat) -> Reply {
    if !cfg!(feature = "obs") {
        return unsupported("METRICS");
    }
    let body = match format {
        MetricsFormat::Prometheus => metrics::render_prometheus(),
        MetricsFormat::Json => metrics::export_json("server"),
    };
    Reply::Ok(vec![body])
}

fn run_slowlog(limit: Option<u32>) -> Reply {
    if !cfg!(feature = "obs") {
        return unsupported("SLOWLOG");
    }
    let mut entries = hrdm_obs::slowlog::entries();
    if let Some(n) = limit {
        entries.truncate(n as usize);
    }
    let parts = entries
        .iter()
        .enumerate()
        .map(|(rank, e)| {
            format!(
                "#{} {} {} epoch={} seq={}\n{}\n{}",
                rank + 1,
                e.verb,
                fmt_ns(e.wall_ns),
                e.epoch,
                e.seq,
                e.preview,
                e.trace
            )
        })
        .collect();
    Reply::Ok(parts)
}

fn render_stats(shared: &Shared) -> String {
    format!(
        "epoch: {}\naccepted: {}\nactive: {}\nbusy-rejected: {}\nqueries: {}\nerrors: {}\n\
         timeouts: {}\nprotocol-errors: {}\nbytes-in: {}\nbytes-out: {}\n\
         slowlog-entries: {}\nslowlog-threshold-ms: {}",
        shared.engine.epoch(),
        shared.stats.accepted.load(Ordering::Relaxed),
        shared.active.load(Ordering::SeqCst),
        shared.stats.busy_rejected.load(Ordering::Relaxed),
        shared.stats.queries.load(Ordering::Relaxed),
        shared.stats.errors.load(Ordering::Relaxed),
        shared.stats.timeouts.load(Ordering::Relaxed),
        shared.stats.protocol_errors.load(Ordering::Relaxed),
        shared.stats.bytes_in.load(Ordering::Relaxed),
        shared.stats.bytes_out.load(Ordering::Relaxed),
        hrdm_obs::slowlog::len(),
        shared.config.slowlog_threshold.as_millis(),
    )
}
