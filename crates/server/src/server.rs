//! The event-driven TCP server over a shared [`Engine`].
//!
//! # Architecture
//!
//! One **readiness loop** (`hrdm-loop`) owns every socket in
//! non-blocking mode — the listener, a self-wake pipe, and all client
//! connections — and multiplexes them through `poll(2)` (via the thin
//! [`crate::sys`] libc shim). Connections are state machines: bytes
//! arrive in arbitrary fragments, a [`FrameReader`] reassembles frames,
//! parsed requests queue per connection, and replies flush through a
//! per-connection write buffer when the socket is writable. The loop
//! itself never executes a query: `QUERY`/`TRACE` requests are handed
//! to a small **worker pool** (`hrdm-worker-N`) over a channel; workers
//! execute against engine snapshots and post completed reply frames
//! back through a completion queue + wake pipe.
//!
//! # Pipelining
//!
//! A connection may have many requests in flight (up to
//! [`ServerConfig::max_pipeline`]): requests execute **in order** and
//! replies return **in order**, so the k-th reply answers the k-th
//! request. In-order execution preserves read-your-writes per
//! connection — a pipelined burst answers byte-identically to the same
//! requests issued sequentially. Past the pipeline cap the loop simply
//! stops reading from that connection, letting TCP flow control push
//! back on the client.
//!
//! # Snapshot batching
//!
//! Read-only scripts dispatched within one loop tick share a **single**
//! snapshot acquisition ([`Engine::read_view`]): the loop pins one
//! `ReadView` per tick and attaches it to every job. A worker uses the
//! shared view unless the connection committed a later write (the
//! read-your-writes floor), in which case it pins a fresh one. Scripts
//! containing mutations fall back to [`Engine::execute`] and serialize
//! through the single writer as always.
//!
//! # Admission control and backpressure
//!
//! Connections past [`ServerConfig::max_connections`] get a `BUSY`
//! reply at the handshake, exactly as before. Additionally, when the
//! engine's writer queue is at least [`ServerConfig::backpressure_depth`]
//! deep (the `engine.write_queue_depth` signal), **mutating** scripts
//! are shed with `BUSY` before touching the writer — reads are never
//! shed; they cost no writer capacity.
//!
//! # Telemetry
//!
//! Everything PR 8 instrumented is preserved (per-verb latency
//! histograms, bytes in/out, admission/timeout/protocol counters, the
//! `METRICS`/`SLOWLOG` verbs and the slow-query log), plus the loop's
//! own series: `server.loop.tick` / `server.loop.ready` (events per
//! tick), `server.pipeline.depth` (queued requests at dispatch),
//! `server.snapshot.batch` / `server.snapshot.shared_read` (tick views
//! pinned / reads served from a shared view), and
//! `server.backpressure.shed`.
//!
//! Shutdown is graceful: the flag flips, the wake pipe nudges the
//! loop, in-flight requests complete and flush, every connection
//! closes, the job channel drops, and the loop joins every worker
//! before [`ServerHandle::wait`]/[`ServerHandle::shutdown`] return.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hrdm::prelude::{Engine, ReadView};
use hrdm_obs::metrics::{self, Counter, Gauge, Histogram};
use hrdm_obs::trace::fmt_ns;

use crate::proto::{encode_frame, FrameReader, MetricsFormat, Reply, Request, PROTOCOL_VERSION};
use crate::sys::{self, PollFd, WakePipe, POLLIN, POLLOUT};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Admission cap: connections past this count receive `BUSY`.
    pub max_connections: usize,
    /// Per-connection idle deadline, measured from the last *completed*
    /// request activity (admission, a fully-received frame, a reply).
    /// An idle — or slow-loris — connection is sent `ERR timeout` and
    /// closed; trickling bytes without ever completing a frame does
    /// not reset the clock.
    pub read_timeout: Duration,
    /// `QUERY`/`TRACE` requests at least this slow are captured into
    /// the process-global slow-query log with their rendered trace
    /// trees (`Duration::ZERO` captures every request). Only servers
    /// built with the `obs` feature capture anything.
    pub slowlog_threshold: Duration,
    /// Bound on resident slow-log entries; the log keeps the N
    /// *slowest* requests, not the N most recent.
    pub slowlog_capacity: usize,
    /// Worker threads executing `QUERY`/`TRACE` requests. `0` sizes
    /// the pool from the machine (available parallelism, clamped to
    /// [2, 8]).
    pub workers: usize,
    /// Write backpressure: when the engine's writer queue is at least
    /// this deep, mutating scripts are shed with `BUSY` instead of
    /// queueing on the writer lock. Reads are never shed. `0` disables
    /// shedding.
    pub backpressure_depth: u64,
    /// Per-connection pipelining cap: requests parsed but not yet
    /// answered. Past it the loop stops reading from the connection
    /// (TCP flow control backpressures the client).
    pub max_pipeline: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            slowlog_threshold: Duration::from_millis(100),
            slowlog_capacity: hrdm_obs::slowlog::DEFAULT_CAPACITY,
            workers: 0,
            backpressure_depth: 0,
            max_pipeline: 128,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8)
    }
}

/// Per-server counters, readable at any time and rendered by `STATS`.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (admitted or not).
    pub accepted: AtomicU64,
    /// Connections turned away with `BUSY`.
    pub busy_rejected: AtomicU64,
    /// `QUERY`/`TRACE` requests executed successfully.
    pub queries: AtomicU64,
    /// Requests answered with an `ERR` reply.
    pub errors: AtomicU64,
    /// Connections closed by the read timeout.
    pub timeouts: AtomicU64,
    /// Malformed frames / unknown verbs / handshake violations.
    pub protocol_errors: AtomicU64,
    /// Request bytes read off the wire (frame headers included).
    pub bytes_in: AtomicU64,
    /// Reply bytes written to the wire (frame headers included).
    pub bytes_out: AtomicU64,
    /// Mutating scripts shed with `BUSY` under write backpressure.
    pub shed_writes: AtomicU64,
}

/// Registry-backed server metrics, resolved once per process. The same
/// series back every server instance (like the engine's own metrics),
/// so `metrics::reset_all` / the bench fixtures reset them all at once.
struct ServerObs {
    accept: Counter,
    busy: Counter,
    requests: Counter,
    query: Counter,
    query_error: Counter,
    timeout: Counter,
    protocol_error: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    frame_bytes: Histogram,
    slow_recorded: Counter,
    active: Gauge,
    epoch: Gauge,
    loop_tick: Counter,
    loop_ready: Histogram,
    pipeline_depth: Histogram,
    snapshot_batch: Counter,
    snapshot_shared_read: Counter,
    shed: Counter,
    write_queue_depth: Gauge,
    lat_hello: Histogram,
    lat_query: Histogram,
    lat_trace: Histogram,
    lat_stats: Histogram,
    lat_metrics: Histogram,
    lat_slowlog: Histogram,
    lat_quit: Histogram,
    lat_shutdown: Histogram,
}

fn server_obs() -> &'static ServerObs {
    static OBS: OnceLock<ServerObs> = OnceLock::new();
    OBS.get_or_init(|| ServerObs {
        accept: metrics::counter("server.accept"),
        busy: metrics::counter("server.busy"),
        requests: metrics::counter("server.requests"),
        query: metrics::counter("server.query"),
        query_error: metrics::counter("server.query_error"),
        timeout: metrics::counter("server.timeout"),
        protocol_error: metrics::counter("server.protocol_error"),
        bytes_in: metrics::counter("server.bytes_in"),
        bytes_out: metrics::counter("server.bytes_out"),
        frame_bytes: metrics::histogram("server.frame_bytes"),
        slow_recorded: metrics::counter("server.slowlog.recorded"),
        active: metrics::gauge("server.active_connections"),
        epoch: metrics::gauge("server.epoch"),
        loop_tick: metrics::counter("server.loop.tick"),
        loop_ready: metrics::histogram("server.loop.ready"),
        pipeline_depth: metrics::histogram("server.pipeline.depth"),
        snapshot_batch: metrics::counter("server.snapshot.batch"),
        snapshot_shared_read: metrics::counter("server.snapshot.shared_read"),
        shed: metrics::counter("server.backpressure.shed"),
        write_queue_depth: metrics::gauge("server.write_queue_depth"),
        lat_hello: metrics::histogram("server.latency.hello"),
        lat_query: metrics::histogram("server.latency.query"),
        lat_trace: metrics::histogram("server.latency.trace"),
        lat_stats: metrics::histogram("server.latency.stats"),
        lat_metrics: metrics::histogram("server.latency.metrics"),
        lat_slowlog: metrics::histogram("server.latency.slowlog"),
        lat_quit: metrics::histogram("server.latency.quit"),
        lat_shutdown: metrics::histogram("server.latency.shutdown"),
    })
}

/// One `QUERY`/`TRACE` request handed to the worker pool.
struct Job {
    conn: usize,
    generation: u64,
    seq: u64,
    script: String,
    traced: bool,
    /// The loop-tick snapshot this job may execute on (read-only
    /// scripts only, and only if it satisfies `min_epoch`).
    view: ReadView,
    /// Read-your-writes floor: the engine epoch this connection has
    /// already observed through a completed write.
    min_epoch: u64,
}

/// A finished request: the fully-encoded reply frame plus routing.
struct Completion {
    conn: usize,
    generation: u64,
    seq: u64,
    frame: Vec<u8>,
    /// Engine epoch after execution — advances the connection's
    /// read-your-writes floor.
    epoch: u64,
}

struct Shared {
    engine: Engine,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: AtomicUsize,
    stats: ServerStats,
    wake: WakePipe,
    completions: Mutex<Vec<Completion>>,
}

/// The server factory; see [`Server::start`].
pub struct Server;

/// A running server: its bound address, counters, and shutdown control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, start the readiness loop and worker pool, and return
    /// immediately.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        hrdm_obs::slowlog::set_capacity(config.slowlog_capacity);
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            stats: ServerStats::default(),
            wake: WakePipe::new()?,
            completions: Mutex::new(Vec::new()),
        });
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut workers = Vec::new();
        for k in 0..shared.config.effective_workers() {
            let shared = shared.clone();
            let rx = job_rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hrdm-worker-{k}"))
                    .spawn(move || worker_loop(shared, rx))?,
            );
        }
        let event_loop = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("hrdm-loop".into())
                .spawn(move || {
                    EventLoop::new(listener, shared, job_tx, workers).run();
                })?
        };
        Ok(ServerHandle {
            shared,
            event_loop: Some(event_loop),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Admitted connections currently open (excludes connections being
    /// turned away with `BUSY`). The chaos suite asserts this returns
    /// to zero after hostile clients disconnect.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Has a shutdown been requested (via [`ServerHandle::shutdown`] or
    /// the `SHUTDOWN` verb)?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful shutdown and wait for the loop and every
    /// worker to finish.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        self.join();
    }

    /// Block until the server shuts down (e.g. a client sends
    /// `SHUTDOWN`), then join the loop and every worker.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            trigger_shutdown(&self.shared);
        }
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.wake.wake();
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        // std mpsc receivers are single-consumer; the pool shares one
        // behind a mutex held only for the blocking recv.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else {
            return; // channel closed: the loop is shutting down
        };
        let reply = execute_job(&shared, &job);
        let payload = reply.render();
        let mut frame = Vec::with_capacity(4 + payload.len());
        encode_frame(&payload, &mut frame);
        shared
            .stats
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        server_obs().bytes_out.add(frame.len() as u64);
        let completion = Completion {
            conn: job.conn,
            generation: job.generation,
            seq: job.seq,
            frame,
            epoch: shared.engine.epoch(),
        };
        match shared.completions.lock() {
            Ok(mut q) => q.push(completion),
            Err(_) => return,
        }
        shared.wake.wake();
    }
}

/// Execute one `QUERY`/`TRACE` script, preferring the tick-shared
/// snapshot for read-only scripts, shedding mutating scripts under
/// write backpressure, and recording query counters plus the slow log.
fn execute_job(shared: &Shared, job: &Job) -> Reply {
    let obs = server_obs();
    let started = Instant::now();
    // Capture spans whenever the trace can be consumed: always for
    // TRACE, and for QUERY when an obs build may feed the slow log.
    let capture = job.traced || cfg!(feature = "obs");
    let run = || {
        // Read-your-writes: the tick view is only usable if it is at
        // least as fresh as the last write this connection observed.
        let (view, from_tick) = if job.view.epoch() >= job.min_epoch {
            (job.view.clone(), true)
        } else {
            (shared.engine.read_view(), false)
        };
        match view.try_execute(&job.script) {
            Some(result) => (result, from_tick, false),
            None => {
                // The script mutates: apply write backpressure, then
                // take the ordinary serialized-writer path.
                let limit = shared.config.backpressure_depth;
                if limit > 0 && shared.engine.write_queue_depth() >= limit {
                    return (Ok(Vec::new()), false, true);
                }
                (shared.engine.execute(&job.script), false, false)
            }
        }
    };
    let ((result, shared_view, shed), trace) = if capture {
        hrdm_obs::trace::capture("server.query", run)
    } else {
        (run(), hrdm_obs::QueryTrace::empty())
    };
    obs.requests.incr();
    obs.write_queue_depth.set(shared.engine.write_queue_depth());
    let wall = started.elapsed();
    if job.traced {
        obs.lat_trace.observe_ns(wall.as_nanos() as u64);
    } else {
        obs.lat_query.observe_ns(wall.as_nanos() as u64);
    }
    obs.epoch.set(shared.engine.epoch());
    if shed {
        shared.stats.shed_writes.fetch_add(1, Ordering::Relaxed);
        obs.shed.incr();
        return Reply::Busy(format!(
            "write backpressure: writer queue depth >= {}; retry later",
            shared.config.backpressure_depth
        ));
    }
    if shared_view {
        obs.snapshot_shared_read.incr();
    }
    if cfg!(feature = "obs") && wall >= shared.config.slowlog_threshold {
        let verb = if job.traced { "TRACE" } else { "QUERY" };
        if hrdm_obs::slowlog::record(
            verb,
            &job.script,
            wall.as_nanos() as u64,
            shared.engine.epoch(),
            trace.render(),
        ) {
            obs.slow_recorded.incr();
        }
    }
    match result {
        Ok(responses) => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            obs.query.incr();
            let mut parts: Vec<String> = responses.iter().map(ToString::to_string).collect();
            if job.traced {
                parts.push(trace.render());
            }
            Reply::Ok(parts)
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            obs.query_error.incr();
            Reply::Err {
                kind: e.kind().to_string(),
                message: e.to_string(),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------

/// Why a connection stops accepting input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    /// Serving normally.
    Open,
    /// No more input; close once every queued/in-flight reply flushes.
    Draining,
}

struct Conn {
    stream: TcpStream,
    generation: u64,
    reader: FrameReader,
    greeted: bool,
    /// Turned away with `BUSY` at admission: waits for the client's
    /// opening frame (so closing doesn't RST the reply away), answers
    /// `BUSY`, drains, closes. Not counted as active.
    rejecting: bool,
    /// Last *completed* activity: admission, a full frame, a reply.
    last_activity: Instant,
    /// Idle deadline for this connection (the server read timeout, or
    /// the short busy-drain window for rejected connections).
    deadline: Duration,
    /// Next sequence number a parsed request will get.
    next_seq: u64,
    /// Next sequence number the write path may flush.
    next_write_seq: u64,
    /// Completed reply frames waiting on in-order flush.
    ready: BTreeMap<u64, Vec<u8>>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// A worker job is outstanding for this connection.
    inflight: bool,
    /// Parsed requests not yet executed (pipelining backlog).
    queue: VecDeque<(u64, Request)>,
    /// Read-your-writes floor (engine epoch after this connection's
    /// last completed request).
    min_epoch: u64,
    lifecycle: Lifecycle,
    /// Trigger a server shutdown once this connection's replies flush
    /// (the `SHUTDOWN` verb).
    shutdown_after: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64, rejecting: bool, deadline: Duration) -> Conn {
        Conn {
            stream,
            generation,
            reader: FrameReader::new(),
            greeted: false,
            rejecting,
            last_activity: Instant::now(),
            deadline,
            next_seq: 0,
            next_write_seq: 0,
            ready: BTreeMap::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: false,
            queue: VecDeque::new(),
            min_epoch: 0,
            lifecycle: Lifecycle::Open,
            shutdown_after: false,
        }
    }

    fn accepts_input(&self) -> bool {
        self.lifecycle == Lifecycle::Open
    }

    /// Parsed-but-unanswered requests (the pipeline depth).
    fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.inflight)
    }

    fn wants_read(&self, max_pipeline: usize) -> bool {
        self.accepts_input() && self.backlog() < max_pipeline
    }

    fn has_pending_writes(&self) -> bool {
        self.write_pos < self.write_buf.len() || self.ready.contains_key(&self.next_write_seq)
    }

    /// Fully quiesced: nothing queued, nothing in flight, nothing to
    /// write.
    fn drained(&self) -> bool {
        !self.inflight && self.queue.is_empty() && !self.has_pending_writes()
    }

    /// The idle clock runs only when the connection is waiting on the
    /// *client* — a request in flight or a reply mid-write is server
    /// work, not idleness.
    fn timeout_applies(&self) -> bool {
        !self.inflight && self.queue.is_empty()
    }
}

// ---------------------------------------------------------------------
// The readiness loop
// ---------------------------------------------------------------------

/// What a pollfd entry refers to.
#[derive(Clone, Copy)]
enum Target {
    Wake,
    Listener,
    Conn(usize),
}

struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generation: u64,
    /// The tick-shared read snapshot (pinned lazily at first dispatch,
    /// cleared every tick).
    tick_view: Option<ReadView>,
    /// Connections whose slot must be closed at the end of the tick.
    doomed: Vec<usize>,
    shutdown_started: Option<Instant>,
}

/// Hard cap on how long a graceful shutdown waits for in-flight
/// requests and reply flushes before force-closing.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// How long a `BUSY`-rejected connection is given to present its
/// opening frame before the reply is sent regardless.
const BUSY_DRAIN: Duration = Duration::from_secs(1);

impl EventLoop {
    fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        jobs: mpsc::Sender<Job>,
        workers: Vec<JoinHandle<()>>,
    ) -> EventLoop {
        EventLoop {
            listener,
            shared,
            jobs: Some(jobs),
            workers,
            conns: Vec::new(),
            free: Vec::new(),
            generation: 0,
            tick_view: None,
            doomed: Vec::new(),
            shutdown_started: None,
        }
    }

    fn run(mut self) {
        let obs = server_obs();
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut targets: Vec<Target> = Vec::new();
        let mut read_chunk = vec![0u8; 64 * 1024];
        loop {
            pollfds.clear();
            targets.clear();
            {
                use std::os::unix::io::AsRawFd;
                pollfds.push(PollFd::new(self.shared.wake.poll_fd(), POLLIN));
                targets.push(Target::Wake);
                if self.shutdown_started.is_none() {
                    pollfds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                    targets.push(Target::Listener);
                }
                for (token, slot) in self.conns.iter().enumerate() {
                    let Some(conn) = slot else { continue };
                    let mut events = 0;
                    if conn.wants_read(self.shared.config.max_pipeline) {
                        events |= POLLIN;
                    }
                    if conn.has_pending_writes() {
                        events |= POLLOUT;
                    }
                    // Registered even with an empty interest set:
                    // poll(2) always reports errors and hangups.
                    pollfds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    targets.push(Target::Conn(token));
                }
            }
            let timeout_ms = self.poll_timeout_ms();
            let ready = sys::poll_fds(&mut pollfds, timeout_ms).unwrap_or_default();
            obs.loop_tick.incr();
            obs.loop_ready.observe(ready as u64);
            self.tick_view = None;

            // Readiness events first (their indexes match `targets`).
            for k in 0..pollfds.len() {
                if pollfds[k].revents == 0 {
                    continue;
                }
                match targets[k] {
                    Target::Wake => self.shared.wake.drain(),
                    Target::Listener => self.accept_ready(),
                    Target::Conn(token) => {
                        if pollfds[k].readable() {
                            self.conn_readable(token, &mut read_chunk);
                        }
                        if pollfds[k].writable() {
                            self.conn_writable(token);
                        }
                    }
                }
            }

            // Worker completions (wake-pipe driven, but drained every
            // tick regardless so a missed wake can't strand a reply).
            self.drain_completions();

            // Shutdown entry: stop accepting, stop reading, let
            // in-flight work and queued replies drain.
            if self.shared.shutdown.load(Ordering::SeqCst) && self.shutdown_started.is_none() {
                self.shutdown_started = Some(Instant::now());
                for token in 0..self.conns.len() {
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.lifecycle = Lifecycle::Draining;
                        conn.queue.clear();
                    }
                    self.try_finish_drain(token);
                }
            }

            self.expire_idle();
            self.reap_doomed();

            if let Some(started) = self.shutdown_started {
                let all_closed = self.conns.iter().all(Option::is_none);
                if all_closed || started.elapsed() >= SHUTDOWN_DRAIN {
                    break;
                }
            }
        }
        // Tear down: close every socket, stop the pool, join it.
        for slot in &mut self.conns {
            *slot = None;
        }
        self.shared.active.store(0, Ordering::SeqCst);
        server_obs().active.set(0);
        drop(self.jobs.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Poll timeout: the nearest idle deadline across connections
    /// (clamped to [1ms, 1s]), a short tick while draining for
    /// shutdown, or a 1s housekeeping tick when fully idle.
    fn poll_timeout_ms(&self) -> i32 {
        if self.shutdown_started.is_some() {
            return 10;
        }
        let now = Instant::now();
        let mut next: Option<Duration> = None;
        for conn in self.conns.iter().flatten() {
            if !conn.timeout_applies() {
                continue;
            }
            let deadline = conn.last_activity + conn.deadline;
            let left = deadline.saturating_duration_since(now);
            next = Some(match next {
                Some(cur) => cur.min(left),
                None => left,
            });
        }
        match next {
            Some(d) => (d.as_millis() as i64).clamp(1, 1000) as i32,
            None => 1000,
        }
    }

    // -- admission ----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            server_obs().accept.incr();
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Replies can be several frames batched into one buffer;
            // without TCP_NODELAY, Nagle holds small tails until the
            // client ACKs — tens of milliseconds per request.
            let _ = stream.set_nodelay(true);
            let rejecting =
                self.shared.active.load(Ordering::SeqCst) >= self.shared.config.max_connections;
            if rejecting {
                self.shared
                    .stats
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                server_obs().busy.incr();
            } else {
                let now_active = self.shared.active.fetch_add(1, Ordering::SeqCst) + 1;
                server_obs().active.set(now_active as u64);
            }
            self.generation += 1;
            let deadline = if rejecting {
                BUSY_DRAIN
            } else {
                self.shared.config.read_timeout
            };
            let conn = Conn::new(stream, self.generation, rejecting, deadline);
            match self.free.pop() {
                Some(token) => self.conns[token] = Some(conn),
                None => self.conns.push(Some(conn)),
            }
        }
    }

    // -- reads --------------------------------------------------------

    fn conn_readable(&mut self, token: usize, chunk: &mut [u8]) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let mut eof = false;
        // Bounded per tick so one firehose connection cannot starve
        // the rest of the loop.
        for _ in 0..4 {
            match conn.stream.read(chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.reader.push(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // RST or similar: the peer is gone, take the slot
                    // down without ceremony.
                    self.doom(token);
                    return;
                }
            }
        }
        self.process_input(token);
        if eof {
            if let Some(conn) = self.conns[token].as_mut() {
                if conn.drained() {
                    self.doom(token);
                } else {
                    // Half-close: finish in-flight work, flush, then
                    // close from the write path.
                    conn.lifecycle = Lifecycle::Draining;
                }
            }
            return;
        }
        self.pump(token);
    }

    /// Parse buffered bytes into requests (respecting the pipeline
    /// cap), start execution, and enqueue any immediate replies.
    fn process_input(&mut self, token: usize) {
        let obs = server_obs();
        loop {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            if !conn.accepts_input() || conn.backlog() >= self.shared.config.max_pipeline {
                break;
            }
            let frame = match conn.reader.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(e) => {
                    // Framing violation (oversized / non-UTF-8): tell
                    // the client why, then close. Queued-but-undispatched
                    // requests are discarded, so the reply takes over
                    // the first abandoned sequence slot — the write
                    // path flushes strictly in sequence order.
                    self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    obs.protocol_error.incr();
                    let seq = conn.queue.front().map_or(conn.next_seq, |(s, _)| *s);
                    conn.next_seq = seq + 1;
                    conn.lifecycle = Lifecycle::Draining;
                    conn.queue.clear();
                    self.complete_inline(
                        token,
                        seq,
                        &Reply::Err {
                            kind: "protocol".into(),
                            message: e.to_string(),
                        },
                    );
                    break;
                }
            };
            let wire_len = 4 + frame.len() as u64;
            self.shared
                .stats
                .bytes_in
                .fetch_add(wire_len, Ordering::Relaxed);
            obs.bytes_in.add(wire_len);
            obs.frame_bytes.observe(frame.len() as u64);
            let conn = self.conns[token].as_mut().expect("checked above");
            conn.last_activity = Instant::now();
            if conn.rejecting {
                // The client's opening frame has arrived; now a BUSY
                // reply cannot be lost to a racing RST.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.lifecycle = Lifecycle::Draining;
                self.complete_inline(
                    token,
                    seq,
                    &Reply::Busy("server at connection capacity; retry later".into()),
                );
                break;
            }
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match Request::parse(&frame) {
                Ok(request) => {
                    // The handshake check runs at parse time so a
                    // pipelined burst beginning with HELLO is valid
                    // even before the HELLO executes.
                    if matches!(request, Request::Hello) {
                        conn.greeted = true;
                    } else if !conn.greeted {
                        // HELLO must come first; anything else is a
                        // protocol error that closes the connection.
                        self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        self.shared
                            .stats
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        obs.protocol_error.incr();
                        conn.lifecycle = Lifecycle::Draining;
                        conn.queue.clear();
                        self.complete_inline(
                            token,
                            seq,
                            &Reply::Err {
                                kind: "protocol".into(),
                                message: "expected HELLO as the first request".into(),
                            },
                        );
                        break;
                    }
                    conn.queue.push_back((seq, request));
                }
                Err(msg) => {
                    // Unknown verb / malformed payload: answer in
                    // sequence and keep serving the connection.
                    self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    obs.protocol_error.incr();
                    self.complete_inline(
                        token,
                        seq,
                        &Reply::Err {
                            kind: "protocol".into(),
                            message: msg,
                        },
                    );
                }
            }
        }
        self.advance(token);
    }

    /// Execute from the head of the connection's request queue:
    /// lightweight verbs run inline on the loop thread, `QUERY`/`TRACE`
    /// dispatch to the worker pool (one in flight per connection, so
    /// pipelined requests execute — and answer — in order).
    fn advance(&mut self, token: usize) {
        let obs = server_obs();
        loop {
            let (seq, request) = {
                let Some(conn) = self.conns[token].as_mut() else {
                    return;
                };
                if conn.inflight {
                    return;
                }
                let Some(head) = conn.queue.pop_front() else {
                    return;
                };
                head
            };
            let started = Instant::now();
            match request {
                Request::Query(script) => {
                    self.dispatch(token, seq, script, false);
                    return;
                }
                Request::Trace(script) => {
                    self.dispatch(token, seq, script, true);
                    return;
                }
                Request::Hello => {
                    obs.requests.incr();
                    obs.lat_hello
                        .observe_ns(started.elapsed().as_nanos() as u64);
                    self.complete_inline(token, seq, &Reply::Ok(vec![PROTOCOL_VERSION.into()]));
                }
                Request::Stats => {
                    let reply = Reply::Ok(vec![render_stats(&self.shared)]);
                    obs.requests.incr();
                    obs.lat_stats
                        .observe_ns(started.elapsed().as_nanos() as u64);
                    self.complete_inline(token, seq, &reply);
                }
                Request::Metrics(format) => {
                    let reply = run_metrics(format);
                    obs.requests.incr();
                    obs.lat_metrics
                        .observe_ns(started.elapsed().as_nanos() as u64);
                    self.complete_inline(token, seq, &reply);
                }
                Request::Slowlog(limit) => {
                    let reply = run_slowlog(limit);
                    obs.requests.incr();
                    obs.lat_slowlog
                        .observe_ns(started.elapsed().as_nanos() as u64);
                    self.complete_inline(token, seq, &reply);
                }
                Request::Quit => {
                    obs.requests.incr();
                    obs.lat_quit.observe_ns(started.elapsed().as_nanos() as u64);
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.lifecycle = Lifecycle::Draining;
                        conn.queue.clear();
                    }
                    self.complete_inline(token, seq, &Reply::Ok(vec!["bye".into()]));
                }
                Request::Shutdown => {
                    obs.requests.incr();
                    obs.lat_shutdown
                        .observe_ns(started.elapsed().as_nanos() as u64);
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.lifecycle = Lifecycle::Draining;
                        conn.queue.clear();
                        conn.shutdown_after = true;
                    }
                    self.complete_inline(token, seq, &Reply::Ok(vec!["shutting down".into()]));
                    trigger_shutdown(&self.shared);
                }
            }
        }
    }

    /// Hand one script to the worker pool, pinning (at most) one
    /// snapshot per loop tick for the whole read batch.
    fn dispatch(&mut self, token: usize, seq: u64, script: String, traced: bool) {
        let obs = server_obs();
        let view = match self.tick_view.clone() {
            Some(v) => v,
            None => {
                let v = self.shared.engine.read_view();
                obs.snapshot_batch.incr();
                self.tick_view = Some(v.clone());
                v
            }
        };
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        conn.inflight = true;
        obs.pipeline_depth.observe(conn.backlog() as u64);
        let job = Job {
            conn: token,
            generation: conn.generation,
            seq,
            script,
            traced,
            view,
            min_epoch: conn.min_epoch,
        };
        if let Some(jobs) = &self.jobs {
            if jobs.send(job).is_err() {
                // Worker pool gone (shutdown race): the connection can
                // only drain now.
                if let Some(conn) = self.conns[token].as_mut() {
                    conn.inflight = false;
                    conn.lifecycle = Lifecycle::Draining;
                    conn.queue.clear();
                }
            }
        }
    }

    // -- completions and writes ---------------------------------------

    fn drain_completions(&mut self) {
        let completions: Vec<Completion> = match self.shared.completions.lock() {
            Ok(mut q) => std::mem::take(&mut *q),
            Err(_) => return,
        };
        for c in completions {
            let Some(conn) = self.conns.get_mut(c.conn).and_then(Option::as_mut) else {
                continue; // connection died while the job ran
            };
            if conn.generation != c.generation {
                continue; // slot was reused
            }
            conn.inflight = false;
            conn.last_activity = Instant::now();
            conn.min_epoch = conn.min_epoch.max(c.epoch);
            conn.ready.insert(c.seq, c.frame);
            // The pipeline may have buffered frames beyond the cap;
            // with a slot free, parse further and start the next
            // request before flushing.
            self.process_input(c.conn);
            self.pump(c.conn);
        }
    }

    /// Render, encode, and enqueue a loop-thread reply, then flush
    /// opportunistically.
    fn complete_inline(&mut self, token: usize, seq: u64, reply: &Reply) {
        let payload = reply.render();
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let mut frame = Vec::with_capacity(4 + payload.len());
        encode_frame(&payload, &mut frame);
        self.shared
            .stats
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        server_obs().bytes_out.add(frame.len() as u64);
        conn.ready.insert(seq, frame);
        conn.last_activity = Instant::now();
        self.pump(token);
    }

    fn conn_writable(&mut self, token: usize) {
        self.pump(token);
    }

    /// Move in-order completed replies into the write buffer and push
    /// bytes to the socket until it would block (or everything sent).
    fn pump(&mut self, token: usize) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        loop {
            while let Some(frame) = conn.ready.remove(&conn.next_write_seq) {
                conn.write_buf.extend_from_slice(&frame);
                conn.next_write_seq += 1;
            }
            if conn.write_pos == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                break;
            }
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    self.doom(token);
                    return;
                }
                Ok(n) => {
                    conn.write_pos += n;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.doom(token);
                    return;
                }
            }
        }
        self.try_finish_drain(token);
    }

    /// Close a draining connection whose work has fully flushed; kick
    /// the server shutdown if its `SHUTDOWN` reply just went out.
    fn try_finish_drain(&mut self, token: usize) {
        let Some(conn) = self.conns[token].as_ref() else {
            return;
        };
        if conn.lifecycle == Lifecycle::Draining && conn.drained() {
            if conn.shutdown_after {
                trigger_shutdown(&self.shared);
            }
            self.doom(token);
        }
    }

    // -- timeouts and teardown ----------------------------------------

    fn expire_idle(&mut self) {
        let obs = server_obs();
        let now = Instant::now();
        for token in 0..self.conns.len() {
            let Some(conn) = self.conns[token].as_mut() else {
                continue;
            };
            if !conn.timeout_applies() {
                continue;
            }
            if now.saturating_duration_since(conn.last_activity) < conn.deadline {
                continue;
            }
            if conn.rejecting {
                // The opening frame never (fully) arrived; send BUSY
                // anyway — matching the blocking server's behavior —
                // and close.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.lifecycle = Lifecycle::Draining;
                self.complete_inline(
                    token,
                    seq,
                    &Reply::Busy("server at connection capacity; retry later".into()),
                );
                // Best-effort: if the socket still isn't writable the
                // reply is lost, exactly like the old fire-and-forget.
                self.doom(token);
                continue;
            }
            if conn.lifecycle == Lifecycle::Draining {
                // A drain that cannot make progress (peer stopped
                // reading): give up.
                self.doom(token);
                continue;
            }
            self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            self.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            obs.timeout.incr();
            let timeout = conn.deadline;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.lifecycle = Lifecycle::Draining;
            conn.queue.clear();
            self.complete_inline(
                token,
                seq,
                &Reply::Err {
                    kind: "timeout".into(),
                    message: format!("no request within {timeout:?}; closing"),
                },
            );
            // If the reply flushed, the pump already closed the slot;
            // otherwise the drain deadline will reap it.
        }
    }

    fn doom(&mut self, token: usize) {
        if !self.doomed.contains(&token) {
            self.doomed.push(token);
        }
    }

    fn reap_doomed(&mut self) {
        while let Some(token) = self.doomed.pop() {
            let Some(conn) = self.conns[token].take() else {
                continue;
            };
            if !conn.rejecting {
                let left = self.shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                server_obs().active.set(left as u64);
            }
            self.free.push(token);
            // `conn.stream` drops here, closing the socket.
        }
    }
}

// ---------------------------------------------------------------------
// Inline verbs
// ---------------------------------------------------------------------

fn unsupported(verb: &str) -> Reply {
    Reply::Err {
        kind: "unsupported".into(),
        message: format!("{verb} requires a server built with the obs feature"),
    }
}

fn run_metrics(format: MetricsFormat) -> Reply {
    if !cfg!(feature = "obs") {
        return unsupported("METRICS");
    }
    let body = match format {
        MetricsFormat::Prometheus => metrics::render_prometheus(),
        MetricsFormat::Json => metrics::export_json("server"),
    };
    Reply::Ok(vec![body])
}

fn run_slowlog(limit: Option<u32>) -> Reply {
    if !cfg!(feature = "obs") {
        return unsupported("SLOWLOG");
    }
    let mut entries = hrdm_obs::slowlog::entries();
    if let Some(n) = limit {
        entries.truncate(n as usize);
    }
    let parts = entries
        .iter()
        .enumerate()
        .map(|(rank, e)| {
            format!(
                "#{} {} {} epoch={} seq={}\n{}\n{}",
                rank + 1,
                e.verb,
                fmt_ns(e.wall_ns),
                e.epoch,
                e.seq,
                e.preview,
                e.trace
            )
        })
        .collect();
    Reply::Ok(parts)
}

fn render_stats(shared: &Shared) -> String {
    format!(
        "epoch: {}\naccepted: {}\nactive: {}\nbusy-rejected: {}\nqueries: {}\nerrors: {}\n\
         timeouts: {}\nprotocol-errors: {}\nbytes-in: {}\nbytes-out: {}\n\
         slowlog-entries: {}\nslowlog-threshold-ms: {}\nworkers: {}\n\
         backpressure-depth: {}\nshed-writes: {}",
        shared.engine.epoch(),
        shared.stats.accepted.load(Ordering::Relaxed),
        shared.active.load(Ordering::SeqCst),
        shared.stats.busy_rejected.load(Ordering::Relaxed),
        shared.stats.queries.load(Ordering::Relaxed),
        shared.stats.errors.load(Ordering::Relaxed),
        shared.stats.timeouts.load(Ordering::Relaxed),
        shared.stats.protocol_errors.load(Ordering::Relaxed),
        shared.stats.bytes_in.load(Ordering::Relaxed),
        shared.stats.bytes_out.load(Ordering::Relaxed),
        hrdm_obs::slowlog::len(),
        shared.config.slowlog_threshold.as_millis(),
        shared.config.effective_workers(),
        shared.config.backpressure_depth,
        shared.stats.shed_writes.load(Ordering::Relaxed),
    )
}
