//! The concurrent TCP server over a shared [`Engine`].
//!
//! One thread accepts connections (bounded by
//! [`ServerConfig::max_connections`] — excess connections get a `BUSY`
//! reply instead of queueing unboundedly); each admitted connection
//! gets its own thread. Statement execution inherits the engine's
//! concurrency contract: read-only statements evaluate against an
//! epoch-stamped snapshot with no lock held, mutating statements
//! serialize through the engine's single writer and journal through
//! the WAL of the `OPEN`ed store. Every reply a client sees is
//! therefore byte-identical to executing the same statements against
//! some serial prefix of the write history.
//!
//! Shutdown is graceful: the flag flips, a self-connection wakes the
//! accept loop, and every connection thread is joined before
//! [`ServerHandle::wait`]/[`ServerHandle::shutdown`] return.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hrdm::prelude::Engine;

use crate::proto::{read_frame, write_frame, Reply, Request, PROTOCOL_VERSION};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Admission cap: connections past this count receive `BUSY`.
    pub max_connections: usize,
    /// Per-connection read timeout; an idle connection is sent
    /// `ERR timeout` and closed.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Per-server counters, readable at any time and rendered by `STATS`.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (admitted or not).
    pub accepted: AtomicU64,
    /// Connections turned away with `BUSY`.
    pub busy_rejected: AtomicU64,
    /// `QUERY`/`TRACE` requests executed successfully.
    pub queries: AtomicU64,
    /// Requests answered with an `ERR` reply.
    pub errors: AtomicU64,
}

struct Shared {
    engine: Engine,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: AtomicUsize,
    stats: ServerStats,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// The server factory; see [`Server::start`].
pub struct Server;

/// A running server: its bound address, counters, and shutdown control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, start the accept loop, and return immediately.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            stats: ServerStats::default(),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("hrdm-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Has a shutdown been requested (via [`ServerHandle::shutdown`] or
    /// the `SHUTDOWN` verb)?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful shutdown and wait for every thread to finish.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        self.join();
    }

    /// Block until the server shuts down (e.g. a client sends
    /// `SHUTDOWN`), then join every thread.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.conns.lock().expect("conns lock poisoned"));
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            trigger_shutdown(&self.shared);
        }
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop out of its blocking accept().
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        hrdm_obs::metrics::counter("server.accept").incr();
        // Admission control: reply BUSY instead of queueing unboundedly.
        // Drain the client's opening frame before replying so closing
        // the socket doesn't RST away the BUSY reply, and do it off the
        // accept thread so a silent client can't stall admission.
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.stats.busy_rejected.fetch_add(1, Ordering::Relaxed);
            hrdm_obs::metrics::counter("server.busy").incr();
            let reject = std::thread::Builder::new()
                .name("hrdm-busy".into())
                .spawn(move || {
                    let mut stream = stream;
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
                    let _ = read_frame(&mut stream);
                    let _ = write_frame(
                        &mut stream,
                        &Reply::Busy("server at connection capacity; retry later".into()).render(),
                    );
                });
            if let Ok(h) = reject {
                shared.conns.lock().expect("conns lock poisoned").push(h);
            }
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("hrdm-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(h) => shared.conns.lock().expect("conns lock poisoned").push(h),
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn reply_to(stream: &mut TcpStream, reply: &Reply) -> io::Result<()> {
    write_frame(stream, &reply.render())
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut greeted = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply_to(
                    &mut stream,
                    &Reply::Err {
                        kind: "timeout".into(),
                        message: format!(
                            "no request within {:?}; closing",
                            shared.config.read_timeout
                        ),
                    },
                );
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply_to(
                    &mut stream,
                    &Reply::Err {
                        kind: "protocol".into(),
                        message: e.to_string(),
                    },
                );
                break;
            }
            Err(_) => break,
        };
        let request = match Request::parse(&frame) {
            Ok(r) => r,
            Err(msg) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply_to(
                    &mut stream,
                    &Reply::Err {
                        kind: "protocol".into(),
                        message: msg,
                    },
                );
                continue;
            }
        };
        if !greeted {
            // HELLO must come first; anything else is a protocol error
            // that closes the connection.
            match request {
                Request::Hello => {
                    greeted = true;
                    let _ = reply_to(&mut stream, &Reply::Ok(vec![PROTOCOL_VERSION.into()]));
                    continue;
                }
                _ => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_to(
                        &mut stream,
                        &Reply::Err {
                            kind: "protocol".into(),
                            message: "expected HELLO as the first request".into(),
                        },
                    );
                    break;
                }
            }
        }
        match request {
            Request::Hello => {
                let _ = reply_to(&mut stream, &Reply::Ok(vec![PROTOCOL_VERSION.into()]));
            }
            Request::Query(script) => {
                let reply = run_query(&shared.engine, &shared.stats, &script);
                let _ = reply_to(&mut stream, &reply);
            }
            Request::Trace(script) => {
                let reply = run_trace(&shared.engine, &shared.stats, &script);
                let _ = reply_to(&mut stream, &reply);
            }
            Request::Stats => {
                let _ = reply_to(&mut stream, &Reply::Ok(vec![render_stats(shared)]));
            }
            Request::Quit => {
                let _ = reply_to(&mut stream, &Reply::Ok(vec!["bye".into()]));
                break;
            }
            Request::Shutdown => {
                let _ = reply_to(&mut stream, &Reply::Ok(vec!["shutting down".into()]));
                trigger_shutdown(shared);
                break;
            }
        }
        let _ = stream.flush();
    }
}

fn run_query(engine: &Engine, stats: &ServerStats, script: &str) -> Reply {
    let mut span = hrdm_obs::span!("server.query");
    span.field_u64("bytes", script.len() as u64);
    match engine.execute(script) {
        Ok(responses) => {
            stats.queries.fetch_add(1, Ordering::Relaxed);
            hrdm_obs::metrics::counter("server.query").incr();
            Reply::Ok(responses.iter().map(ToString::to_string).collect())
        }
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            hrdm_obs::metrics::counter("server.query_error").incr();
            Reply::Err {
                kind: e.kind().to_string(),
                message: e.to_string(),
            }
        }
    }
}

fn run_trace(engine: &Engine, stats: &ServerStats, script: &str) -> Reply {
    let (result, trace) = hrdm_obs::trace::capture("server.query", || engine.execute(script));
    match result {
        Ok(responses) => {
            stats.queries.fetch_add(1, Ordering::Relaxed);
            hrdm_obs::metrics::counter("server.query").incr();
            let mut parts: Vec<String> = responses.iter().map(ToString::to_string).collect();
            parts.push(trace.render());
            Reply::Ok(parts)
        }
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            hrdm_obs::metrics::counter("server.query_error").incr();
            Reply::Err {
                kind: e.kind().to_string(),
                message: e.to_string(),
            }
        }
    }
}

fn render_stats(shared: &Shared) -> String {
    format!(
        "epoch: {}\naccepted: {}\nactive: {}\nbusy-rejected: {}\nqueries: {}\nerrors: {}",
        shared.engine.epoch(),
        shared.stats.accepted.load(Ordering::Relaxed),
        shared.active.load(Ordering::SeqCst),
        shared.stats.busy_rejected.load(Ordering::Relaxed),
        shared.stats.queries.load(Ordering::Relaxed),
        shared.stats.errors.load(Ordering::Relaxed),
    )
}
