//! The `HRDM/1` wire protocol: framing, requests, replies, and a
//! blocking client.
//!
//! # Framing
//!
//! Every message — request or reply — is one **frame**: a big-endian
//! `u32` byte length followed by that many bytes of UTF-8 text. Frames
//! are capped at [`MAX_FRAME`] bytes; an oversized or non-UTF-8 frame
//! is a protocol error and closes the connection.
//!
//! # Requests
//!
//! The first line of a request frame is the verb; everything after the
//! first newline is the payload:
//!
//! | verb       | payload      | effect                                 |
//! |------------|--------------|----------------------------------------|
//! | `HELLO`    | —            | handshake; must be the first request   |
//! | `QUERY`    | HQL script   | execute; one response per statement    |
//! | `TRACE`    | HQL script   | execute under a trace; returns the span tree |
//! | `STATS`    | —            | server + engine counters               |
//! | `METRICS`  | `PROM`/`JSON` | the whole metrics registry (Prometheus text or JSON) |
//! | `SLOWLOG`  | optional `N` | the N slowest requests with their trace trees |
//! | `QUIT`     | —            | close this connection                  |
//! | `SHUTDOWN` | —            | stop the whole server gracefully       |
//!
//! `METRICS` and `SLOWLOG` require a server built with the `obs`
//! feature; without it they return a stable `ERR unsupported` reply.
//!
//! # Replies
//!
//! * `OK\n<body>` — success. For `QUERY`, the body is the rendered
//!   responses joined by [`RESPONSE_SEP`] (ASCII record separator), so
//!   multi-statement scripts round-trip losslessly.
//! * `ERR <kind>\n<message>` — failure; `<kind>` is the stable error
//!   code from [`hrdm::Error::kind`] (plus the transport-level codes
//!   `protocol` and `timeout`).
//! * `BUSY\n<message>` — the server is at its connection cap (sent
//!   instead of the `HELLO` greeting) **or** sheds a mutating script
//!   under write backpressure; retry later.
//!
//! # Pipelining
//!
//! `HRDM/1` is pipelined: a client may send any number of request
//! frames without waiting for replies. The server executes one
//! connection's requests **in order** and replies **in order**, so the
//! k-th reply always answers the k-th request. [`Client::pipeline`]
//! sends a burst of requests as one contiguous write and collects the
//! replies; [`Client::send`]/[`Client::recv`] expose the two halves for
//! arbitrary interleavings. [`FrameReader`] is the incremental decoder
//! both ends use to reassemble frames from arbitrarily-fragmented
//! reads.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use hrdm::hql::{ExecError, ExecResult, ExecutorHandle};

/// Protocol name + revision, echoed in the `HELLO` reply.
pub const PROTOCOL_VERSION: &str = "HRDM/1";

/// Maximum frame payload size (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Separator between per-statement responses in a `QUERY` reply body
/// (ASCII record separator — cannot appear in rendered responses).
pub const RESPONSE_SEP: &str = "\u{1e}";

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Append one length-prefixed frame to a byte buffer (the non-blocking
/// write path: the event loop and the pipelined client both build a
/// contiguous buffer of frames and hand it to the socket in one write).
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME`] — buffer-building call
/// sites render their own payloads, so an oversized frame is a logic
/// error, not an I/O condition.
pub fn encode_frame(payload: &str, out: &mut Vec<u8>) {
    let bytes = payload.as_bytes();
    assert!(bytes.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// An incremental frame decoder over an arbitrarily-chunked byte
/// stream.
///
/// Bytes arrive from a non-blocking socket in whatever fragments the
/// kernel delivers — a frame may span many reads, and one read may
/// carry many frames. `FrameReader` buffers pushed bytes and yields
/// complete frames as they materialize; the pipelining property suite
/// proves that any split of any frame sequence reassembles
/// byte-identically.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames (compacted
    /// lazily so a burst of small frames doesn't memmove per frame).
    consumed: usize,
}

impl FrameReader {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Feed bytes read off the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `consumed` is dead.
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed >= 4096 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means more bytes are needed. Errors are protocol
    /// violations (oversized frame, non-UTF-8 payload) and poison the
    /// stream — the caller must close the connection.
    pub fn next_frame(&mut self) -> io::Result<Option<String>> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
            ));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = std::str::from_utf8(&pending[4..4 + len])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?
            .to_string();
        self.consumed += 4 + len;
        Ok(Some(payload))
    }
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Payload variant of the `METRICS` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition (`# HELP`/`# TYPE` + samples).
    Prometheus,
    /// The `BENCH_obs.json` machine-readable registry dump.
    Json,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake; must be the connection's first request.
    Hello,
    /// Execute an HQL script.
    Query(String),
    /// Execute an HQL script under a query trace.
    Trace(String),
    /// Server and engine counters.
    Stats,
    /// The whole metrics registry in the requested export format.
    Metrics(MetricsFormat),
    /// The slowest requests seen so far (at most `N` when given), each
    /// with its rendered trace tree.
    Slowlog(Option<u32>),
    /// Close this connection.
    Quit,
    /// Stop the whole server gracefully.
    Shutdown,
}

impl Request {
    /// Parse a request frame (verb on the first line, payload after).
    pub fn parse(frame: &str) -> Result<Request, String> {
        let (verb, rest) = match frame.split_once('\n') {
            Some((v, r)) => (v, r),
            None => (frame, ""),
        };
        match verb.trim() {
            "HELLO" => Ok(Request::Hello),
            "QUERY" => Ok(Request::Query(rest.to_string())),
            "TRACE" => Ok(Request::Trace(rest.to_string())),
            "STATS" => Ok(Request::Stats),
            "METRICS" => match rest.trim() {
                "" | "PROM" => Ok(Request::Metrics(MetricsFormat::Prometheus)),
                "JSON" => Ok(Request::Metrics(MetricsFormat::Json)),
                other => Err(format!(
                    "unknown METRICS format {other:?} (expected PROM or JSON)"
                )),
            },
            "SLOWLOG" => match rest.trim() {
                "" => Ok(Request::Slowlog(None)),
                n => n
                    .parse::<u32>()
                    .map(|n| Request::Slowlog(Some(n)))
                    .map_err(|_| format!("SLOWLOG limit {n:?} is not an integer")),
            },
            "QUIT" => Ok(Request::Quit),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb {other:?}")),
        }
    }

    /// Render the request as a frame payload.
    pub fn render(&self) -> String {
        match self {
            Request::Hello => "HELLO".into(),
            Request::Query(script) => format!("QUERY\n{script}"),
            Request::Trace(script) => format!("TRACE\n{script}"),
            Request::Stats => "STATS".into(),
            Request::Metrics(MetricsFormat::Prometheus) => "METRICS\nPROM".into(),
            Request::Metrics(MetricsFormat::Json) => "METRICS\nJSON".into(),
            Request::Slowlog(None) => "SLOWLOG".into(),
            Request::Slowlog(Some(n)) => format!("SLOWLOG\n{n}"),
            Request::Quit => "QUIT".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }

    /// The wire verb, as a stable label (per-verb latency histograms
    /// and the slow-query log key on it).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Hello => "HELLO",
            Request::Query(_) => "QUERY",
            Request::Trace(_) => "TRACE",
            Request::Stats => "STATS",
            Request::Metrics(_) => "METRICS",
            Request::Slowlog(_) => "SLOWLOG",
            Request::Quit => "QUIT",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// A parsed reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success; for `QUERY`, one entry per executed statement.
    Ok(Vec<String>),
    /// Failure with a stable kind code and a rendered message.
    Err {
        /// Stable error-kind code ([`hrdm::Error::kind`] vocabulary,
        /// plus `protocol` and `timeout`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// The server is at its connection cap.
    Busy(String),
}

impl Reply {
    /// Parse a reply frame.
    pub fn parse(frame: &str) -> Result<Reply, String> {
        if let Some(body) = frame.strip_prefix("OK\n") {
            return Ok(Reply::Ok(
                body.split(RESPONSE_SEP).map(String::from).collect(),
            ));
        }
        if frame == "OK" {
            return Ok(Reply::Ok(vec![]));
        }
        if let Some(rest) = frame.strip_prefix("ERR ") {
            let (kind, message) = rest.split_once('\n').unwrap_or((rest, ""));
            return Ok(Reply::Err {
                kind: kind.to_string(),
                message: message.to_string(),
            });
        }
        if let Some(msg) = frame.strip_prefix("BUSY\n") {
            return Ok(Reply::Busy(msg.to_string()));
        }
        Err(format!("unparseable reply {frame:?}"))
    }

    /// Render the reply as a frame payload.
    pub fn render(&self) -> String {
        match self {
            Reply::Ok(parts) if parts.is_empty() => "OK".into(),
            Reply::Ok(parts) => format!("OK\n{}", parts.join(RESPONSE_SEP)),
            Reply::Err { kind, message } => format!("ERR {kind}\n{message}"),
            Reply::Busy(msg) => format!("BUSY\n{msg}"),
        }
    }

    /// Did the request succeed?
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok(_))
    }
}

/// A blocking client over one TCP connection.
///
/// The stream sits behind a mutex so a `Client` is also a
/// [`ExecutorHandle`]: the trait's `&self` methods serialize whole
/// round trips per lock hold (requests from different threads
/// interleave at reply boundaries, never mid-frame). The inherent
/// `&mut self` methods take the uncontended fast path through
/// [`Mutex::get_mut`].
///
/// ```no_run
/// use hrdm_server::proto::Client;
/// let mut client = Client::connect("127.0.0.1:7878").unwrap();
/// let reply = client.query("HOLDS Flies (Tweety);").unwrap();
/// assert!(reply.is_ok());
/// ```
#[derive(Debug)]
pub struct Client {
    stream: Mutex<TcpStream>,
}

impl Client {
    /// Connect and perform the `HELLO` handshake. Returns an error if
    /// the server replies `BUSY` or with an unexpected greeting.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let mut client = Client::connect_raw(addr)?;
        match client.request(&Request::Hello)? {
            Reply::Ok(parts) if parts.first().map(String::as_str) == Some(PROTOCOL_VERSION) => {
                Ok(client)
            }
            Reply::Busy(msg) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server busy: {msg}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected greeting: {other:?}"),
            )),
        }
    }

    /// Connect without the handshake (for protocol-level tests).
    pub fn connect_raw(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // A request is two small writes (length header, then payload);
        // without TCP_NODELAY, Nagle holds the second until the peer
        // ACKs the first, costing tens of milliseconds per round trip.
        stream.set_nodelay(true)?;
        Ok(Client {
            stream: Mutex::new(stream),
        })
    }

    /// Exclusive access to the stream without locking (the `&mut self`
    /// fast path).
    fn stream(&mut self) -> &mut TcpStream {
        self.stream.get_mut().expect("client stream poisoned")
    }

    /// Send one request frame and read one reply frame.
    pub fn request(&mut self, request: &Request) -> io::Result<Reply> {
        self.send_raw(&request.render())
    }

    /// Send one request frame **without** waiting for the reply — the
    /// pipelined half of the protocol. Pair with [`Client::recv`]; the
    /// server executes a connection's requests in order and replies in
    /// order, so the k-th `recv` answers the k-th `send`.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(self.stream(), &request.render())
    }

    /// Read the next reply frame (the receive half of a pipelined
    /// exchange).
    pub fn recv(&mut self) -> io::Result<Reply> {
        let frame = read_frame(self.stream())?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Reply::parse(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Issue `requests` pipelined: every frame is encoded into one
    /// contiguous buffer and written in a single call (one wire burst,
    /// no per-request round trip), then the replies are read back in
    /// request order. The reply at index `k` answers `requests[k]`.
    pub fn pipeline(&mut self, requests: &[Request]) -> io::Result<Vec<Reply>> {
        let mut burst = Vec::new();
        for request in requests {
            encode_frame(&request.render(), &mut burst);
        }
        let stream = self.stream();
        stream.write_all(&burst)?;
        stream.flush()?;
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            replies.push(self.recv()?);
        }
        Ok(replies)
    }

    /// Send an arbitrary frame payload and parse the reply (for
    /// protocol-error tests).
    pub fn send_raw(&mut self, payload: &str) -> io::Result<Reply> {
        let stream = self.stream();
        write_frame(stream, payload)?;
        let frame = read_frame(stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Reply::parse(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One whole round trip under the stream lock (the `&self` path the
    /// [`ExecutorHandle`] impl uses).
    fn roundtrip(&self, request: &Request) -> ExecResult<Reply> {
        let io_err = |e: io::Error| ExecError::new("io", e.to_string());
        let mut stream = self.stream.lock().expect("client stream poisoned");
        write_frame(&mut *stream, &request.render()).map_err(io_err)?;
        let frame = read_frame(&mut *stream)
            .map_err(io_err)?
            .ok_or_else(|| ExecError::new("io", "server closed the connection"))?;
        Reply::parse(&frame).map_err(|e| ExecError::new("protocol", e))
    }

    /// Map a reply to the handle-level result: `OK` bodies pass
    /// through, `ERR` keeps its stable kind, `BUSY` becomes kind
    /// `"busy"`.
    fn unwrap_reply(reply: Reply) -> ExecResult<Vec<String>> {
        match reply {
            Reply::Ok(parts) => Ok(parts),
            Reply::Err { kind, message } => Err(ExecError::new(kind, message)),
            Reply::Busy(message) => Err(ExecError::new("busy", message)),
        }
    }

    /// The server's current epoch, off the first `epoch: <n>` line of
    /// `STATS`.
    fn stats_epoch(&self) -> ExecResult<u64> {
        let stats = Client::unwrap_reply(self.roundtrip(&Request::Stats)?)?;
        stats
            .first()
            .and_then(|body| body.lines().next())
            .and_then(|line| line.strip_prefix("epoch: "))
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| ExecError::new("protocol", "STATS reply lacks an epoch line"))
    }

    /// Execute an HQL script; returns the reply.
    pub fn query(&mut self, script: &str) -> io::Result<Reply> {
        self.request(&Request::Query(script.to_string()))
    }

    /// Execute an HQL script under a query trace.
    pub fn trace(&mut self, script: &str) -> io::Result<Reply> {
        self.request(&Request::Trace(script.to_string()))
    }

    /// Fetch server and engine counters.
    pub fn stats(&mut self) -> io::Result<Reply> {
        self.request(&Request::Stats)
    }

    /// Fetch the whole metrics registry (`ERR unsupported` from a
    /// server built without the `obs` feature).
    pub fn metrics(&mut self, format: MetricsFormat) -> io::Result<Reply> {
        self.request(&Request::Metrics(format))
    }

    /// Fetch the slow-query log, optionally limited to the `limit`
    /// slowest entries (`ERR unsupported` without the `obs` feature).
    pub fn slowlog(&mut self, limit: Option<u32>) -> io::Result<Reply> {
        self.request(&Request::Slowlog(limit))
    }

    /// Close the connection politely.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request(&Request::Quit)?;
        Ok(())
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<Reply> {
        self.request(&Request::Shutdown)
    }
}

/// The remote end of the location-transparent surface: the same trait
/// the embedded engine implements, over one `HRDM/1` connection. The
/// server renders responses with the identical `Display` impls the
/// embedded path uses, so `execute` here is byte-equal to
/// `Engine::execute` against the same state — the parity run in the
/// server integration suite pins this.
impl ExecutorHandle for Client {
    fn execute(&self, script: &str) -> ExecResult<Vec<String>> {
        Client::unwrap_reply(self.roundtrip(&Request::Query(script.to_string()))?)
    }

    fn execute_read(&self, script: &str, min_epoch: u64) -> ExecResult<Vec<String>> {
        // The wire has no read-at-epoch verb; enforce the contract
        // client-side. Mutating scripts are refused before any bytes
        // move, and the epoch floor is awaited via STATS (the server
        // publishes each write's epoch before its reply is sent, so a
        // bounded wait only expires if the floor genuinely isn't
        // reachable yet).
        let statements = hrdm::hql::parser::parse(script)
            .map_err(|e| ExecError::new(e.kind(), e.to_string()))?;
        if !statements.iter().all(hrdm::hql::Statement::is_read_only) {
            return Err(ExecError::new(
                "unsupported",
                "script contains a mutating statement; route it through execute",
            ));
        }
        if min_epoch > 0 {
            let mut tries = 0u32;
            while self.stats_epoch()? < min_epoch {
                tries += 1;
                if tries >= 50 {
                    return Err(ExecError::new(
                        "stale",
                        format!("server has not reached the requested epoch floor {min_epoch}"),
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        Client::unwrap_reply(self.roundtrip(&Request::Query(script.to_string()))?)
    }

    fn last_epoch(&self) -> ExecResult<u64> {
        self.stats_epoch()
    }

    fn probe(&self) -> ExecResult<String> {
        let parts = Client::unwrap_reply(self.roundtrip(&Request::Stats)?)?;
        Ok(parts.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "HELLO").unwrap();
        write_frame(&mut buf, "QUERY\nSHOW Flies;").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("HELLO"));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("QUERY\nSHOW Flies;")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let big = "x".repeat(MAX_FRAME + 1);
        assert!(write_frame(&mut Vec::new(), &big).is_err());
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Hello,
            Request::Query("SHOW R;\nCHECK R;".into()),
            Request::Trace("TRACE UNION A B;".into()),
            Request::Stats,
            Request::Metrics(MetricsFormat::Prometheus),
            Request::Metrics(MetricsFormat::Json),
            Request::Slowlog(None),
            Request::Slowlog(Some(12)),
            Request::Quit,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
        assert!(Request::parse("EXPLODE").is_err());
        // Bare METRICS defaults to the Prometheus exposition.
        assert_eq!(
            Request::parse("METRICS").unwrap(),
            Request::Metrics(MetricsFormat::Prometheus)
        );
        assert!(Request::parse("METRICS\nXML").is_err());
        assert!(Request::parse("SLOWLOG\nfast").is_err());
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Ok(vec![]),
            Reply::Ok(vec!["domain D created".into(), "t | x".into()]),
            Reply::Err {
                kind: "parse".into(),
                message: "expected a verb".into(),
            },
            Reply::Busy("at capacity".into()),
        ] {
            assert_eq!(Reply::parse(&reply.render()).unwrap(), reply);
        }
        assert!(Reply::parse("???").is_err());
    }

    #[test]
    fn frame_reader_reassembles_byte_at_a_time() {
        let mut encoded = Vec::new();
        let payloads = ["HELLO", "QUERY\nSHOW Flies;", "", "über ☃"];
        for p in &payloads {
            encode_frame(p, &mut encoded);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for byte in &encoded {
            reader.push(std::slice::from_ref(byte));
            while let Some(frame) = reader.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn frame_reader_rejects_oversized_and_non_utf8_frames() {
        let mut reader = FrameReader::new();
        reader.push(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut reader = FrameReader::new();
        reader.push(&2u32.to_be_bytes());
        reader.push(&[0xff, 0xfe]);
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn multi_statement_bodies_split_on_the_separator() {
        let reply = Reply::Ok(vec!["a\nmultiline\nresponse".into(), "second".into()]);
        let parsed = Reply::parse(&reply.render()).unwrap();
        assert_eq!(parsed, reply, "newlines inside responses survive");
    }
}
