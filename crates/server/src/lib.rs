#![warn(missing_docs)]

//! `hrdm-server` — a concurrent TCP serving layer over the `hrdm`
//! engine.
//!
//! The server wraps one shared [`Engine`](hrdm::prelude::Engine):
//! read-only statements evaluate against epoch-stamped catalog
//! snapshots (arbitrarily many in parallel, no lock held), mutating
//! statements serialize through the engine's single writer and journal
//! through the write-ahead log of an `OPEN`ed store. Every client
//! therefore sees **snapshot-consistent** results: each reply is
//! byte-identical to executing the same statement against the state
//! after some serial prefix of the write history.
//!
//! * [`proto`] — the `HRDM/1` wire format (length-prefixed UTF-8
//!   frames, verbs, replies), an incremental [`proto::FrameReader`]
//!   for non-blocking reassembly, and a blocking [`Client`] with
//!   pipelining support ([`Client::pipeline`]).
//! * [`server`] — the event-driven server: one `poll(2)` readiness
//!   loop owning every socket in non-blocking mode, a worker pool
//!   executing requests against engine snapshots, per-connection
//!   request pipelining (in-order execution and replies), admission
//!   control (`BUSY` past the connection cap), write backpressure
//!   keyed off the engine's writer-queue depth, idle/slow-client
//!   timeouts, and graceful shutdown.
//! * [`sys`] — the thin `libc` shim behind the loop (`poll`, the
//!   self-wake pipe, fd-limit control); std-only, no external crates.
//!
//! Every request is telemetered end to end: per-verb latency
//! histograms, bytes-in/out and frame-size counters, and
//! admission/timeout/protocol-error counters land in the `hrdm-obs`
//! registry, readable over the wire via the `METRICS` verb (Prometheus
//! text or JSON) and summarized by `STATS`. Requests slower than
//! [`ServerConfig::slowlog_threshold`] are captured — with their
//! rendered `QueryTrace` trees — into a bounded slow-query log served
//! by the `SLOWLOG` verb. All of it compiles to no-ops (the two verbs
//! answer `ERR unsupported`) when the `obs` feature is off.
//!
//! The `hrdm-serve` binary wires both to a command line:
//!
//! ```text
//! hrdm-serve --addr 127.0.0.1:7878 --store ./data --max-conn 64
//! ```

pub mod proto;
pub mod server;
pub mod shard;
pub mod sys;

pub use proto::{Client, FrameReader, MetricsFormat, Reply, Request};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use shard::WireRouter;
