//! `hrdm-serve` — serve an hrdm engine over TCP.
//!
//! ```text
//! hrdm-serve [--addr HOST:PORT] [--store DIR] [--bootstrap FILE]
//!            [--max-conn N] [--timeout-ms N]
//!            [--slowlog-ms N] [--slowlog-cap N]
//!            [--workers N] [--backpressure-depth N]
//! ```
//!
//! * `--addr` — address to bind (default `127.0.0.1:7878`; port 0
//!   picks a free port, printed on stdout).
//! * `--store DIR` — `OPEN` a durable store before serving: recovery
//!   replays the WAL, and every mutating statement journals through it.
//! * `--bootstrap FILE` — execute an HQL script before serving (after
//!   `--store`, so the bootstrap is journaled).
//! * `--max-conn N` — admission cap; excess connections get `BUSY`.
//! * `--timeout-ms N` — per-connection read timeout.
//! * `--slowlog-ms N` — requests at least this slow are captured (with
//!   their trace trees) into the slow-query log served by `SLOWLOG`
//!   (default 100; `0` captures everything; obs builds only).
//! * `--slowlog-cap N` — keep the N slowest requests (default 32).
//! * `--workers N` — query-execution worker threads (default 0 =
//!   sized from the machine's available parallelism).
//! * `--backpressure-depth N` — shed mutating scripts with `BUSY`
//!   while the engine's writer queue is at least N deep (default 0 =
//!   disabled; reads are never shed).
//!
//! The process runs until a client sends the `SHUTDOWN` verb (or the
//! process receives a fatal signal); shutdown is graceful — in-flight
//! requests finish and every connection thread is joined.

use std::process::ExitCode;
use std::time::Duration;

use hrdm::prelude::Engine;
use hrdm_server::{Server, ServerConfig};

struct Args {
    addr: String,
    store: Option<String>,
    bootstrap: Option<String>,
    max_conn: usize,
    timeout_ms: u64,
    slowlog_ms: u64,
    slowlog_cap: usize,
    workers: usize,
    backpressure_depth: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        store: None,
        bootstrap: None,
        max_conn: 64,
        timeout_ms: 30_000,
        slowlog_ms: 100,
        slowlog_cap: 32,
        workers: 0,
        backpressure_depth: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--store" => args.store = Some(value("--store")?),
            "--bootstrap" => args.bootstrap = Some(value("--bootstrap")?),
            "--max-conn" => {
                args.max_conn = value("--max-conn")?
                    .parse()
                    .map_err(|e| format!("--max-conn: {e}"))?
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--slowlog-ms" => {
                args.slowlog_ms = value("--slowlog-ms")?
                    .parse()
                    .map_err(|e| format!("--slowlog-ms: {e}"))?
            }
            "--slowlog-cap" => {
                args.slowlog_cap = value("--slowlog-cap")?
                    .parse()
                    .map_err(|e| format!("--slowlog-cap: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--backpressure-depth" => {
                args.backpressure_depth = value("--backpressure-depth")?
                    .parse()
                    .map_err(|e| format!("--backpressure-depth: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: hrdm-serve [--addr HOST:PORT] [--store DIR] \
                     [--bootstrap FILE] [--max-conn N] [--timeout-ms N] \
                     [--slowlog-ms N] [--slowlog-cap N] [--workers N] \
                     [--backpressure-depth N]"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let engine = Engine::new();
    if let Some(dir) = &args.store {
        match engine.execute(&format!("OPEN \"{dir}\";")) {
            Ok(responses) => {
                for r in responses {
                    println!("{r}");
                }
            }
            Err(e) => {
                eprintln!("cannot open store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.bootstrap {
        let script = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read bootstrap {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = engine.execute(&script) {
            eprintln!("bootstrap failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("bootstrap {path} executed (epoch {})", engine.epoch());
    }
    let config = ServerConfig {
        addr: args.addr,
        max_connections: args.max_conn,
        read_timeout: Duration::from_millis(args.timeout_ms),
        slowlog_threshold: Duration::from_millis(args.slowlog_ms),
        slowlog_capacity: args.slowlog_cap.max(1),
        workers: args.workers,
        backpressure_depth: args.backpressure_depth,
        ..ServerConfig::default()
    };
    let handle = match Server::start(engine, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    handle.wait();
    println!("shut down cleanly");
    ExitCode::SUCCESS
}
