//! A thin `libc` shim for the readiness loop: `poll(2)`, a self-wake
//! pipe, and file-descriptor limit control.
//!
//! The workspace builds offline with no external crates, so — in the
//! same spirit as the `shims/` offline stand-ins for rand/proptest —
//! the event loop binds the four C entry points it needs directly.
//! `std` already links the platform libc on every unix target, so
//! these `extern "C"` declarations add no dependency; they only name
//! symbols that are already in the process.
//!
//! Everything here is unix-only (`poll`, `pipe`, `fcntl` are POSIX);
//! the serving crate targets the same platforms the CI matrix runs.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::RawFd;

/// Readable-data readiness (POSIX `POLLIN`).
pub const POLLIN: c_short = 0x001;
/// Writable-without-blocking readiness (POSIX `POLLOUT`).
pub const POLLOUT: c_short = 0x004;
/// Error condition (output only; POSIX `POLLERR`).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (output only; POSIX `POLLHUP`).
pub const POLLHUP: c_short = 0x010;
/// Invalid fd (output only; POSIX `POLLNVAL`).
pub const POLLNVAL: c_short = 0x020;

/// One `poll(2)` registration: fd, interest set, readiness set.
///
/// Layout-identical to the C `struct pollfd` on every POSIX platform.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel — handy for masking slots without reshuffling).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: c_short,
    /// Returned events (kernel-filled; includes [`POLLERR`],
    /// [`POLLHUP`], [`POLLNVAL`] regardless of the request).
    pub revents: c_short,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: c_short) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report readable data (or a hangup/error, which a
    /// read must observe to learn the cause)?
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Did the kernel report writability (or an error a write must
    /// observe)?
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

#[repr(C)]
struct RLimit {
    rlim_cur: c_ulong,
    rlim_max: c_ulong,
}

const RLIMIT_NOFILE: c_int = 7;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Block until at least one registered fd is ready, `timeout_ms`
/// elapses (`-1` = forever), or a signal lands. Returns the number of
/// entries with nonzero `revents`; `Interrupted` errors are retried
/// internally so callers never see `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A self-wake pipe: any thread calls [`WakePipe::wake`], the readiness
/// loop polls the read end and [`WakePipe::drain`]s it. Both ends are
/// closed on drop.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// The fds are plain integers; wake()/drain() are single syscalls that
// the kernel serializes.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Create the pipe; both ends are set non-blocking so a full pipe
    /// can never stall a waker and a drain can never stall the loop.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd the readiness loop registers for [`POLLIN`].
    pub fn poll_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Nudge the loop awake. Lossy by design: if the pipe is already
    /// full the loop is provably waking anyway.
    pub fn wake(&self) {
        let byte = [1u8];
        unsafe {
            let _ = write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Swallow all pending wake bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Raise the soft open-file limit toward `want` (clamped to the hard
/// limit) and return the resulting soft limit. High-connection-count
/// tests call this so thousands of idle sockets don't trip the
/// platform's default 1024-fd ceiling; failures are reported as the
/// unchanged current limit, never an error.
// rlim_t is c_ulong, which is already u64 on 64-bit linux but not on
// every target the shim could meet — keep the widening casts.
#[allow(clippy::unnecessary_cast)]
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if (lim.rlim_cur as u64) >= want {
        return lim.rlim_cur as u64;
    }
    let target = (want as c_ulong).min(lim.rlim_max);
    let new = RLimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        target as u64
    } else {
        lim.rlim_cur as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_round_trips_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        // Nothing pending: poll times out with zero ready entries.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        pipe.wake();
        pipe.wake();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        pipe.drain();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn nofile_limit_reports_a_positive_ceiling() {
        assert!(raise_nofile_limit(64) >= 64);
    }
}
