//! Location transparency over a real socket: the same program runs
//! unchanged against an embedded [`Engine`], a [`Client`] speaking
//! `HRDM/1` to a server, and a [`WireRouter`] fronting N shard servers
//! — all through [`ExecutorHandle`] — and every rendered byte agrees.

use std::time::Duration;

use hrdm::hql::{ExecutorHandle, ShardedEngine};
use hrdm::prelude::Engine;
use hrdm_server::{Client, Server, ServerConfig, ServerHandle, WireRouter};

fn start() -> ServerHandle {
    Server::start(
        Engine::new(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind 127.0.0.1:0")
}

const BOOTSTRAP: &str = "
    CREATE DOMAIN Animal;
    CREATE CLASS Bird UNDER Animal;
    CREATE CLASS Penguin UNDER Bird;
    CREATE INSTANCE Tweety OF Bird;
    CREATE INSTANCE Paul OF Penguin;
    CREATE DOMAIN Color;
    CREATE CLASS Dark UNDER Color;
    CREATE INSTANCE Black OF Dark;
    CREATE RELATION Flies (Creature: Animal);
    ASSERT Flies (ALL Bird);
    ASSERT NOT Flies (ALL Penguin);
    CREATE RELATION Colors (Creature: Animal, Hue: Color);
    ASSERT Colors (ALL Penguin, Black);
";

const READS: &str = "
    HOLDS Flies (Tweety);
    HOLDS Flies (Paul);
    SHOW Flies;
    COUNT Flies;
    CHECK Flies;
    WHY Flies (Paul);
    SHOW Colors;
    COUNT Colors BY Creature;
    SHOW DOMAIN Animal;
";

/// Drive one backend through the trait alone and return every rendered
/// response, writes then reads.
fn drive(handle: &dyn ExecutorHandle) -> Vec<String> {
    let mut out = handle.execute(BOOTSTRAP).unwrap();
    let epoch = handle.last_epoch().unwrap();
    out.extend(handle.execute_read(READS, epoch).unwrap());
    // Every backend leads its probe with the epoch line.
    let probe = handle.probe().unwrap();
    assert!(probe.starts_with("epoch: "), "{probe:?}");
    out
}

#[test]
fn every_backend_renders_byte_identically_through_the_trait() {
    let embedded = Engine::new();

    let server = start();
    let wire = Client::connect(server.addr()).unwrap();

    let sharded = ShardedEngine::new(4);

    let shard_servers: Vec<ServerHandle> = (0..3).map(|_| start()).collect();
    let router = WireRouter::over(
        shard_servers
            .iter()
            .map(|s| Client::connect(s.addr()).unwrap())
            .collect(),
    );

    let reference = drive(&embedded);
    assert_eq!(reference, drive(&wire), "wire client diverged");
    assert_eq!(
        reference,
        drive(&sharded),
        "in-process coordinator diverged"
    );
    assert_eq!(reference, drive(&router), "wire router diverged");

    server.shutdown();
    for s in shard_servers {
        s.shutdown();
    }
}

#[test]
fn wire_client_enforces_the_read_contract() {
    let server = start();
    let client = Client::connect(server.addr()).unwrap();
    client.execute("CREATE DOMAIN D;").unwrap();

    // A mutating statement through the read path is refused before it
    // ever reaches the socket.
    let e = client.execute_read("CREATE DOMAIN E;", 0).unwrap_err();
    assert_eq!(e.kind(), "unsupported");
    // An unreachable epoch floor reports stale rather than hanging.
    let e = client.execute_read("SHOW DOMAIN D;", u64::MAX).unwrap_err();
    assert_eq!(e.kind(), "stale");
    // Server-side error kinds pass through unchanged.
    let e = client.execute("SHOW Nothing;").unwrap_err();
    assert_eq!(e.kind(), "unknown");
    // A satisfied floor serves the read.
    let epoch = client.last_epoch().unwrap();
    client.execute_read("SHOW DOMAIN D;", epoch).unwrap();

    server.shutdown();
}

#[test]
fn wire_router_guards_mirror_the_in_process_coordinator() {
    let shard_servers: Vec<ServerHandle> = (0..4).map(|_| start()).collect();
    let router = WireRouter::over(
        shard_servers
            .iter()
            .map(|s| Client::connect(s.addr()).unwrap())
            .collect(),
    );
    router.execute(BOOTSTRAP).unwrap();

    // DROP DOMAIN is guarded by the router's placement records.
    let e = router.execute("DROP DOMAIN Color;").unwrap_err();
    assert_eq!(e.kind(), "in-use");
    router.execute("DROP RELATION Colors;").unwrap();
    router.execute("DROP DOMAIN Color;").unwrap();

    // Cross-shard renames need the in-process coordinator.
    let to = (0..)
        .map(|i| format!("Migrated{i}"))
        .find(|c| hrdm::hql::default_shard(c, 4) != hrdm::hql::default_shard("Flies", 4))
        .unwrap();
    let e = router
        .execute(&format!("RENAME RELATION Flies TO {to};"))
        .unwrap_err();
    assert_eq!(e.kind(), "unsupported");

    // Same-shard renames route through and update placement.
    let same = (0..)
        .map(|i| format!("Renamed{i}"))
        .find(|c| hrdm::hql::default_shard(c, 4) == hrdm::hql::default_shard("Flies", 4))
        .unwrap();
    router
        .execute(&format!("RENAME RELATION Flies TO {same};"))
        .unwrap();
    assert_eq!(router.owner_of(&same), hrdm::hql::default_shard("Flies", 4));
    let out = router
        .execute_read(&format!("HOLDS {same} (Tweety);"), 0)
        .unwrap();
    assert!(out[0].ends_with("true"), "{:?}", out[0]);

    for s in shard_servers {
        s.shutdown();
    }
}
