//! Integration tests over a real socket: handshake, query round-trips
//! (byte-identical to an embedded session), stable error kinds on the
//! wire, admission control (`BUSY`), read timeouts, protocol errors,
//! `STATS`, and graceful shutdown.

use std::net::TcpStream;
use std::time::Duration;

use hrdm::prelude::{Engine, Session};
use hrdm_server::proto::{read_frame, write_frame, PROTOCOL_VERSION};
use hrdm_server::{Client, Reply, Request, Server, ServerConfig, ServerHandle};

fn start_with(config: ServerConfig) -> ServerHandle {
    Server::start(Engine::new(), config).expect("bind 127.0.0.1:0")
}

fn start(max_connections: usize, read_timeout: Duration) -> ServerHandle {
    start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections,
        read_timeout,
        ..ServerConfig::default()
    })
}

#[test]
fn queries_over_the_wire_are_byte_identical_to_an_embedded_session() {
    let handle = start(8, Duration::from_secs(5));
    let script = "CREATE DOMAIN Animal; \
                  CREATE CLASS Bird UNDER Animal; \
                  CREATE INSTANCE Tweety OF Bird; \
                  CREATE RELATION Flies (Creature: Animal); \
                  ASSERT Flies (ALL Bird); \
                  HOLDS Flies (Tweety); \
                  SHOW Flies; \
                  COUNT Flies;";
    let mut session = Session::new();
    let expected: Vec<String> = session
        .execute(script)
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(script).unwrap();
    assert_eq!(
        reply,
        Reply::Ok(expected),
        "wire == embedded, byte for byte"
    );

    // A second statement batch sees the first batch's state.
    let reply = client.query("HOLDS Flies (Tweety);").unwrap();
    let expected: Vec<String> = session
        .execute("HOLDS Flies (Tweety);")
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(reply, Reply::Ok(expected));
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn error_kinds_travel_verbatim_on_the_wire() {
    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect(handle.addr()).unwrap();
    for (script, kind) in [
        ("HOLDS", "parse"),
        ("SHOW Nope;", "unknown"),
        ("CHECKPOINT;", "execution"),
        ("LOAD \"/no/such/file.hrdm\";", "io"),
    ] {
        match client.query(script).unwrap() {
            Reply::Err { kind: k, .. } => assert_eq!(k, kind, "kind for {script:?}"),
            other => panic!("expected ERR {kind} for {script:?}, got {other:?}"),
        }
    }
    // Atomicity is per statement: the failing statement publishes
    // nothing, but the statements before it in the batch do.
    let reply = client.query("CREATE DOMAIN D; SHOW Nope;").unwrap();
    assert!(!reply.is_ok());
    match client.query("CREATE DOMAIN D;").unwrap() {
        Reply::Err { kind, .. } => assert_eq!(kind, "duplicate", "prefix was published"),
        other => panic!("D must already exist from the batch prefix: {other:?}"),
    }
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn trace_replies_carry_the_span_tree() {
    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .query("CREATE DOMAIN D; CREATE RELATION R (A: D);")
        .unwrap();
    match client.trace("CHECK R;").unwrap() {
        Reply::Ok(parts) => {
            assert!(parts.len() >= 2, "response parts plus the trace");
            if cfg!(feature = "obs") {
                assert!(
                    parts.last().unwrap().contains("server.query"),
                    "trace names the root span: {:?}",
                    parts.last().unwrap()
                );
            } else {
                // Without obs the capture is inert: the trace part is
                // present (the verb's contract) but carries no spans.
                assert!(
                    parts.last().unwrap().contains("(empty trace)"),
                    "{:?}",
                    parts.last().unwrap()
                );
            }
        }
        other => panic!("expected OK, got {other:?}"),
    }
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn stats_report_epoch_and_counters() {
    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect(handle.addr()).unwrap();
    client.query("CREATE DOMAIN D;").unwrap();
    match client.stats().unwrap() {
        Reply::Ok(parts) => {
            let body = parts.join("\n");
            assert!(body.contains("epoch: 1"), "one write published: {body}");
            assert!(body.contains("queries: 1"), "{body}");
            assert!(body.contains("active: 1"), "{body}");
            // The enriched telemetry lines are always present, even in
            // obs-off builds (they come from per-server atomics).
            for line in [
                "timeouts: ",
                "protocol-errors: ",
                "bytes-in: ",
                "bytes-out: ",
                "slowlog-entries: ",
                "slowlog-threshold-ms: ",
            ] {
                assert!(body.contains(line), "missing {line:?} in {body}");
            }
            // Both directions of the wire have moved bytes by now.
            let field = |name: &str| -> u64 {
                body.lines()
                    .find_map(|l| l.strip_prefix(name))
                    .unwrap_or_else(|| panic!("no {name:?} line in {body}"))
                    .trim()
                    .parse()
                    .expect("numeric stats field")
            };
            assert!(field("bytes-in:") > 0, "{body}");
            assert!(field("bytes-out:") > 0, "{body}");
        }
        other => panic!("expected OK, got {other:?}"),
    }
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn connections_past_the_cap_get_busy() {
    let handle = start(1, Duration::from_secs(5));
    let first = Client::connect(handle.addr()).unwrap();
    // The admitted connection holds the only slot, so the next
    // connection is turned away with BUSY at the handshake.
    let err = Client::connect(handle.addr()).expect_err("second client must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert!(err.to_string().contains("busy"), "{err}");
    assert_eq!(
        handle
            .stats()
            .busy_rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // Once the slot frees, new connections are admitted again.
    first.quit().unwrap();
    let mut admitted = None;
    for _ in 0..100 {
        match Client::connect(handle.addr()) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let client = admitted.expect("slot frees after QUIT");
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn idle_connections_time_out_with_a_stable_kind() {
    let handle = start(8, Duration::from_millis(200));
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut stream, &Request::Hello.render()).unwrap();
    let greeting = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(
        Reply::parse(&greeting).unwrap(),
        Reply::Ok(vec![PROTOCOL_VERSION.into()])
    );
    // Say nothing; the server must give up and tell us why.
    std::thread::sleep(Duration::from_millis(600));
    let frame = read_frame(&mut stream).unwrap().expect("timeout reply");
    match Reply::parse(&frame).unwrap() {
        Reply::Err { kind, .. } => assert_eq!(kind, "timeout"),
        other => panic!("expected ERR timeout, got {other:?}"),
    }
    assert_eq!(
        read_frame(&mut stream).unwrap(),
        None,
        "then the connection closes"
    );
    assert_eq!(
        handle
            .stats()
            .timeouts
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the timeout is counted"
    );
    handle.shutdown();
}

#[test]
fn requests_before_hello_are_protocol_errors_that_close_the_connection() {
    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect_raw(handle.addr()).unwrap();
    match client.send_raw("QUERY\nSHOW Flies;").unwrap() {
        Reply::Err { kind, message } => {
            assert_eq!(kind, "protocol");
            assert!(message.contains("HELLO"), "{message}");
        }
        other => panic!("expected ERR protocol, got {other:?}"),
    }
    let err = client.send_raw("HELLO").expect_err("connection is closed");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
        ),
        "{err}"
    );
    handle.shutdown();
}

#[test]
fn unknown_verbs_are_protocol_errors_but_keep_the_connection() {
    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.send_raw("EXPLODE\nnow").unwrap() {
        Reply::Err { kind, .. } => assert_eq!(kind, "protocol"),
        other => panic!("expected ERR protocol, got {other:?}"),
    }
    // Still greeted, still serving.
    assert!(client.query("CREATE DOMAIN D;").unwrap().is_ok());
    assert!(
        handle
            .stats()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the protocol error is counted"
    );
    client.quit().unwrap();
    handle.shutdown();
}

/// Pull one counter's value out of the `METRICS JSON` body without a
/// JSON parser: the exporter's layout is stable
/// (`"name":{"type":"counter","value":N}`).
#[cfg(feature = "obs")]
fn json_counter(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":{{\"type\":\"counter\",\"value\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no counter {name:?} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// The acceptance criterion for the serving tier: `METRICS` output
/// reflects the requests actually served — counters visibly increase
/// across a scripted session. The registry is process-global and other
/// tests run in parallel, so assertions are monotone (`after >= before
/// + n`), never exact.
#[cfg(feature = "obs")]
#[test]
fn metrics_over_the_wire_reflect_requests_actually_served() {
    use hrdm_server::MetricsFormat;

    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect(handle.addr()).unwrap();
    let before = match client.metrics(MetricsFormat::Json).unwrap() {
        Reply::Ok(parts) => parts.join(""),
        other => panic!("expected OK, got {other:?}"),
    };
    assert!(before.contains("\"label\":\"server\""), "{before}");
    assert!(client.query("CREATE DOMAIN MetricsD;").unwrap().is_ok());
    assert!(client
        .query("CREATE CLASS MetricsC UNDER MetricsD;")
        .unwrap()
        .is_ok());
    client.stats().unwrap();
    let after = match client.metrics(MetricsFormat::Json).unwrap() {
        Reply::Ok(parts) => parts.join(""),
        other => panic!("expected OK, got {other:?}"),
    };
    // Between the two scrapes this session issued 2 QUERYs, a STATS,
    // and the second METRICS itself: at least 4 more requests, at
    // least 2 more queries.
    assert!(
        json_counter(&after, "server.requests") >= json_counter(&before, "server.requests") + 4,
        "requests must advance: {before} -> {after}"
    );
    assert!(
        json_counter(&after, "server.query") >= json_counter(&before, "server.query") + 2,
        "queries must advance: {before} -> {after}"
    );
    assert!(
        json_counter(&after, "server.bytes_in") > json_counter(&before, "server.bytes_in"),
        "bytes flowed in"
    );

    // The Prometheus variant of the same registry, with exposition
    // metadata for every series.
    let prom = match client.metrics(MetricsFormat::Prometheus).unwrap() {
        Reply::Ok(parts) => parts.join(""),
        other => panic!("expected OK, got {other:?}"),
    };
    assert!(
        prom.contains("# TYPE hrdm_server_requests counter"),
        "{prom}"
    );
    assert!(prom.contains("# HELP hrdm_server_requests "), "{prom}");
    assert!(
        prom.contains("# TYPE hrdm_server_latency_query summary"),
        "per-verb latency series present: {prom}"
    );
    client.quit().unwrap();
    handle.shutdown();
}

#[cfg(feature = "obs")]
#[test]
fn slowlog_captures_slow_requests_with_their_trace_trees() {
    let handle = start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        // Threshold zero: every request qualifies as slow.
        slowlog_threshold: Duration::ZERO,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    // A distinctive marker so this test finds its own entry even while
    // parallel tests share the process-global log.
    let marker = "SlowlogMarkerDomain";
    client.query(&format!("CREATE DOMAIN {marker};")).unwrap();
    let parts = match client.slowlog(None).unwrap() {
        Reply::Ok(parts) => parts,
        other => panic!("expected OK, got {other:?}"),
    };
    let mine = parts
        .iter()
        .find(|p| p.contains(marker))
        .unwrap_or_else(|| panic!("no slowlog entry mentions {marker}: {parts:?}"));
    assert!(mine.contains("QUERY"), "verb recorded: {mine}");
    assert!(mine.contains("epoch="), "epoch recorded: {mine}");
    assert!(
        mine.contains("server.query"),
        "the rendered trace tree rides along: {mine}"
    );
    // A limit of zero is honoured.
    assert_eq!(client.slowlog(Some(0)).unwrap(), Reply::Ok(vec![]));
    client.quit().unwrap();
    handle.shutdown();
}

/// Without the obs feature the new verbs answer a stable
/// `ERR unsupported` — and the connection keeps serving queries.
#[cfg(not(feature = "obs"))]
#[test]
fn metrics_and_slowlog_are_cleanly_unsupported_without_obs() {
    use hrdm_server::MetricsFormat;

    let handle = start(8, Duration::from_secs(5));
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.metrics(MetricsFormat::Prometheus).unwrap() {
        Reply::Err { kind, message } => {
            assert_eq!(kind, "unsupported");
            assert!(message.contains("obs"), "{message}");
        }
        other => panic!("expected ERR unsupported, got {other:?}"),
    }
    match client.slowlog(None).unwrap() {
        Reply::Err { kind, .. } => assert_eq!(kind, "unsupported"),
        other => panic!("expected ERR unsupported, got {other:?}"),
    }
    assert!(
        client.query("CREATE DOMAIN D;").unwrap().is_ok(),
        "the connection keeps serving"
    );
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn the_shutdown_verb_unblocks_wait() {
    let handle = start(8, Duration::from_secs(5));
    let addr = handle.addr();
    let waiter = std::thread::spawn(move || handle.wait());
    let mut client = Client::connect(addr).unwrap();
    match client.shutdown_server().unwrap() {
        Reply::Ok(parts) => assert_eq!(parts, vec!["shutting down".to_string()]),
        other => panic!("expected OK, got {other:?}"),
    }
    drop(client);
    waiter.join().expect("wait() returns after SHUTDOWN");
}
