//! Property tests for the `HRDM/1` wire protocol: every renderable
//! request and reply — including the `METRICS`/`SLOWLOG` telemetry
//! verbs — must survive render → parse unchanged, frames must survive
//! write → read byte-for-byte, and *pipelined* frame sequences must
//! reassemble through the incremental [`FrameReader`] no matter how
//! the byte stream is split (partial headers, partial payloads, many
//! frames in one chunk).

use proptest::prelude::*;

use hrdm_server::proto::{encode_frame, read_frame, write_frame};
use hrdm_server::{FrameReader, MetricsFormat, Reply, Request};

/// HQL-ish script bodies, plus hostile shapes: empty, blank lines,
/// embedded newlines, leading whitespace, unicode.
fn arb_script() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_ ;(),:.]{0,60}",
        "[a-zA-Z ;]{0,20}\n[a-zA-Z ;]{0,20}\n\n[a-zA-Z ;]{0,20}",
        Just(String::new()),
        Just("\n".to_string()),
        Just("  SHOW Flies;  ".to_string()),
        Just("ASSERT Vole (\"Amazing Flying Penguin\");".to_string()),
        Just("über — ünïcode ☃".to_string()),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Hello),
        arb_script().prop_map(Request::Query),
        arb_script().prop_map(Request::Trace),
        Just(Request::Stats),
        Just(Request::Metrics(MetricsFormat::Prometheus)),
        Just(Request::Metrics(MetricsFormat::Json)),
        Just(Request::Slowlog(None)),
        any::<u32>().prop_map(|n| Request::Slowlog(Some(n))),
        Just(Request::Quit),
        Just(Request::Shutdown),
    ]
}

/// Reply body parts: anything printable except the record separator
/// (`RESPONSE_SEP` is reserved by the protocol and cannot appear in
/// rendered responses). Newlines inside parts are legal and must
/// survive.
fn arb_part() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_ |:=.,-]{0,40}",
        "[a-zA-Z ]{0,12}\n[a-zA-Z ]{0,12}",
        Just("(empty trace)".to_string()),
        Just(String::new()),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        // NB: `Reply::Ok(vec![])` and `Reply::Ok(vec![""])` render
        // distinctly ("OK" vs "OK\n") — both shapes are generated.
        prop::collection::vec(arb_part(), 0..4).prop_map(Reply::Ok),
        ("[a-z-]{1,12}", arb_part()).prop_map(|(kind, message)| Reply::Err { kind, message }),
        arb_part().prop_map(Reply::Busy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_render_then_parse_unchanged(req in arb_request()) {
        let rendered = req.render();
        let parsed = Request::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
        prop_assert_eq!(parsed, req, "rendered {}", rendered);
    }

    #[test]
    fn replies_render_then_parse_unchanged(reply in arb_reply()) {
        let rendered = reply.render();
        let parsed = Reply::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
        prop_assert_eq!(parsed, reply, "rendered {}", rendered);
    }

    #[test]
    fn frames_write_then_read_byte_identical(payloads in prop::collection::vec(arb_script(), 1..5)) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).expect("within MAX_FRAME");
        }
        let mut r = buf.as_slice();
        for p in &payloads {
            let got = read_frame(&mut r).expect("readable");
            prop_assert_eq!(got.as_deref(), Some(p.as_str()));
        }
        prop_assert_eq!(read_frame(&mut r).expect("clean EOF"), None);
    }

    #[test]
    fn request_verbs_are_stable_across_a_round_trip(req in arb_request()) {
        let parsed = Request::parse(&req.render()).expect("round-trips");
        prop_assert_eq!(parsed.verb(), req.verb());
    }

    /// The partial-write side of pipelining: a client may flush a burst
    /// of request frames in one write, the kernel may deliver it in any
    /// fragmentation. Whatever the split points — mid-header,
    /// mid-payload, several frames per chunk — the incremental reader
    /// must recover exactly the original request sequence, in order,
    /// with nothing left buffered.
    #[test]
    fn pipelined_request_bursts_survive_arbitrary_stream_splits(
        requests in prop::collection::vec(arb_request(), 1..8),
        splits in prop::collection::vec(1usize..64, 0..32),
    ) {
        let payloads: Vec<String> = requests.iter().map(Request::render).collect();
        let mut wire = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut split = 0;
        while pos < wire.len() {
            let n = if splits.is_empty() {
                wire.len() - pos
            } else {
                splits[split % splits.len()].min(wire.len() - pos)
            };
            split += 1;
            reader.push(&wire[pos..pos + n]);
            pos += n;
            while let Some(frame) = reader.next_frame().expect("well-formed frames") {
                got.push(frame);
            }
        }
        prop_assert_eq!(&got, &payloads, "reassembled payload sequence diverged");
        prop_assert_eq!(reader.buffered(), 0, "bytes left behind after the last frame");
        for (frame, original) in got.iter().zip(&requests) {
            prop_assert_eq!(&Request::parse(frame).expect("parses"), original);
        }
    }

    /// The partial-read side: a server flushes a batch of in-order
    /// reply frames; however the client's reads fragment the stream,
    /// the k-th reassembled reply must parse back to the k-th reply
    /// sent.
    #[test]
    fn pipelined_reply_bursts_survive_arbitrary_stream_splits(
        replies in prop::collection::vec(arb_reply(), 1..8),
        splits in prop::collection::vec(1usize..48, 1..24),
    ) {
        let mut wire = Vec::new();
        for r in &replies {
            encode_frame(&r.render(), &mut wire);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut split = 0;
        while pos < wire.len() {
            let n = splits[split % splits.len()].min(wire.len() - pos);
            split += 1;
            reader.push(&wire[pos..pos + n]);
            pos += n;
            while let Some(frame) = reader.next_frame().expect("well-formed frames") {
                got.push(Reply::parse(&frame).expect("replies parse"));
            }
        }
        prop_assert_eq!(&got, &replies);
        prop_assert_eq!(reader.buffered(), 0);
    }
}
