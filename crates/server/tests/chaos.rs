//! Chaos suite: hostile and degenerate clients against the
//! event-driven server. Slow-loris writers must hit the idle deadline
//! (trickled bytes must NOT reset it), mid-frame disconnects and RST
//! storms must never leak a connection slot or wedge a worker, the
//! loop must hold thousands of idle sockets, and write backpressure
//! must shed mutating scripts — never reads — while the writer queue
//! is saturated. After every storm the server still answers a fresh
//! client and `active_connections` returns to zero.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hrdm::prelude::Engine;
use hrdm_bench::fixtures::serving_bootstrap;
use hrdm_server::proto::read_frame;
use hrdm_server::sys::raise_nofile_limit;
use hrdm_server::{Client, Reply, Request, Server, ServerConfig, ServerHandle};

fn start_server(config: ServerConfig) -> (ServerHandle, Engine) {
    let engine = Engine::new();
    engine.execute(serving_bootstrap()).unwrap();
    let handle = Server::start(engine.clone(), config).unwrap();
    (handle, engine)
}

/// Poll until the server's admitted-connection count reaches `want`
/// (the loop processes closures asynchronously).
fn wait_active(handle: &ServerHandle, want: usize, deadline: Duration) {
    let started = Instant::now();
    while handle.active_connections() != want {
        assert!(
            started.elapsed() < deadline,
            "active_connections stuck at {} (wanted {want})",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The server still serves: a fresh client completes a full round-trip.
fn assert_alive(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query("COUNT Flies;").unwrap();
    assert!(reply.is_ok(), "server wedged after chaos: {reply:?}");
    client.quit().unwrap();
}

#[test]
fn slow_loris_clients_time_out_and_free_their_slots() {
    const LORIS: usize = 4;
    let (handle, _engine) = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    std::thread::scope(|s| {
        for _ in 0..LORIS {
            s.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                // A header promising a 64-byte frame, then one byte at
                // a time — far slower than the frame completes, far
                // longer than the idle deadline.
                let _ = stream.write_all(&64u32.to_be_bytes());
                for _ in 0..16 {
                    if stream.write_all(b"x").is_err() {
                        break; // server already closed on us: the point
                    }
                    std::thread::sleep(Duration::from_millis(40));
                }
                // The server's last words must be ERR timeout (the
                // trickle never reset the idle clock), then EOF.
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut replies = Vec::new();
                while let Ok(Some(frame)) = read_frame(&mut stream) {
                    replies.push(frame);
                }
                assert!(
                    replies
                        .iter()
                        .any(|r| matches!(Reply::parse(r), Ok(Reply::Err { ref kind, .. }) if kind == "timeout")),
                    "no timeout reply; got {replies:?}"
                );
            });
        }
    });

    wait_active(&handle, 0, Duration::from_secs(5));
    let timeouts = handle.stats().timeouts.load(Ordering::Relaxed);
    assert!(
        timeouts >= LORIS as u64,
        "expected >= {LORIS} timeouts, saw {timeouts}"
    );
    assert_alive(&handle);
    wait_active(&handle, 0, Duration::from_secs(5));
    handle.shutdown();
}

#[test]
fn mid_frame_disconnects_never_leak_connection_state() {
    let (handle, _engine) = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    for round in 0..40 {
        let mut stream = TcpStream::connect(addr).unwrap();
        match round % 3 {
            // Drop with nothing sent.
            0 => {}
            // Drop mid-header.
            1 => {
                let _ = stream.write_all(&[0x00, 0x00]);
            }
            // Drop mid-payload: full header, half the promised bytes.
            _ => {
                let _ = stream.write_all(&32u32.to_be_bytes());
                let _ = stream.write_all(&[b'Q'; 16]);
            }
        }
        drop(stream);
    }

    wait_active(&handle, 0, Duration::from_secs(5));
    assert_alive(&handle);
    wait_active(&handle, 0, Duration::from_secs(5));
    assert_eq!(handle.stats().timeouts.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn rst_storms_leave_no_stuck_slots() {
    let (handle, _engine) = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    for round in 0..40 {
        let mut stream = TcpStream::connect(addr).unwrap();
        // A full pipelined burst the server will answer...
        let mut burst = Vec::new();
        for request in [
            Request::Hello,
            Request::Query("SHOW Flies;".into()),
            Request::Query("COUNT Flies;".into()),
        ] {
            hrdm_server::proto::encode_frame(&request.render(), &mut burst);
        }
        let _ = stream.write_all(&burst);
        if round % 2 == 0 {
            // ...with replies left unread in the receive buffer, so
            // closing aborts the connection (RST) instead of FIN.
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(stream);
    }

    wait_active(&handle, 0, Duration::from_secs(10));
    assert_alive(&handle);
    wait_active(&handle, 0, Duration::from_secs(5));
    handle.shutdown();
}

#[test]
fn thousands_of_idle_connections_hold_and_release() {
    const IDLE: usize = 2048;
    let ceiling = raise_nofile_limit((IDLE as u64) * 2 + 512);
    if ceiling < (IDLE as u64) + 256 {
        eprintln!("skipping: fd ceiling {ceiling} too low for {IDLE} idle sockets");
        return;
    }
    let (handle, _engine) = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: IDLE + 8,
        read_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let mut idle = Vec::with_capacity(IDLE);
    for k in 0..IDLE {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => panic!("connect {k} failed: {e}"),
        }
    }
    wait_active(&handle, IDLE, Duration::from_secs(20));

    // The loop still serves new work promptly while holding them all.
    let started = Instant::now();
    assert_alive(&handle);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "round-trip starved by idle sockets: {:?}",
        started.elapsed()
    );

    drop(idle);
    wait_active(&handle, 0, Duration::from_secs(30));
    assert_alive(&handle);
    wait_active(&handle, 0, Duration::from_secs(5));
    handle.shutdown();
}

#[test]
fn write_backpressure_sheds_writes_but_never_reads() {
    let (handle, engine) = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::from_secs(10),
        backpressure_depth: 1,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Saturate the writer queue from embedded handles: with
        // depth >= 1 whenever a direct writer holds (or waits on) the
        // writer lock, served mutations should shed.
        for writer in 0..3 {
            let engine = engine.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    engine
                        .execute(&format!("CREATE INSTANCE Storm{writer}x{k} OF Canary;"))
                        .unwrap();
                    k += 1;
                }
            });
        }

        let mut client = Client::connect(addr).unwrap();
        // Reads are NEVER shed, storm or not.
        for _ in 0..50 {
            let reply = client.query("COUNT Flies;").unwrap();
            assert!(
                !matches!(reply, Reply::Busy(_)),
                "a read was shed under write backpressure"
            );
        }
        // Served writes shed with BUSY while the queue is deep.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut saw_busy = false;
        while Instant::now() < deadline {
            let reply = client.query("ASSERT Flies (Peter);").unwrap();
            if matches!(reply, Reply::Busy(_)) {
                saw_busy = true;
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        assert!(saw_busy, "no mutating script was ever shed at depth 1");

        // Once the storm quiets, the same write goes through.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let reply = client.query("ASSERT Flies (Peter);").unwrap();
            if reply.is_ok() {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "write still shed after the storm: {reply:?}"
            );
        }
        client.quit().unwrap();
    });

    assert!(handle.stats().shed_writes.load(Ordering::Relaxed) >= 1);
    wait_active(&handle, 0, Duration::from_secs(5));
    handle.shutdown();
}
