//! Multi-client soak: N concurrent clients hammer the server with the
//! serving workload while a writer mutates the catalog through the
//! WAL-journaled store. Every reply must be **byte-identical** to the
//! reply the same statement gets from a serial engine at some prefix of
//! the write history — zero protocol errors, zero `BUSY`, and after a
//! clean shutdown the store recovers to the full serial state.
//!
//! A second soak drives the real `hrdm-serve` binary over its stdout
//! handshake and the `SHUTDOWN` verb.

use std::io::BufRead;
use std::path::PathBuf;
use std::time::Duration;

use hrdm::prelude::Engine;
use hrdm_bench::fixtures::{serving_bootstrap, serving_queries, serving_writes};
use hrdm_server::{Client, Reply, Server, ServerConfig};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 200;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hrdm_soak_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reply a serial engine gives `statement`, rendered exactly the
/// way the server renders it on the wire.
fn serial_reply(engine: &Engine, statement: &str) -> Reply {
    match engine.execute(statement) {
        Ok(responses) => Reply::Ok(responses.iter().map(ToString::to_string).collect()),
        Err(e) => Reply::Err {
            kind: e.kind().to_string(),
            message: e.to_string(),
        },
    }
}

/// `expected[i][q]` = the reply to query `q` after the bootstrap plus
/// the first `i` writes, computed on a serial reference engine.
fn serial_prefix_replies(queries: &[&str], writes: &[String]) -> Vec<Vec<Reply>> {
    let engine = Engine::new();
    engine.execute(serving_bootstrap()).unwrap();
    let mut expected = Vec::with_capacity(writes.len() + 1);
    expected.push(queries.iter().map(|q| serial_reply(&engine, q)).collect());
    for w in writes {
        engine.execute(w).unwrap();
        expected.push(queries.iter().map(|q| serial_reply(&engine, q)).collect());
    }
    expected
}

#[test]
fn soak_eight_clients_against_a_journaled_store() {
    let queries = serving_queries();
    let writes = serving_writes();
    let expected = serial_prefix_replies(&queries, &writes);

    let dir = temp_dir("store");
    let engine = Engine::new();
    engine
        .execute(&format!("OPEN {:?};", dir.display().to_string()))
        .unwrap();
    engine.execute(serving_bootstrap()).unwrap();

    let handle = Server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: CLIENTS + 4,
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Every client tallies its replies by kind, so the server's
    // counters can be checked *exactly* per kind afterwards — not as a
    // lump sum that would hide misclassification.
    let (mut total_ok, mut total_err) = (0u64, 0u64);
    std::thread::scope(|s| {
        let queries = &queries;
        let writes = &writes;
        let expected = &expected;
        // The writer journals every mutation through the store's WAL.
        let writer = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for w in writes {
                assert!(client.query(w).unwrap().is_ok(), "write {w:?} failed");
                std::thread::sleep(Duration::from_millis(1));
            }
            client.quit().unwrap();
            (writes.len() as u64, 0u64)
        });
        let mut readers = Vec::new();
        for reader in 0..CLIENTS as u64 {
            readers.push(s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (reader + 1);
                let (mut ok, mut err) = (0u64, 0u64);
                for _ in 0..QUERIES_PER_CLIENT {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let qi = (state % queries.len() as u64) as usize;
                    let reply = client.query(queries[qi]).unwrap();
                    match reply {
                        Reply::Ok(_) => ok += 1,
                        // Queries racing ahead of the writer
                        // legitimately get ERR replies (they name
                        // instances a later write creates — the point
                        // of the existence-transition mix).
                        Reply::Err { .. } => err += 1,
                        Reply::Busy(_) => {
                            panic!("reader was admitted; BUSY is a protocol failure here")
                        }
                    }
                    let matches_a_prefix = expected.iter().any(|row| row[qi] == reply);
                    assert!(
                        matches_a_prefix,
                        "reply to {:?} matches no serial prefix:\n{reply:?}",
                        queries[qi]
                    );
                }
                client.quit().unwrap();
                (ok, err)
            }));
        }
        for h in readers.into_iter().chain(std::iter::once(writer)) {
            let (ok, err) = h.join().unwrap();
            total_ok += ok;
            total_err += err;
        }
    });

    // All writes landed: the final state answers exactly like the full
    // serial replay (all successes in the final serial state, so they
    // tally as OK replies).
    let mut client = Client::connect(addr).unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let reply = client.query(q).unwrap();
        assert_eq!(reply, expected[writes.len()][qi]);
        match reply {
            Reply::Ok(_) => total_ok += 1,
            Reply::Err { .. } => total_err += 1,
            Reply::Busy(_) => unreachable!("checked equal to a serial reply"),
        }
    }
    client.quit().unwrap();
    // Per-kind exactness: the server classified every request the way
    // the clients observed it, and nothing else happened.
    let stat = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(stat(&handle.stats().queries), total_ok, "OK replies");
    assert_eq!(stat(&handle.stats().errors), total_err, "ERR replies");
    assert_eq!(
        total_ok + total_err,
        (CLIENTS * QUERIES_PER_CLIENT + writes.len() + queries.len()) as u64,
        "every request accounted for"
    );
    assert_eq!(stat(&handle.stats().timeouts), 0, "no timeouts");
    assert_eq!(
        stat(&handle.stats().protocol_errors),
        0,
        "no protocol errors"
    );
    assert_eq!(stat(&handle.stats().busy_rejected), 0, "no admission BUSY");
    assert_eq!(stat(&handle.stats().shed_writes), 0, "no backpressure shed");
    handle.shutdown();

    // Durability: recovery rebuilds the full serial state from the WAL.
    let recovered = hrdm_persist::recover(&dir).unwrap();
    assert!(
        recovered.report.next_lsn() > 0,
        "the soak journaled mutations: {}",
        recovered.report.render_stable()
    );
    let reopened = Engine::new();
    reopened
        .execute(&format!("OPEN {:?};", dir.display().to_string()))
        .unwrap();
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            serial_reply(&reopened, q),
            expected[writes.len()][qi],
            "recovered store diverges on {q:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_the_real_binary_over_its_shutdown_verb() {
    let queries = serving_queries();
    let writes = serving_writes();
    let expected = serial_prefix_replies(&queries, &writes);

    let script_path =
        std::env::temp_dir().join(format!("hrdm_soak_bootstrap_{}.hql", std::process::id()));
    std::fs::write(&script_path, serving_bootstrap()).unwrap();

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_hrdm-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--bootstrap",
            script_path.to_str().unwrap(),
            "--max-conn",
            "16",
            "--timeout-ms",
            "10000",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn hrdm-serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("hrdm-serve exited before listening")
            .unwrap();
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    std::thread::scope(|s| {
        let addr = addr.as_str();
        let queries = &queries;
        let writes = &writes;
        let expected = &expected;
        s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for w in writes {
                assert!(client.query(w).unwrap().is_ok());
                std::thread::sleep(Duration::from_millis(1));
            }
            client.quit().unwrap();
        });
        for reader in 0..CLIENTS as u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut state = 0xdead_beef_cafe_f00du64 ^ (reader + 1);
                for _ in 0..50 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let qi = (state % queries.len() as u64) as usize;
                    let reply = client.query(queries[qi]).unwrap();
                    assert!(
                        expected.iter().any(|row| row[qi] == reply),
                        "reply to {:?} matches no serial prefix:\n{reply:?}",
                        queries[qi]
                    );
                }
                client.quit().unwrap();
            });
        }
    });

    let mut client = Client::connect(addr.as_str()).unwrap();
    assert!(client.shutdown_server().unwrap().is_ok());
    drop(client);
    let status = child.wait().expect("hrdm-serve exits");
    assert!(status.success(), "clean exit, got {status:?}");
    let rest: Vec<String> = lines.map(Result::unwrap).collect();
    assert!(
        rest.iter().any(|l| l == "shut down cleanly"),
        "stdout tail: {rest:?}"
    );
    let _ = std::fs::remove_file(&script_path);
}
