//! Pipelining parity: a burst of K requests in flight on one
//! connection must answer **byte-identically** to the same K scripts
//! executed sequentially on an embedded engine — same replies, same
//! order, reads observing every earlier write in the burst
//! (read-your-writes survives the worker handoff and the tick-shared
//! snapshots).

use std::time::Duration;

use hrdm::prelude::Engine;
use hrdm_bench::fixtures::serving_bootstrap;
use hrdm_server::{Client, Reply, Request, Server, ServerConfig};

/// A deliberately stateful burst against the Fig. 1 serving world:
/// writes interleaved with reads that only answer correctly if they
/// observe the writes earlier in the same burst, plus a script that
/// errors (unknown instance) so `ERR` replies are byte-checked too.
fn burst() -> Vec<String> {
    vec![
        "SHOW Flies;".into(),
        "CREATE INSTANCE P0 OF Penguin;".into(),
        "HOLDS Flies (P0);".into(),
        "ASSERT Flies (P0);".into(),
        "HOLDS Flies (P0);".into(),
        "COUNT Flies;".into(),
        "HOLDS Flies (NoSuchCreature);".into(),
        "CREATE INSTANCE P1 OF \"Amazing Flying Penguin\";".into(),
        "HOLDS Flies (P1);".into(),
        "COUNT Flies;".into(),
        "CHECK Flies;".into(),
        "COUNT Flies BY Creature;".into(),
        "SHOW Flies;".into(),
    ]
}

/// The reply a serial engine gives, rendered the way the server
/// renders it on the wire.
fn serial_reply(engine: &Engine, statement: &str) -> Reply {
    match engine.execute(statement) {
        Ok(responses) => Reply::Ok(responses.iter().map(ToString::to_string).collect()),
        Err(e) => Reply::Err {
            kind: e.kind().to_string(),
            message: e.to_string(),
        },
    }
}

fn start_server() -> hrdm_server::ServerHandle {
    let engine = Engine::new();
    engine.execute(serving_bootstrap()).unwrap();
    Server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn as_requests(scripts: &[String]) -> Vec<Request> {
    scripts.iter().map(|s| Request::Query(s.clone())).collect()
}

#[test]
fn a_pipelined_burst_matches_sequential_embedded_execution() {
    let scripts = burst();
    // Reference: the same scripts, in order, on an embedded engine.
    let reference = Engine::new();
    reference.execute(serving_bootstrap()).unwrap();
    let expected: Vec<Reply> = scripts
        .iter()
        .map(|s| serial_reply(&reference, s))
        .collect();

    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let replies = client.pipeline(&as_requests(&scripts)).unwrap();

    assert_eq!(replies.len(), expected.len());
    for (k, (got, want)) in replies.iter().zip(&expected).enumerate() {
        assert_eq!(
            got, want,
            "pipelined reply {k} to {:?} diverged from sequential execution",
            scripts[k]
        );
    }
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn pipelined_and_sequential_connections_answer_identically() {
    let scripts = burst();

    // One server, one burst down a pipelined connection.
    let handle = start_server();
    let mut pipelined = Client::connect(handle.addr()).unwrap();
    let piped = pipelined.pipeline(&as_requests(&scripts)).unwrap();
    pipelined.quit().unwrap();
    handle.shutdown();

    // A fresh identical server, same scripts one round-trip at a time.
    let handle = start_server();
    let mut sequential = Client::connect(handle.addr()).unwrap();
    let mut serial = Vec::new();
    for s in &scripts {
        serial.push(sequential.query(s).unwrap());
    }
    sequential.quit().unwrap();
    handle.shutdown();

    assert_eq!(piped, serial, "pipelining changed observable replies");
}

/// Pipelined bursts repeated back-to-back on a single connection keep
/// their in-order, read-your-writes guarantees across bursts, and the
/// server's query/error counters see every request exactly once.
#[test]
fn repeated_bursts_on_one_connection_stay_ordered() {
    let reference = Engine::new();
    reference.execute(serving_bootstrap()).unwrap();

    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut sent = 0u64;
    for round in 0..8 {
        let scripts: Vec<String> = vec![
            format!("CREATE INSTANCE R{round} OF Canary;"),
            format!("HOLDS Flies (R{round});"),
            "COUNT Flies;".into(),
        ];
        let expected: Vec<Reply> = scripts
            .iter()
            .map(|s| serial_reply(&reference, s))
            .collect();
        let replies = client.pipeline(&as_requests(&scripts)).unwrap();
        assert_eq!(replies, expected, "round {round} diverged");
        sent += scripts.len() as u64;
    }
    client.quit().unwrap();
    let ok = handle
        .stats()
        .queries
        .load(std::sync::atomic::Ordering::Relaxed);
    let err = handle
        .stats()
        .errors
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        ok + err,
        sent,
        "each pipelined request counted exactly once"
    );
    assert_eq!(err, 0, "every script in these bursts succeeds serially");
    handle.shutdown();
}
