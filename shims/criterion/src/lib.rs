//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-io access, so this shim provides
//! the benchmarking surface the workspace's `benches/` use: [`Criterion`]
//! with `sample_size` / `benchmark_group` / `bench_function`,
//! [`BenchmarkGroup`] with `throughput` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Measurement is deliberately simple: per benchmark it warms up, picks
//! an iteration count targeting a fixed per-sample duration, collects
//! `sample_size` wall-clock samples, and prints min / median / max
//! nanoseconds per iteration (plus throughput when configured). There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::Instant;

/// Wall-clock time a single sample aims for, in nanoseconds.
const TARGET_SAMPLE_NS: u128 = 2_000_000;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, |b| f(b));
        self
    }

    /// Upstream prints the closing summary here; the shim has none.
    pub fn final_summary(&mut self) {}
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A label combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A label from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Report throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark a nullary closure under this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// End the group. (No summary state to flush in the shim.)
    pub fn finish(self) {}
}

/// Handed to benchmark closures; [`iter`](Bencher::iter) does the timing.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, storing per-iteration samples for the caller to report.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up and calibration: estimate one iteration's cost.
        let start = Instant::now();
        std::hint::black_box(f());
        let mut per_iter = start.elapsed().as_nanos().max(1);
        // Refine the estimate if a single iteration is very fast.
        if per_iter * 100 < TARGET_SAMPLE_NS {
            let calib = (TARGET_SAMPLE_NS / per_iter / 10).clamp(1, 10_000) as u64;
            let start = Instant::now();
            for _ in 0..calib {
                std::hint::black_box(f());
            }
            per_iter = (start.elapsed().as_nanos() / calib as u128).max(1);
        }
        let iters = (TARGET_SAMPLE_NS / per_iter).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters as f64);
        }
    }
}

/// Execute one benchmark and print its report line.
fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples: closure never called iter)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let min = bencher.samples[0];
    let med = bencher.samples[bencher.samples.len() / 2];
    let max = bencher.samples[bencher.samples.len() - 1];
    let mut line = format!(
        "{label:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(med),
        fmt_ns(max)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if count > 0 && med > 0.0 {
            let rate = count as f64 / (med / 1e9);
            line.push_str(&format!("  thrpt: {rate:.3e} {unit}/s"));
        }
    }
    println!("{line}");
}

/// Render nanoseconds with criterion-style unit scaling.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group, mirroring both
/// upstream forms (positional and `name = / config = / targets =`).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` invoking each group in turn.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.bench_function("nullary", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
    }
}
