//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so this workspace-local
//! shim provides the small slice of the rand 0.8 API the repo uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! and the [`rngs::StdRng`] / [`rngs::SmallRng`] types. Streams are
//! deterministic in the seed (SplitMix64), which is all the synthetic
//! workload generators require; no cryptographic claims are made and the
//! streams do not match upstream rand.

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The sampling surface: ranges, booleans, and plain values.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Derive a value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        bits as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Map 64 uniform bits onto `0..span` (multiply-shift; span 0 means the
/// full 64-bit range).
fn reduce(bits: u64, span: u64) -> u64 {
    if span == 0 {
        return bits;
    }
    ((bits as u128 * span as u128) >> 64) as u64
}

/// The generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: tiny, fast, and statistically fine for workload
    /// generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Same engine as [`StdRng`]; kept as a distinct type for API parity.
    #[derive(Clone, Debug)]
    pub struct SmallRng(StdRng);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng(StdRng::seed_from_u64(state))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(1..=4);
            assert!((1..=4).contains(&y));
        }
        // Both endpoints of a small inclusive range are hit.
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
