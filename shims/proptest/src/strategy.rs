//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` draws a complete value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The combinator behind [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below_u64(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.below_u64(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below_u64(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);

/// String literals act as regex strategies producing matching `String`s.
///
/// The supported pattern subset: literal characters, `\\`-escapes,
/// character classes with ranges (`[A-Za-z0-9_-]`), and the quantifiers
/// `{m}`, `{m,n}`, `*`, `+`, `?` (the unbounded ones capped at 8 reps).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// One pattern element: a set of character ranges repeated `min..=max`
/// times.
struct PatternElem {
    /// Inclusive character ranges; a literal is a single-char range.
    ranges: Vec<(char, char)>,
    min: u32,
    max: u32,
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let elems = parse_pattern(pattern);
    let mut out = String::new();
    for e in &elems {
        let total: u64 = e
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        let reps = e.min + rng.below_u64((e.max - e.min + 1) as u64) as u32;
        for _ in 0..reps {
            let mut pick = rng.below_u64(total);
            for &(lo, hi) in &e.ranges {
                let size = hi as u64 - lo as u64 + 1;
                if pick < size {
                    out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                    break;
                }
                pick -= size;
            }
        }
    }
    out
}

fn parse_pattern(pattern: &str) -> Vec<PatternElem> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elems = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class: {pattern}");
                i += 1;
                ranges
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                vec![(c, c)]
            }
            '.' => {
                i += 1;
                vec![(' ', '~')]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("unterminated quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let m: u32 = body.trim().parse().expect("bad quantifier");
                            (m, m)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern: {pattern}");
        elems.push(PatternElem { ranges, min, max });
    }
    elems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_shapes_hold() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9_]{0,8}".generate(&mut rng);
            assert!((1..=9).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));

            let d = "[0-9]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&d.len()));
            assert!(d.chars().all(|c| c.is_ascii_digit()));

            let pair = "[A-Za-z]{1,4}-[A-Za-z]{1,4}".generate(&mut rng);
            let (a, b) = pair.split_once('-').expect("missing hyphen");
            assert!(!a.is_empty() && !b.is_empty());

            let spaced = "[A-Za-z]{1,5} [A-Za-z]{1,5}".generate(&mut rng);
            assert!(spaced.contains(' '));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(3);
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(5);
        let mut seen = [false; 5];
        for _ in 0..300 {
            let x = (1usize..6).generate(&mut rng);
            assert!((1..6).contains(&x));
            seen[x - 1] = true;
            let y = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&y));
        }
        assert!(seen.iter().all(|&s| s), "range endpoints never generated");
    }
}
