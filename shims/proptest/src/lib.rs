//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this workspace-local
//! shim reimplements the slice of proptest's API the repo's property
//! tests use: the [`Strategy`] trait (`prop_map` / `prop_flat_map` /
//! `boxed`), [`arbitrary::any`], integer-range and regex-literal
//! strategies, `collection::vec`, `sample::select`, `prop_oneof!`,
//! [`strategy::Just`], the `proptest!` test macro, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its case index and seed,
//!   which reproduce it exactly (generation is deterministic);
//! * **no persistence** — `proptest-regressions` files are ignored;
//! * regex strategies support only the subset the tests use: character
//!   classes, literals, and `{m,n}` / `{m}` / `*` / `+` / `?`
//!   quantifiers.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// `any::<T>()`: uniform values of primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An element-count specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below_inclusive(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Optional-value strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Clone, Copy, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of a value from `inner` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// Uniform choice among `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires options");
        Select { options }
    }
}

/// The `prop::` namespace the prelude exposes.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case (regenerated, not counted) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value
/// type (unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declare property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}
