//! Deterministic case runner: seeded RNG, config, and the failure /
//! rejection plumbing used by the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration; only `cases` is honoured by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases, other settings defaulted.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; retry with fresh ones.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64-backed generator handed to strategies.
///
/// All generation is a pure function of the seed, so a reported
/// `(case, seed)` pair reproduces a failure exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..span` via multiply-shift; `span` must be nonzero.
    pub fn below_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// Uniform in `lo..=hi`.
    pub fn below_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name so
/// distinct tests explore distinct streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `config.cases` cases of `body`, panicking on the first failure
/// with enough context (case index + seed) to reproduce it.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut rejects: u32 = 0;
    for case in 0..config.cases {
        loop {
            // Mix case index and reject count so retries draw new inputs.
            let seed = base
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((rejects as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
            let mut rng = TestRng::new(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
            match outcome {
                Ok(Ok(())) => break,
                Ok(Err(TestCaseError::Reject(reason))) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume rejections \
                             ({rejects}); last reason: {reason}"
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest `{name}` failed at case {case}/{} (seed {seed:#018x}): {msg}",
                        config.cases
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest `{name}` panicked at case {case}/{} (seed {seed:#018x})",
                        config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut count = 0;
        run_cases(&ProptestConfig::with_cases(17), "runs_all_cases", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejects_retry_with_fresh_inputs() {
        let mut attempts = 0;
        run_cases(&ProptestConfig::with_cases(4), "rejects_retry", |rng| {
            attempts += 1;
            if rng.next_u64() % 3 == 0 {
                Err(TestCaseError::reject("unlucky"))
            } else {
                Ok(())
            }
        });
        assert!(attempts >= 4);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        run_cases(&ProptestConfig::with_cases(10), "failures_report", |rng| {
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        });
    }
}
